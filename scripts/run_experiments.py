"""Full experiment run: regenerates every table and figure.

Writes the rendered results to stdout (tee into EXPERIMENTS's results
block).  Budget: paper settings (width 8, fuel 128, 5 s timeout),
small models on the full test split capped at 60 theorems, large
models on the subsample capped at 40.
"""

from __future__ import annotations

import sys
import time

from repro.eval import (
    ExperimentConfig,
    Runner,
    category_table,
    coverage_by_bin,
    coverage_under,
    overall_coverage,
    random_pair_baseline,
    render_case,
    render_figure1,
    render_table1,
    render_table2,
    run_case_studies,
    table2_rows,
)
from repro.eval.config import ALL_MODELS, LARGE_MODELS

SMALL_CAP = 60
LARGE_CAP = 40


def main() -> None:
    started = time.time()
    runner = Runner(config=ExperimentConfig())
    print(
        f"corpus: {len(runner.project.theorems)} theorems; "
        f"test split {len(runner.splits.test)}; "
        f"large subsample {len(runner.splits.test_large)}"
    )

    runs = []
    series_vanilla = {}
    series_hints = {}
    for model in ALL_MODELS:
        pool = runner.theorems_for(model)
        cap = LARGE_CAP if model in LARGE_MODELS else SMALL_CAP
        theorems = pool[:cap]
        for hinted in (False, True):
            t0 = time.time()
            run = runner.run(model, hinted, theorems=theorems)
            runs.append(run)
            (series_hints if hinted else series_vanilla)[model] = (
                coverage_by_bin(run.outcomes)
            )
            print(
                f"[{time.time() - started:6.0f}s] {model:22} "
                f"hinted={hinted} n={len(theorems)} "
                f"proved={overall_coverage(run.outcomes):.1%} "
                f"({time.time() - t0:.0f}s)",
                file=sys.stderr,
            )

    print()
    print(render_figure1(series_vanilla, "Figure 1a — coverage (no hints)"))
    print()
    print(render_figure1(series_hints, "Figure 1a — coverage (with hints)"))
    print()
    print(
        render_figure1(
            {
                "gemini-1.5-pro (1M)": series_hints["gemini-1.5-pro"],
                "gemini-1.5-pro (128k)": series_hints["gemini-1.5-pro-128k"],
            },
            "Figure 1b — context windows (with hints)",
        )
    )

    # Table 1: GPT-4o over a stratified per-category sample.
    from repro.corpus.model import CATEGORIES

    stratified = []
    for category in CATEGORIES:
        pool = [t for t in runner.splits.test if t.category == category]
        stratified.extend(pool[:14])
    table1 = {}
    for hinted, label in ((False, "gpt-4o"), (True, "gpt-4o (w/ hints)")):
        sweep = runner.run("gpt-4o", hinted, theorems=stratified)
        table1[label] = category_table(sweep.outcomes)
    print()
    print(render_table1(table1, "Table 1 — category coverage"))

    print()
    print(render_table2(table2_rows(runs), "Table 2 — outcomes"))
    baseline = random_pair_baseline(
        [t.proof_text for t in runner.project.theorems], pairs=200
    )
    print(f"random-pair similarity baseline: {baseline:.3f} (paper: 0.360)")

    hinted_4o = next(r for r in runs if r.model == "gpt-4o" and r.hinted)
    print()
    print("Headline (hinted GPT-4o):")
    print(f"  overall coverage: {overall_coverage(hinted_4o.outcomes):.1%} (paper: 38%)")
    print(f"  coverage <64 tokens: {coverage_under(hinted_4o.outcomes, 64):.1%} (paper: 57%)")
    under = sum(1 for t in runner.project.theorems if t.proof_tokens < 64)
    print(
        f"  corpus <64-token fraction: {under / len(runner.project.theorems):.1%}"
        " (paper: ~60%)"
    )

    print()
    print("Figure 2 — case studies (curated context, best-case attention):")
    for study in run_case_studies(runner):
        print()
        print(render_case(study))

    print(f"\ntotal wall time: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
