"""Full experiment run: regenerates every table and figure.

Writes the rendered results to stdout (tee into EXPERIMENTS's results
block).  Budget: paper settings (width 8, fuel 128, 5 s timeout),
small models on the full test split capped at 60 theorems, large
models on the subsample capped at 40.

The sweep runs on the task-based execution engine: ``--jobs N``
parallelises the independent searches (process backend by default),
``--store PATH`` makes the run resumable — rerunning after a crash
skips every already-completed cell — and per-stage instrumentation is
dumped as JSON next to the store.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval import (
    ExperimentConfig,
    Runner,
    RunStore,
    category_table,
    coverage_by_bin,
    coverage_under,
    overall_coverage,
    random_pair_baseline,
    render_case,
    render_figure1,
    render_metrics,
    render_table1,
    render_table2,
    run_case_studies,
    table2_rows,
)
from repro.eval.config import ALL_MODELS, LARGE_MODELS

SMALL_CAP = 60
LARGE_CAP = 40


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=1, help="parallel search workers"
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="execution backend (default: process when --jobs > 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL run store: makes the sweep resumable/incremental",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore stored cells and re-run everything",
    )
    parser.add_argument(
        "--theorem-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-theorem wall-clock budget (clean TIMEOUT outcome)",
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=2,
        metavar="N",
        help="isolated re-runs of a task whose worker died, before CRASH",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="chaos fault-injection spec (env: REPRO_FAULTS)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    backend = args.backend or ("process" if args.jobs > 1 else "serial")
    started = time.time()
    runner = Runner(
        config=ExperimentConfig(
            executor=backend,
            jobs=args.jobs,
            theorem_deadline=args.theorem_deadline,
            task_retries=args.task_retries,
            faults=args.faults,
        )
    )
    store = RunStore(args.store) if args.store else None
    if runner.fault_plan is not None:
        print(f"chaos: {runner.fault_plan.describe()}", file=sys.stderr)
    print(
        f"corpus: {len(runner.project.theorems)} theorems; "
        f"test split {len(runner.splits.test)}; "
        f"large subsample {len(runner.splits.test_large)}"
    )

    runs = []
    series_vanilla = {}
    series_hints = {}
    for model in ALL_MODELS:
        pool = runner.theorems_for(model)
        cap = LARGE_CAP if model in LARGE_MODELS else SMALL_CAP
        theorems = pool[:cap]
        for hinted in (False, True):
            t0 = time.time()
            run = runner.run(
                model, hinted, theorems=theorems, store=store, fresh=args.fresh
            )
            runs.append(run)
            (series_hints if hinted else series_vanilla)[model] = (
                coverage_by_bin(run.outcomes)
            )
            print(
                f"[{time.time() - started:6.0f}s] {model:22} "
                f"hinted={hinted} n={len(theorems)} "
                f"proved={overall_coverage(run.outcomes):.1%} "
                f"({time.time() - t0:.0f}s)",
                file=sys.stderr,
            )

    print()
    print(render_figure1(series_vanilla, "Figure 1a — coverage (no hints)"))
    print()
    print(render_figure1(series_hints, "Figure 1a — coverage (with hints)"))
    print()
    print(
        render_figure1(
            {
                "gemini-1.5-pro (1M)": series_hints["gemini-1.5-pro"],
                "gemini-1.5-pro (128k)": series_hints["gemini-1.5-pro-128k"],
            },
            "Figure 1b — context windows (with hints)",
        )
    )

    # Table 1: GPT-4o over a stratified per-category sample.
    from repro.corpus.model import CATEGORIES

    stratified = []
    for category in CATEGORIES:
        pool = [t for t in runner.splits.test if t.category == category]
        stratified.extend(pool[:14])
    table1 = {}
    for hinted, label in ((False, "gpt-4o"), (True, "gpt-4o (w/ hints)")):
        sweep = runner.run(
            "gpt-4o", hinted, theorems=stratified, store=store, fresh=args.fresh
        )
        table1[label] = category_table(sweep.outcomes)
    print()
    print(render_table1(table1, "Table 1 — category coverage"))

    print()
    print(render_table2(table2_rows(runs), "Table 2 — outcomes"))
    baseline = random_pair_baseline(
        [t.proof_text for t in runner.project.theorems], pairs=200
    )
    print(f"random-pair similarity baseline: {baseline:.3f} (paper: 0.360)")

    hinted_4o = next(r for r in runs if r.model == "gpt-4o" and r.hinted)
    print()
    print("Headline (hinted GPT-4o):")
    print(f"  overall coverage: {overall_coverage(hinted_4o.outcomes):.1%} (paper: 38%)")
    print(f"  coverage <64 tokens: {coverage_under(hinted_4o.outcomes, 64):.1%} (paper: 57%)")
    under = sum(1 for t in runner.project.theorems if t.proof_tokens < 64)
    print(
        f"  corpus <64-token fraction: {under / len(runner.project.theorems):.1%}"
        " (paper: ~60%)"
    )

    print()
    print("Figure 2 — case studies (curated context, best-case attention):")
    for study in run_case_studies(runner):
        print()
        print(render_case(study))

    cached = runner.metrics.counter("tasks.cached")
    executed = runner.metrics.counter("tasks.executed")
    crashed = runner.metrics.counter("tasks.crashed")
    crash_note = f", {crashed} crashed" if crashed else ""
    print(
        f"\n[{backend} x{args.jobs}] cells: {executed} searched, "
        f"{cached} served from store{crash_note}",
        file=sys.stderr,
    )
    print(render_metrics(runner.metrics.snapshot()), file=sys.stderr)
    if store is not None:
        runner.metrics.dump(store.metrics_path())
        print(
            f"run store: {store.path} ({len(store)} records); "
            f"metrics: {store.metrics_path()}",
            file=sys.stderr,
        )
    print(f"\ntotal wall time: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
