"""Closed-loop load generator for the prover service.

Boots an in-process service (real HTTP on an ephemeral port), then
drives it with N client threads × M requests each — distinct
(theorem × hinted × fuel) cells over a mixed-size theorem spread, so
every request runs a real search (no cache or single-flight shortcuts
inside a phase).  Runs the identical request list twice:

1. **unbatched** — ``max_batch_size=1``: every model query is its own
   dispatch against the (rate-limited) endpoint;
2. **batched** — the micro-batcher collects concurrent queries into
   shared dispatches.

The endpoint is a :class:`repro.testing.latency.LatencyGenerator`
around the simulated model: each dispatch charges ``--query-overhead``
seconds, serialized — the requests-per-minute rate limit of a real
API, which is the resource batching amortizes.

Emits ``BENCH_service.json``: per-phase request throughput, p50/p95
latency, mean/max batch size, model dispatch counts — plus a
correctness differential: the per-request outcome records of both
phases must be **identical** (batching is not allowed to change a
single byte of any result).  ``--check`` exits non-zero unless
batched throughput ≥ ``--min-speedup`` × unbatched at equal
correctness.

Usage::

    PYTHONPATH=src python scripts/service_loadgen.py --out BENCH_service.json --check
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time

from repro.corpus.loader import load_project
from repro.service import ProverClient, ProverService, ServerConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=12)
    parser.add_argument(
        "--requests", type=int, default=2, help="requests per client"
    )
    parser.add_argument("--model", default="gpt-4o-mini")
    parser.add_argument(
        "--fuel", type=int, default=10, help="base fuel per search"
    )
    parser.add_argument("--workers", type=int, default=12)
    parser.add_argument("--batch-window", type=float, default=0.04)
    parser.add_argument("--max-batch-size", type=int, default=8)
    parser.add_argument(
        "--query-overhead",
        type=float,
        default=0.08,
        metavar="SECONDS",
        help="simulated per-dispatch endpoint cost (serialized)",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless batched >= --min-speedup x unbatched "
        "and both phases' records are identical",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=0,
        metavar="N",
        help="add a third phase: the same request list against an "
        "N-process cluster (each worker owns its own rate-limited "
        "endpoint, so throughput should scale near-linearly)",
    )
    parser.add_argument(
        "--cluster-min-speedup",
        type=float,
        default=1.15,
        help="with --check and --cluster-workers: minimum cluster "
        "throughput as a multiple of the single-process batched "
        "phase.  Conservative: micro-batching and sharding partially "
        "substitute for the same endpoint rate limit (per-worker "
        "batches are thinner), and on few-core CI runners the kernel "
        "CPU floor is shared, so scaling is endpoint-linear, not "
        "wall-clock-linear",
    )
    return parser.parse_args()


def pick_theorems(project, count: int):
    """A mixed-size spread: theorems evenly spaced by proof length."""
    ranked = sorted(project.theorems, key=lambda t: t.proof_tokens)
    if count >= len(ranked):
        return ranked
    step = len(ranked) / count
    return [ranked[int(i * step)] for i in range(count)]


def build_requests(project, args) -> list:
    """Distinct task cells so every request is a fresh search."""
    theorems = pick_theorems(project, max(4, args.clients))
    requests = []
    total = args.clients * args.requests
    for index in range(total):
        theorem = theorems[index % len(theorems)]
        requests.append(
            {
                "theorem": theorem.name,
                "model": args.model,
                "hinted": bool((index // len(theorems)) % 2),
                "fuel": args.fuel + 2 * (index // (2 * len(theorems))),
            }
        )
    return requests


def run_phase(project, args, batched: bool) -> dict:
    """One closed-loop run; returns measurements + per-request records."""
    config = ServerConfig(
        port=0,
        workers=args.workers,
        max_queued=max(32, args.clients * args.requests),
        batch_window=args.batch_window,
        max_batch_size=args.max_batch_size if batched else 1,
        query_overhead=args.query_overhead,
        fast=True,
    )
    service = ProverService(config, project=project)
    httpd = service.make_http_server()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    base_url = f"http://{host}:{port}"

    requests = build_requests(project, args)
    latencies, records, errors, wall = drive_clients(
        base_url, requests, args
    )

    metrics = ProverClient(base_url).metrics()
    httpd.shutdown()
    httpd.server_close()
    service.close()

    done = [lat for lat in latencies if lat is not None]
    done.sort()

    def quantile(q: float) -> float:
        if not done:
            return 0.0
        return done[min(len(done) - 1, int(q * len(done)))]

    batchers = metrics["service"]["batchers"]
    return {
        "batched": batched,
        "requests": len(requests),
        "completed": len(done),
        "errors": errors,
        "wall_seconds": wall,
        "throughput_rps": len(done) / wall if wall > 0 else 0.0,
        "latency_p50": quantile(0.50),
        "latency_p95": quantile(0.95),
        "latency_mean": statistics.fmean(done) if done else 0.0,
        "mean_batch_size": (
            batchers[0]["mean_batch_size"] if batchers else 0.0
        ),
        "max_batch_size": (
            batchers[0]["max_batch_size"] if batchers else 0
        ),
        "model_dispatches": (
            batchers[0]["batches"] if batchers else 0
        ),
        "records": records,
    }


def drive_clients(base_url: str, requests: list, args) -> tuple:
    """Closed-loop client threads; returns (latencies, records, errors,
    wall)."""
    per_client = [requests[i::args.clients] for i in range(args.clients)]
    latencies: list = [None] * len(requests)
    records: list = [None] * len(requests)
    errors: list = []

    def client_loop(client_index: int) -> None:
        client = ProverClient(base_url, timeout=120.0)
        for local_index, body in enumerate(per_client[client_index]):
            flat_index = client_index + local_index * args.clients
            started = time.monotonic()
            try:
                status = client.prove_and_wait(
                    timeout=600.0, poll=2.0, **body
                )
                latencies[flat_index] = time.monotonic() - started
                records[flat_index] = status.get("record")
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                errors.append(f"{body}: {type(exc).__name__}: {exc}")

    started = time.monotonic()
    threads = [
        threading.Thread(target=client_loop, args=(i,))
        for i in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, records, errors, time.monotonic() - started


def run_cluster_phase(project, args) -> dict:
    """The same request list against an N-process cluster.

    Each forked worker owns its *own* rate-limited endpoint (its own
    ``query_overhead`` serialization), so this measures what the
    single-process batcher cannot buy: horizontal scaling across
    endpoint rate limits.  No state dir — the loadgen needs throughput,
    not durability.
    """
    from repro.service.cluster import ClusterConfig, ProverCluster

    cluster = ProverCluster(
        ClusterConfig(
            port=0,
            workers=args.cluster_workers,
            threads=args.workers,
            worker_max_queued=max(32, args.clients * args.requests),
            batch_window=args.batch_window,
            max_batch_size=args.max_batch_size,
            query_overhead=args.query_overhead,
            max_inflight=max(256, args.clients * args.requests),
        )
    )
    cluster.start()
    httpd = cluster.make_http_server()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]

    requests = build_requests(project, args)
    latencies, records, errors, wall = drive_clients(
        f"http://{host}:{port}", requests, args
    )

    httpd.shutdown()
    httpd.server_close()
    cluster.close()

    done = sorted(lat for lat in latencies if lat is not None)

    def quantile(q: float) -> float:
        if not done:
            return 0.0
        return done[min(len(done) - 1, int(q * len(done)))]

    return {
        "cluster_workers": args.cluster_workers,
        "requests": len(requests),
        "completed": len(done),
        "errors": errors,
        "wall_seconds": wall,
        "throughput_rps": len(done) / wall if wall > 0 else 0.0,
        "latency_p50": quantile(0.50),
        "latency_p95": quantile(0.95),
        "latency_mean": statistics.fmean(done) if done else 0.0,
        "records": records,
    }


def main() -> int:
    args = parse_args()
    project = load_project(check_proofs=False)

    print(
        f"loadgen: {args.clients} clients x {args.requests} requests, "
        f"model={args.model}, fuel={args.fuel}, "
        f"overhead={args.query_overhead}s",
        file=sys.stderr,
    )
    phases = 3 if args.cluster_workers else 2
    print(
        f"[1/{phases}] unbatched (max_batch_size=1) ...", file=sys.stderr
    )
    unbatched = run_phase(project, args, batched=False)
    print(f"[2/{phases}] batched ...", file=sys.stderr)
    batched = run_phase(project, args, batched=True)
    cluster = None
    if args.cluster_workers:
        print(
            f"[3/{phases}] cluster x{args.cluster_workers} ...",
            file=sys.stderr,
        )
        cluster = run_cluster_phase(project, args)

    records_equal = unbatched["records"] == batched["records"]
    if cluster is not None:
        records_equal = (
            records_equal and cluster["records"] == batched["records"]
        )
    speedup = (
        batched["throughput_rps"] / unbatched["throughput_rps"]
        if unbatched["throughput_rps"] > 0
        else 0.0
    )
    result = {
        "config": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "model": args.model,
            "fuel": args.fuel,
            "workers": args.workers,
            "batch_window": args.batch_window,
            "max_batch_size": args.max_batch_size,
            "query_overhead": args.query_overhead,
        },
        "unbatched": {
            k: v for k, v in unbatched.items() if k != "records"
        },
        "batched": {k: v for k, v in batched.items() if k != "records"},
        "speedup": speedup,
        "records_identical": records_equal,
    }
    if cluster is not None:
        cluster_speedup = (
            cluster["throughput_rps"] / batched["throughput_rps"]
            if batched["throughput_rps"] > 0
            else 0.0
        )
        result["cluster"] = {
            k: v for k, v in cluster.items() if k != "records"
        }
        result["cluster_speedup"] = cluster_speedup
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"unbatched: {unbatched['throughput_rps']:.2f} req/s "
        f"(p50 {unbatched['latency_p50']:.2f}s, "
        f"p95 {unbatched['latency_p95']:.2f}s)"
    )
    print(
        f"batched:   {batched['throughput_rps']:.2f} req/s "
        f"(p50 {batched['latency_p50']:.2f}s, "
        f"p95 {batched['latency_p95']:.2f}s, "
        f"mean batch {batched['mean_batch_size']:.2f})"
    )
    if cluster is not None:
        print(
            f"cluster:   {cluster['throughput_rps']:.2f} req/s "
            f"(p50 {cluster['latency_p50']:.2f}s, "
            f"p95 {cluster['latency_p95']:.2f}s, "
            f"{args.cluster_workers} workers, "
            f"{cluster_speedup:.2f}x batched)"
        )
    print(f"speedup: {speedup:.2f}x; records identical: {records_equal}")

    failures = []
    if unbatched["errors"] or batched["errors"]:
        failures.append(
            f"client errors: {unbatched['errors'] + batched['errors']}"
        )
    if cluster is not None:
        if cluster["errors"]:
            failures.append(f"cluster client errors: {cluster['errors']}")
        if cluster["completed"] != cluster["requests"]:
            failures.append("cluster phase dropped requests")
        if args.check and cluster_speedup < args.cluster_min_speedup:
            failures.append(
                f"cluster speedup {cluster_speedup:.2f}x below the "
                f"{args.cluster_min_speedup}x gate"
            )
    if not records_equal:
        failures.append(
            "batched phase produced different records than unbatched"
        )
    if args.check and speedup < args.min_speedup:
        failures.append(
            f"speedup {speedup:.2f}x below the {args.min_speedup}x gate"
        )
    if unbatched["completed"] != unbatched["requests"]:
        failures.append("unbatched phase dropped requests")
    if batched["completed"] != batched["requests"]:
        failures.append("batched phase dropped requests")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
