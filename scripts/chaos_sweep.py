"""Seeded chaos sweep: fault-inject a mini evaluation and verify the
fault-tolerance contract end to end.

Runs the gpt-4o-mini mini-sweep three ways —

1. fault-free baseline (serial);
2. transient-only fault plan (serial): every model query may hit
   injected 5xx/429/malformed/truncated failures that resolve within
   the retry budget;
3. worker-kill plan (process backend): one task's worker dies on every
   attempt —

and asserts the two halves of the contract:

* the transient sweep's outcome records are **byte-identical** to the
  baseline's (the resilient layer absorbed all of the chaos);
* the kill sweep completes with exactly the victim recorded as CRASH
  and every other record equal to baseline.

Writes a human-readable outcome table to ``--out`` (CI uploads it as
an artifact) and exits non-zero on any contract violation.

Usage::

    PYTHONPATH=src python scripts/chaos_sweep.py --out chaos_outcomes.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval import ExperimentConfig, Runner, RunStore, sweep_tasks
from repro.eval.executor import ProcessPoolExecutor, SerialExecutor

N_THEOREMS = 6
FUEL = 16
MODEL = "gpt-4o-mini"
TRANSIENT_FAULTS = (
    "seed=7,transient=0.15,ratelimit=0.10,malformed=0.10,truncate=0.05,"
    "max_failures=2"
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="chaos_outcomes.txt",
        metavar="PATH",
        help="where to write the outcome table artifact",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="fault-plan seed (varies which prompts draw faults)",
    )
    return parser.parse_args()


def run_sweep(project, config, store_path, executor):
    runner = Runner(project, config)
    theorems = runner.theorems_for(MODEL)
    tasks = sweep_tasks(theorems, MODEL, False, config)
    records = runner.run_tasks(
        tasks, executor=executor, store=RunStore(store_path)
    )
    return runner, tasks, records


def main() -> int:
    args = parse_args()
    from pathlib import Path
    from tempfile import TemporaryDirectory

    from repro.corpus.loader import load_project

    faults = TRANSIENT_FAULTS.replace("seed=7", f"seed={args.seed}", 1)
    started = time.time()
    project = load_project()
    failures = []
    lines = [
        "chaos sweep — fault-tolerance contract",
        f"model={MODEL} theorems={N_THEOREMS} fuel={FUEL}",
        f"transient plan: {faults}",
        "",
    ]

    with TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        base_cfg = ExperimentConfig(max_theorems=N_THEOREMS, fuel=FUEL)

        print("[1/3] fault-free baseline ...", file=sys.stderr)
        _, tasks, baseline = run_sweep(
            project, base_cfg, tmp / "clean.jsonl", SerialExecutor()
        )

        print("[2/3] transient-only chaos ...", file=sys.stderr)
        chaos_cfg = ExperimentConfig(
            max_theorems=N_THEOREMS, fuel=FUEL, faults=faults
        )
        chaos_runner, _, chaos = run_sweep(
            project, chaos_cfg, tmp / "chaos.jsonl", SerialExecutor()
        )
        retries = chaos_runner.metrics.counter("llm.retries")
        identical = (tmp / "chaos.jsonl").read_bytes() == (
            tmp / "clean.jsonl"
        ).read_bytes()
        if retries == 0:
            failures.append(
                "transient plan injected no faults (retries == 0); "
                "the sweep certified nothing — raise the rates or reseed"
            )
        if not identical:
            failures.append(
                "transient-fault store differs from fault-free store"
            )
        lines.append(
            f"transient sweep: {retries} retries absorbed, "
            f"byte-identical={identical}"
        )

        print("[3/3] permanent worker-kill chaos ...", file=sys.stderr)
        victim = tasks[1].theorem
        kill_cfg = ExperimentConfig(
            max_theorems=N_THEOREMS,
            fuel=FUEL,
            faults=f"kill={victim}",
            task_retries=1,
        )
        kill_runner, _, killed = run_sweep(
            project,
            kill_cfg,
            tmp / "kill.jsonl",
            ProcessPoolExecutor(kill_cfg, jobs=2),
        )
        crashes = {r.theorem for r in killed if r.status == "crash"}
        if crashes != {victim}:
            failures.append(
                f"kill sweep crashed {sorted(crashes)!r}, "
                f"expected exactly {victim!r}"
            )
        for record, clean in zip(killed, baseline):
            if record.theorem != victim and record != clean:
                failures.append(
                    f"bystander {record.theorem} changed outcome "
                    f"({clean.status} -> {record.status})"
                )
        lines.append(
            f"kill sweep: victim={victim} crashes={sorted(crashes)} "
            f"worker_deaths="
            f"{kill_runner.metrics.counter('executor.worker_deaths')}"
        )

        lines.append("")
        header = f"{'theorem':34}{'baseline':>10}{'transient':>11}{'kill':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        for base, tr, kl in zip(baseline, chaos, killed):
            lines.append(
                f"{base.theorem:34}{base.status:>10}{tr.status:>11}"
                f"{kl.status:>8}"
            )

    lines.append("")
    verdict = "PASS" if not failures else "FAIL"
    lines.append(
        f"{verdict} in {time.time() - started:.0f}s"
        + (": " + "; ".join(failures) if failures else "")
    )
    report = "\n".join(lines) + "\n"
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(report)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
