"""Pipelined-search microbenchmark: serial vs overlapped expansion.

Runs the same hinted sweep twice through the real runner stack —
once with the classic serial loop (``pipeline_depth=0``) and once
pipelined (``--pipeline-depth``, default 4) — against a
:class:`repro.testing.latency.LatencyGenerator` endpoint model: every
model dispatch charges ``--query-overhead`` seconds through a
serialized gate (a real API's requests-per-minute limit), and a
batched dispatch charges it **once for the whole batch**.  That is the
cost structure the pipelined mode exploits: the fill phase's
co-travelling rounds coalesce in the intra-search micro-batcher, so k
queries share one round-trip instead of paying k.

Emits ``BENCH_search.json``: per-phase wall clock, query and
round-trip counts, per-theorem coverage — plus the differential the
determinism contract demands: pipelined coverage (which cells prove,
revalidated) must equal serial coverage exactly.  ``--check`` exits
non-zero unless pipelined wall clock beats serial by
``--min-speedup`` at identical coverage.

Usage::

    PYTHONPATH=src python scripts/search_bench.py --out BENCH_search.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.corpus.loader import load_project
from repro.eval import ExperimentConfig, Runner
from repro.llm import get_model
from repro.testing.latency import LatencyGenerator


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="gpt-4o")
    parser.add_argument(
        "--n", type=int, default=8, help="theorems in the sweep"
    )
    parser.add_argument("--fuel", type=int, default=24)
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=4,
        help="generation calls in flight in the pipelined phase",
    )
    parser.add_argument(
        "--query-overhead",
        type=float,
        default=0.08,
        metavar="SECONDS",
        help="simulated per-dispatch endpoint cost (serialized)",
    )
    parser.add_argument("--out", default="BENCH_search.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless pipelined >= --min-speedup x serial "
        "wall clock at identical coverage",
    )
    parser.add_argument("--min-speedup", type=float, default=1.3)
    return parser.parse_args()


def pick_theorems(project, count: int):
    """The hardest slice: longest human proofs first.

    Pipelining pays off in searches that actually burn fuel; a sweep
    of instantly-proving lemmas is all startup ramp (a single frontier
    node gives the fill phase nothing to overlap).  The long-proof
    theorems mostly run to FUELOUT, exercising the steady state where
    every fill keeps ``pipeline_depth`` generations in flight.
    """
    ranked = sorted(
        project.theorems,
        key=lambda t: (-t.proof_tokens, t.name),
    )
    return ranked[:count]


def run_phase(project, theorems, args, depth: int) -> dict:
    """One sweep through the production stack at one pipeline depth."""
    runner = Runner(
        project,
        ExperimentConfig(fuel=args.fuel, pipeline_depth=depth),
    )
    endpoint = LatencyGenerator(
        get_model(args.model), args.query_overhead
    )
    outcomes = []
    started = time.monotonic()
    for theorem in theorems:
        outcomes.append(
            runner.run_theorem(
                theorem, args.model, True, model_override=endpoint
            )
        )
    wall = time.monotonic() - started
    queries = sum(o.queries for o in outcomes)
    return {
        "pipeline_depth": depth,
        "wall_seconds": wall,
        "queries": queries,
        "round_trips": endpoint.round_trips,
        "queries_per_round_trip": (
            queries / endpoint.round_trips if endpoint.round_trips else 0.0
        ),
        "proved": sum(o.proved for o in outcomes),
        "coverage": {
            o.theorem.name: [o.status.value, o.revalidated]
            for o in outcomes
        },
    }


def main() -> int:
    args = parse_args()
    project = load_project(check_proofs=False)
    theorems = pick_theorems(project, args.n)

    print(
        f"search bench: {len(theorems)} hinted theorems, "
        f"model={args.model}, fuel={args.fuel}, "
        f"overhead={args.query_overhead}s",
        file=sys.stderr,
    )
    print("[1/2] serial (pipeline_depth=0) ...", file=sys.stderr)
    serial = run_phase(project, theorems, args, depth=0)
    print(
        f"[2/2] pipelined (pipeline_depth={args.pipeline_depth}) ...",
        file=sys.stderr,
    )
    piped = run_phase(project, theorems, args, depth=args.pipeline_depth)

    coverage_identical = serial["coverage"] == piped["coverage"]
    speedup = (
        serial["wall_seconds"] / piped["wall_seconds"]
        if piped["wall_seconds"] > 0
        else 0.0
    )
    result = {
        "config": {
            "model": args.model,
            "theorems": [t.name for t in theorems],
            "fuel": args.fuel,
            "pipeline_depth": args.pipeline_depth,
            "query_overhead": args.query_overhead,
        },
        "serial": serial,
        "pipelined": piped,
        "speedup": speedup,
        "coverage_identical": coverage_identical,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"serial:    {serial['wall_seconds']:.2f}s "
        f"({serial['queries']} queries, "
        f"{serial['round_trips']} round-trips)"
    )
    print(
        f"pipelined: {piped['wall_seconds']:.2f}s "
        f"({piped['queries']} queries, "
        f"{piped['round_trips']} round-trips, "
        f"{piped['queries_per_round_trip']:.2f} queries/trip)"
    )
    print(
        f"speedup: {speedup:.2f}x; coverage identical: "
        f"{coverage_identical}"
    )

    failures = []
    if not coverage_identical:
        failures.append("pipelined coverage differs from serial")
    if args.check and speedup < args.min_speedup:
        failures.append(
            f"speedup {speedup:.2f}x below the {args.min_speedup}x gate"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
