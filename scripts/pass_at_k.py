"""Repair + pass@k harness: sample k attempts per cell, run the
checker-error repair loop, and report unbiased coverage@k.

Three sections, all on the simulated hinted profile:

1. **Baseline sweep** — single-shot search over the first ``--n`` test
   theorems; the failed cells are the repair candidates.
2. **Repair sweep** — the same cells with ``--repair-rounds`` feedback
   rounds; every cell whose status moves to ``repaired`` (and passes
   Qed replay) is a conversion the feedback loop earned.
3. **pass@k sweep** — ``--k`` independently-seeded attempts per cell
   on the sampling model, folded into the unbiased coverage@k
   estimator for k in {1, 4, 8} (clipped to ``--k``).

Writes a JSON artifact to ``--out`` (CI uploads it) plus a text table
to stdout.  ``--check`` exits non-zero unless at least
``--min-repaired`` cells converted and coverage@k is monotone in k.

Usage::

    PYTHONPATH=src python scripts/pass_at_k.py --out coverage_at_k.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace

from repro.corpus.loader import load_project
from repro.eval import (
    ExperimentConfig,
    Runner,
    coverage_at_k,
    render_coverage_at_k,
    sweep_tasks,
)
from repro.repair.sampling import attempt_tasks

REPAIR_MODEL = "gpt-4o"
SAMPLING_MODEL = "gpt-4o-mini"
FAILED = ("stuck", "fuelout", "timeout")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="coverage_at_k.json",
        metavar="PATH",
        help="where to write the JSON artifact",
    )
    parser.add_argument(
        "--n", type=int, default=24, help="theorems in the repair sweep"
    )
    parser.add_argument(
        "--sample-n",
        type=int,
        default=8,
        help="theorems in the pass@k sweep",
    )
    parser.add_argument("--fuel", type=int, default=64)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--repair-rounds", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the repair/coverage assertions hold",
    )
    parser.add_argument(
        "--min-repaired",
        type=int,
        default=1,
        metavar="N",
        help="with --check: minimum cells the repair loop must convert",
    )
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    started = time.time()
    project = load_project()
    failures = []

    # -- 1+2: baseline vs repair ---------------------------------------
    print("[1/3] baseline sweep ...", file=sys.stderr)
    base_cfg = ExperimentConfig(max_theorems=args.n, fuel=args.fuel)
    base_runner = Runner(project, base_cfg)
    theorems = base_runner.theorems_for(REPAIR_MODEL)
    base_tasks = sweep_tasks(theorems, REPAIR_MODEL, True, base_cfg)
    base_records = base_runner.run_tasks(base_tasks)

    print("[2/3] repair sweep ...", file=sys.stderr)
    repair_cfg = replace(base_cfg, repair_rounds=args.repair_rounds)
    repair_runner = Runner(project, repair_cfg)
    repair_tasks = sweep_tasks(theorems, REPAIR_MODEL, True, repair_cfg)
    repair_records = repair_runner.run_tasks(repair_tasks)

    converted = []
    for base, rep in zip(base_records, repair_records):
        if (
            base.status in FAILED
            and rep.status == "repaired"
            and rep.revalidated
        ):
            converted.append(
                {
                    "theorem": base.theorem,
                    "from": base.status,
                    "attempts": rep.attempts,
                    "proof": rep.generated_proof,
                }
            )
    failed_cells = sum(r.status in FAILED for r in base_records)
    print(
        f"repair: {len(converted)}/{failed_cells} failed cells converted "
        f"within {args.repair_rounds} rounds"
    )
    for cell in converted:
        print(
            f"  {cell['theorem']}: {cell['from']} -> repaired "
            f"({cell['attempts']} attempts): {cell['proof']}"
        )

    # -- 3: pass@k ------------------------------------------------------
    print("[3/3] pass@k sweep ...", file=sys.stderr)
    ks = sorted({k for k in (1, 4, 8) if k <= args.k} | {args.k})
    sample_cfg = ExperimentConfig(max_theorems=args.sample_n, fuel=args.fuel)
    sample_runner = Runner(project, sample_cfg)
    series = {}
    coverage_json = {}
    for hinted in (False, True):
        tasks = attempt_tasks(
            sweep_tasks(
                sample_runner.theorems_for(SAMPLING_MODEL),
                SAMPLING_MODEL,
                hinted,
                sample_cfg,
            ),
            args.k,
        )
        records = sample_runner.run_tasks(tasks)
        tag = "hints" if hinted else "vanilla"
        cov = coverage_at_k(records, ks)
        series[f"{SAMPLING_MODEL} {tag}"] = cov
        coverage_json[tag] = {str(k): cov[k] for k in ks}
    print()
    print(render_coverage_at_k(series))

    # -- checks + artifact ----------------------------------------------
    if args.check:
        if len(converted) < args.min_repaired:
            failures.append(
                f"repair converted {len(converted)} cells, "
                f"required {args.min_repaired}"
            )
        for cov in series.values():
            pairs = sorted(cov.items())
            for (k1, c1), (k2, c2) in zip(pairs, pairs[1:]):
                if c2 < c1 - 1e-9:
                    failures.append(
                        f"coverage@{k2}={c2:.3f} below "
                        f"coverage@{k1}={c1:.3f}"
                    )

    artifact = {
        "repair_model": REPAIR_MODEL,
        "sampling_model": SAMPLING_MODEL,
        "n": args.n,
        "fuel": args.fuel,
        "k": args.k,
        "repair_rounds": args.repair_rounds,
        "failed_cells": failed_cells,
        "converted": converted,
        "coverage_at_k": coverage_json,
        "failures": failures,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    verdict = "PASS" if not failures else "FAIL"
    print()
    print(
        f"{verdict} in {time.time() - started:.0f}s"
        + (": " + "; ".join(failures) if failures else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
