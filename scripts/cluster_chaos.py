"""Cluster chaos harness: crash recovery, journal replay, degradation.

Exercises the supervised multi-process cluster
(:mod:`repro.service.cluster`) under the fault plans of
:class:`~repro.testing.faults.ClusterFaultPlan` and verifies the
recovery contract end to end:

1. **baseline** — a fault-free cluster run over a fixed task list;
   the final records, written in submission order, are the reference
   store.
2. **kill worker mid-job** — the worker executing the victim theorem
   dies (``os._exit``) mid-search; the supervisor must restart it, the
   router must re-dispatch, and the final store must be
   **byte-identical** to the baseline with
   ``repro_cluster_worker_restarts_total >= 1`` on ``/metrics``.
3. **router crash + journal replay** — the whole cluster is
   crash-stopped (SIGKILL, no drain) mid-run; a fresh cluster on the
   same state dir must replay every unfinished journaled job and
   converge to the byte-identical store.
4. **corrupt journal line** — one journal line gets a flipped byte;
   the next load must quarantine exactly that line (``.quarantine``
   sibling) and the run must still complete.
5. **degradation ladder + drain** — disabling workers must walk
   ``/healthz`` through ``shed_adhoc`` (raw goals 429) and
   ``cache_only`` (cold 503, warm-cache 200); a close() during load
   must drain without losing any admitted job.

Writes a human-readable outcome table to ``--out`` (CI uploads it as
an artifact) and exits non-zero on any contract violation.

Usage::

    PYTHONPATH=src python scripts/cluster_chaos.py --out cluster_chaos.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.eval.store import OutcomeRecord, RunStore
from repro.eval.tasks import task_from_json
from repro.service.cluster import ClusterConfig, ProverCluster

MODEL = "gpt-4o-mini"
N_THEOREMS = 6
FUEL = 16
WORKERS = 2


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="cluster_chaos_outcomes.txt",
        metavar="PATH",
        help="where to write the outcome table artifact",
    )
    parser.add_argument(
        "--keep-state",
        default=None,
        metavar="DIR",
        help="preserve per-phase state dirs (journals, shards) here",
    )
    return parser.parse_args()


def task_bodies() -> list:
    from repro.corpus.loader import load_project

    project = load_project(check_proofs=False)
    return [
        {"theorem": t.name, "model": MODEL, "fuel": FUEL}
        for t in project.theorems[:N_THEOREMS]
    ]


def boot(state_dir: Path, faults: str = None) -> ProverCluster:
    cluster = ProverCluster(
        ClusterConfig(
            workers=WORKERS,
            threads=2,
            state_dir=str(state_dir),
            cluster_faults=faults,
        )
    )
    cluster.start()
    return cluster


def run_all(cluster: ProverCluster, bodies: list) -> list:
    """Submit every body and block until terminal; returns job ids."""
    ids = []
    for body in bodies:
        status, payload = cluster.submit(dict(body))
        if status not in (200, 202):
            raise AssertionError(
                f"submit {body['theorem']} -> HTTP {status}: {payload}"
            )
        ids.append(payload["job"])
    wait_all(cluster, ids)
    return ids


def wait_all(cluster: ProverCluster, ids: list, budget: float = 180.0):
    deadline = time.monotonic() + budget
    for job_id in ids:
        while True:
            _, body = cluster.job_status(job_id, wait=2.0)
            if body.get("state") in ("done", "failed"):
                break
            if time.monotonic() > deadline:
                raise AssertionError(f"job {job_id} never finished")


def write_store(cluster, bodies, ids, path: Path) -> None:
    """The final records, in submission order (order-deterministic)."""
    store = RunStore(path)
    for body, job_id in zip(bodies, ids):
        _, status = cluster.job_status(job_id)
        if status.get("state") != "done":
            raise AssertionError(
                f"{body['theorem']}: {status.get('state')} "
                f"({status.get('error')})"
            )
        store.put(
            task_from_json(dict(body)),
            OutcomeRecord.from_json(status["record"]),
        )


def restart_count(cluster: ProverCluster) -> int:
    """``repro_cluster_worker_restarts_total`` as a scraper sees it."""
    _, text = cluster.metrics_text()
    for line in text.splitlines():
        if line.startswith("repro_cluster_worker_restarts_total "):
            return int(float(line.split()[1]))
    return 0


def main() -> int:
    args = parse_args()
    started = time.time()
    failures = []
    lines = [
        "cluster chaos — crash recovery and degradation contract",
        f"model={MODEL} theorems={N_THEOREMS} fuel={FUEL} "
        f"workers={WORKERS}",
        "",
    ]
    bodies = task_bodies()
    victim = bodies[1]["theorem"]

    with TemporaryDirectory() as tmp:
        root = Path(args.keep_state) if args.keep_state else Path(tmp)
        root.mkdir(parents=True, exist_ok=True)

        # ----- 1. fault-free baseline --------------------------------
        print("[1/5] fault-free cluster baseline ...", file=sys.stderr)
        cluster = boot(root / "baseline")
        ids = run_all(cluster, bodies)
        write_store(cluster, bodies, ids, root / "baseline-store.jsonl")
        cluster.close(timeout=30)
        baseline_bytes = (root / "baseline-store.jsonl").read_bytes()
        lines.append(f"baseline: {len(ids)} jobs done")

        # ----- 2. kill worker mid-job --------------------------------
        print(f"[2/5] kill worker mid-job ({victim}) ...", file=sys.stderr)
        cluster = boot(root / "kill", faults=f"kill_job={victim}")
        ids = run_all(cluster, bodies)
        # The restart is asynchronous to job completion (the router
        # re-routes to the sibling shard before the supervisor has
        # rebooted the dead slot) — wait for it before judging.
        deadline = time.monotonic() + 30
        while (
            restart_count(cluster) < 1 and time.monotonic() < deadline
        ):
            time.sleep(0.2)
        restarts = restart_count(cluster)
        deaths = cluster.metrics.counter("cluster.worker_deaths")
        write_store(cluster, bodies, ids, root / "kill-store.jsonl")
        cluster.close(timeout=30)
        identical = (
            root / "kill-store.jsonl"
        ).read_bytes() == baseline_bytes
        if deaths < 1:
            failures.append(
                "kill plan injected no worker death; certified nothing"
            )
        if restarts < 1:
            failures.append(
                f"supervisor never restarted the dead worker "
                f"(repro_cluster_worker_restarts_total={restarts})"
            )
        if not identical:
            failures.append(
                "kill-run store differs from baseline (recovery broke "
                "the determinism contract)"
            )
        lines.append(
            f"kill mid-job: deaths={deaths} restarts={restarts} "
            f"byte-identical={identical}"
        )

        # ----- 3. router crash + journal replay ----------------------
        print("[3/5] router crash + journal replay ...", file=sys.stderr)
        state = root / "replay"
        # A stall pins one job in flight so the crash is guaranteed to
        # strand work (a stall changes timing, never records, so the
        # byte-identity assertion still holds).
        cluster = boot(
            state,
            faults=f"stall_job={bodies[2]['theorem']},stall_seconds=2",
        )
        ids = []
        for body in bodies:
            _, payload = cluster.submit(dict(body))
            ids.append(payload["job"])
        time.sleep(0.2)  # let some (not all) jobs finish
        cluster.abort()  # SIGKILL fleet, no drain, journal left dirty
        pending_before = len(
            [e for e in cluster.journal.entries.values() if e.pending()]
        )
        cluster = boot(state)  # same state dir: must replay
        replayed = cluster.replayed_jobs
        wait_all(cluster, ids)
        write_store(cluster, bodies, ids, root / "replay-store.jsonl")
        identical = (
            root / "replay-store.jsonl"
        ).read_bytes() == baseline_bytes
        if replayed < 1:
            failures.append(
                f"router crash left {pending_before} pending jobs but "
                f"the successor replayed {replayed}; abort() raced the "
                f"sweep — slow the run down"
            )
        if not identical:
            failures.append(
                "replayed store differs from baseline (journal replay "
                "broke the determinism contract)"
            )
        lines.append(
            f"journal replay: pending_at_crash={pending_before} "
            f"replayed={replayed} byte-identical={identical}"
        )

        # ----- 4. corrupt journal line -------------------------------
        print("[4/5] corrupt journal line ...", file=sys.stderr)
        journal_path = state / "journal.jsonl"
        raw = journal_path.read_text(encoding="utf-8").splitlines()
        raw[0] = raw[0][:-5] + "XXXX}"  # flip bytes inside line 0
        journal_path.write_text(
            "\n".join(raw) + "\n", encoding="utf-8"
        )
        cluster.close(timeout=30)
        cluster = boot(state)
        quarantined = cluster.journal.quarantined
        qpath = cluster.journal.quarantine_path()
        _, payload = cluster.submit(dict(bodies[0]))
        wait_all(cluster, [payload["job"]])
        cluster.close(timeout=30)
        if quarantined < 1:
            failures.append("corrupt journal line was not quarantined")
        if not qpath.exists():
            failures.append(f"no quarantine sibling at {qpath}")
        lines.append(
            f"corrupt journal: quarantined={quarantined} "
            f"sibling={qpath.name} run_completed=True"
        )

        # ----- 5. degradation ladder + drain -------------------------
        print("[5/5] degradation ladder + drain ...", file=sys.stderr)
        cluster = boot(root / "ladder")
        _, health = cluster.health()
        steps = [health["ladder"]]
        run_all(cluster, [dict(bodies[0])])  # warm the router cache
        cluster.supervisor.disable_worker(0)
        status, _ = cluster.submit({"goal": "forall n, n = n",
                                    "model": MODEL})
        shed_goal = status
        _, health = cluster.health()
        steps.append(health["ladder"])
        cluster.supervisor.disable_worker(1)
        _, health = cluster.health()
        steps.append(health["ladder"])
        warm, _ = cluster.submit(dict(bodies[0]))  # router-cache hit
        cold, _ = cluster.submit(dict(bodies[4]))
        if steps != ["healthy", "shed_adhoc", "cache_only"]:
            failures.append(f"ladder walked {steps}, expected "
                            "['healthy', 'shed_adhoc', 'cache_only']")
        if shed_goal != 429:
            failures.append(
                f"degraded cluster answered a raw goal with "
                f"{shed_goal}, expected 429 shed"
            )
        if warm != 200 or cold != 503:
            failures.append(
                f"cache-only rung served warm={warm} cold={cold}, "
                f"expected 200/503"
            )
        cluster.supervisor.enable_worker(0)
        cluster.supervisor.enable_worker(1)
        deadline = time.monotonic() + 30
        while (
            cluster.degradation_level() != 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.2)
        recovered = cluster.degradation_level() == 0
        if not recovered:
            failures.append("fleet never recovered to healthy after "
                            "re-enabling workers")
        # Drain under load: admitted jobs must all reach a terminal
        # state before close() returns, and the journal must agree.
        ids = []
        for body in bodies[:4]:
            status, payload = cluster.submit(dict(body))
            if status in (200, 202):
                ids.append(payload["job"])
        drained = cluster.close(timeout=60)
        lost = [
            job_id
            for job_id in ids
            if cluster.job_status(job_id)[1].get("state")
            not in ("done", "failed")
        ]
        journal_pending = len(cluster.journal.pending())
        if not drained or lost:
            failures.append(
                f"drain lost admitted jobs: drained={drained} "
                f"unfinished={lost}"
            )
        if journal_pending:
            failures.append(
                f"journal still shows {journal_pending} pending jobs "
                f"after a clean drain"
            )
        lines.append(
            f"ladder: {' -> '.join(steps)} shed_goal={shed_goal} "
            f"warm={warm} cold={cold} recovered={recovered}"
        )
        lines.append(
            f"drain under load: drained={drained} jobs={len(ids)} "
            f"lost={len(lost)} journal_pending={journal_pending}"
        )

    lines.append("")
    verdict = "PASS" if not failures else "FAIL"
    lines.append(
        f"{verdict} in {time.time() - started:.0f}s"
        + (": " + "; ".join(failures) if failures else "")
    )
    report = "\n".join(lines) + "\n"
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(report)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
