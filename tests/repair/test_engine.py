"""The checker-error feedback loop: eligibility, failure capture,
prefix resume, determinism, and budget sharing."""

import pytest

from repro.core import BestFirstSearch, SearchConfig, Status
from repro.core.result import FailureContext, SearchResult
from repro.eval import ExperimentConfig, Metrics, Runner, record_from_outcome
from repro.llm import get_model
from repro.llm.promptview import parse_prompt
from repro.prompting import PromptBuilder
from repro.repair import NEAR_MISS_DEPTH, RepairEngine, repairable
from repro.repair.prompts import REPAIR_HEADER, feedback_block
from repro.serapi import ProofChecker


def _failure(depth=1, tactic="apply foo", message="cannot unify"):
    return FailureContext(
        prefix=("intros",) * depth,
        goal="n <= p",
        depth=depth,
        failed_tactic=tactic,
        message=message,
        verdict="rejected",
    )


def _result(status, failure):
    return SearchResult(status=status, theorem_name="t", failure=failure)


class TestRepairable:
    def test_stuck_with_failure_always_eligible(self):
        assert repairable(_result(Status.STUCK, _failure(depth=0)))

    def test_fuelout_needs_near_miss_depth(self):
        assert not repairable(
            _result(Status.FUELOUT, _failure(depth=NEAR_MISS_DEPTH - 1))
        )
        assert repairable(
            _result(Status.FUELOUT, _failure(depth=NEAR_MISS_DEPTH))
        )

    def test_timeout_needs_near_miss_depth(self):
        assert repairable(
            _result(Status.TIMEOUT, _failure(depth=NEAR_MISS_DEPTH))
        )

    def test_no_failure_context_ineligible(self):
        assert not repairable(_result(Status.STUCK, None))

    def test_proved_and_crash_ineligible(self):
        assert not repairable(_result(Status.PROVED, _failure()))
        assert not repairable(_result(Status.CRASH, _failure()))


class TestFeedbackBlock:
    def test_contents(self):
        block = feedback_block(_failure(), 2)
        assert block.splitlines()[0] == REPAIR_HEADER
        assert "(* The checker rejected: apply foo *)" in block
        assert "(* Checker error: cannot unify *)" in block
        assert "(* repair round 2 *)" in block

    def test_rounds_differ_on_identical_failure(self):
        assert feedback_block(_failure(), 1) != feedback_block(_failure(), 2)

    def test_comment_close_is_escaped(self):
        block = feedback_block(_failure(message="bad *) text"), 1)
        # The message cannot terminate its host comment early.
        assert "bad *) text" not in block
        assert "bad * ) text" in block

    def test_refused_tactics_deduped(self):
        block = feedback_block(
            _failure(tactic="apply foo"), 2, refused=["apply foo", "lia"]
        )
        assert block.count("The checker rejected") == 2


class TestFailureCapture:
    @pytest.fixture(scope="class")
    def stuck(self, project):
        runner = Runner(project, ExperimentConfig())
        outcome = runner.run_theorem(
            project.theorem("le_trans"), "gpt-4o", True
        )
        assert outcome.status is Status.STUCK
        return project, outcome

    def test_failure_context_recorded(self, stuck):
        _, outcome = stuck
        ctx = outcome.failure
        assert ctx is not None
        assert ctx["depth"] == len(ctx["prefix"]) >= 1
        assert ctx["failed_tactic"]
        assert ctx["message"]
        assert ctx["verdict"] == "rejected"
        assert ctx["goal"]

    def test_prefix_replays_through_checker(self, stuck):
        project, outcome = stuck
        theorem = project.theorem("le_trans")
        checker = ProofChecker(project.env_for(theorem))
        state, survived = checker.replay_prefix(
            theorem.statement, outcome.failure["prefix"]
        )
        assert survived == list(outcome.failure["prefix"])
        assert not state.is_complete()

    def test_round_trip_json(self):
        ctx = _failure()
        assert FailureContext.from_json(ctx.to_json()) == ctx


class TestPrefixResume:
    def test_complete_prefix_proves_without_queries(self, project):
        theorem = project.theorem("le_trans")
        checker = ProofChecker(project.env_for(theorem))
        search = BestFirstSearch(
            checker, get_model("gpt-4o"), SearchConfig(width=4, fuel=4)
        )
        builder = PromptBuilder(project, theorem)
        result = search.prove(
            theorem.name,
            theorem.statement,
            builder.build,
            initial_tactics=("intros", "lia"),
        )
        assert result.status is Status.PROVED
        assert result.tactics == ["intros", "lia"]
        assert result.stats.queries == 0

    def test_refused_prefix_tactic_truncates(self, project):
        theorem = project.theorem("le_trans")
        checker = ProofChecker(project.env_for(theorem))
        search = BestFirstSearch(
            checker, get_model("gpt-4o"), SearchConfig(width=4, fuel=1)
        )
        builder = PromptBuilder(project, theorem)
        result = search.prove(
            theorem.name,
            theorem.statement,
            builder.build,
            initial_tactics=("intros", "apply nonsense_lemma"),
        )
        # The bogus tail is dropped; the search continues from depth 1.
        assert result.stats.nodes_created >= 2
        assert result.status is not Status.CRASH


class TestRepairLoop:
    def test_converts_stuck_to_repaired(self, project):
        runner = Runner(project, ExperimentConfig())
        metrics = Metrics()
        outcome = runner.run_theorem(
            project.theorem("le_trans"),
            "gpt-4o",
            True,
            metrics=metrics,
            repair_rounds=2,
        )
        assert outcome.status is Status.REPAIRED
        assert outcome.revalidated
        assert outcome.attempts == 2
        assert outcome.proved
        assert metrics.counter("repair.rounds") == 1
        assert metrics.counter("repair.succeeded") == 1

    def test_deterministic(self, project):
        runner = Runner(project, ExperimentConfig())
        theorem = project.theorem("le_trans")
        first = record_from_outcome(
            runner.run_theorem(theorem, "gpt-4o", True, repair_rounds=2)
        )
        second = record_from_outcome(
            runner.run_theorem(theorem, "gpt-4o", True, repair_rounds=2)
        )
        assert first == second
        assert first.status == "repaired"

    def test_rounds_zero_is_single_shot(self, project):
        runner = Runner(project, ExperimentConfig())
        outcome = runner.run_theorem(
            project.theorem("le_trans"), "gpt-4o", True, repair_rounds=0
        )
        assert outcome.status is Status.STUCK
        assert outcome.attempts == 1

    def test_retry_cap_bounds_attempts(self, project):
        # A theorem the loop cannot save still terminates at the cap.
        runner = Runner(project, ExperimentConfig(fuel=16))
        outcome = runner.run_theorem(
            project.theorem("in_app_or"), "gpt-4o", True, repair_rounds=2
        )
        assert outcome.status is not Status.REPAIRED
        assert outcome.attempts <= 3

    def test_exhausted_budget_skips_rounds(self, project):
        # A clock that leaps 1000s per tick expires the shared budget
        # during the initial search; no repair round may start.
        theorem = project.theorem("le_trans")
        ticks = iter(range(0, 10_000_000, 1000))
        clock = lambda: float(next(ticks))  # noqa: E731
        checker = ProofChecker(project.env_for(theorem))
        search = BestFirstSearch(
            checker,
            get_model("gpt-4o"),
            SearchConfig(width=4, fuel=8, theorem_deadline=1.0),
            clock=clock,
        )
        metrics = Metrics()
        engine = RepairEngine(
            search,
            PromptBuilder(project, theorem),
            rounds=3,
            metrics=metrics,
            clock=clock,
        )
        result = engine.prove(theorem.name, theorem.statement)
        assert result.status is Status.TIMEOUT
        assert result.attempts == 1
        assert metrics.counter("repair.rounds") == 0


class TestModelReadsFeedback:
    def test_failed_tactics_parsed_from_prompt(self, project):
        theorem = project.theorem("le_trans")
        checker = ProofChecker(project.env_for(theorem))
        builder = PromptBuilder(
            project, theorem, feedback=feedback_block(_failure(), 1)
        )
        prompt = builder.build(checker.start(theorem.statement), ["intros"])
        view = parse_prompt(prompt)
        assert view.failed_tactics == ["apply foo"]
        # The feedback comments do not pollute the step history.
        assert view.steps == ["intros"]

    def test_model_suppresses_refused_tactics(self, project):
        theorem = project.theorem("le_trans")
        checker = ProofChecker(project.env_for(theorem))
        state = checker.start(theorem.statement)
        model = get_model("gpt-4o")
        plain = PromptBuilder(project, theorem)
        baseline = model.generate(plain.build(state, []), 8)
        assert baseline
        refused = baseline[0].tactic
        fed = PromptBuilder(
            project,
            theorem,
            feedback=feedback_block(_failure(tactic=refused), 1),
        )
        repaired = model.generate(fed.build(state, []), 8)
        assert refused not in [c.tactic for c in repaired]
