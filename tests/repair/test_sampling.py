"""pass@k sampling: the estimator, attempt seeding, and backend parity."""

from dataclasses import replace
from math import comb

import pytest

from repro.eval import (
    ExperimentConfig,
    OutcomeRecord,
    ProcessPoolExecutor,
    Runner,
    SerialExecutor,
    sweep_tasks,
)
from repro.eval.tasks import TheoremTask
from repro.llm.sampling import attempt_seed
from repro.repair.sampling import attempt_tasks, coverage_at_k, pass_at_k


class TestPassAtK:
    def test_all_succeed(self):
        assert pass_at_k(10, 10, 5) == 1.0

    def test_none_succeed(self):
        assert pass_at_k(10, 0, 5) == 0.0

    def test_exact_combinatorics(self):
        # 4 samples, 1 success, draw 2: 1 - C(3,2)/C(4,2) = 1 - 3/6.
        assert pass_at_k(4, 1, 2) == pytest.approx(0.5)
        assert pass_at_k(8, 2, 4) == pytest.approx(1 - comb(6, 4) / comb(8, 4))

    def test_saturates_when_failures_below_k(self):
        # Fewer than k failures: every k-subset contains a success.
        assert pass_at_k(5, 4, 2) == 1.0

    def test_k_equals_n_is_any_success(self):
        assert pass_at_k(3, 1, 3) == 1.0

    @pytest.mark.parametrize(
        "n,c,k",
        [(5, 1, 0), (5, 1, -1), (3, 1, 4), (5, -1, 2), (5, 6, 2)],
    )
    def test_invalid_inputs_rejected(self, n, c, k):
        with pytest.raises(ValueError):
            pass_at_k(n, c, k)


class TestAttemptSeed:
    def test_stable(self):
        assert attempt_seed("abc", 3) == attempt_seed("abc", 3)

    def test_distinct_across_attempts_and_keys(self):
        seeds = {attempt_seed("abc", i) for i in range(16)}
        assert len(seeds) == 16
        assert attempt_seed("abc", 1) != attempt_seed("abd", 1)

    def test_hex_shape(self):
        seed = attempt_seed("abc", 1)
        assert len(seed) == 16
        int(seed, 16)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            attempt_seed("abc", -1)


BASE_TASK = dict(
    theorem="plus_0_l",
    model="gpt-4o",
    hinted=True,
    width=8,
    fuel=16,
    tactic_timeout=5.0,
    frontier="best-first",
    dedup_states=True,
    max_depth=64,
    seed=20250514,
    hint_fraction=0.5,
)


class TestAttemptTasks:
    def test_expansion_shape(self):
        tasks = [TheoremTask(**BASE_TASK)]
        expanded = attempt_tasks(tasks, 3)
        assert [t.attempt for t in expanded] == [0, 1, 2]
        assert len({t.cache_key() for t in expanded}) == 3

    def test_base_attempt_is_overridden(self):
        tasks = [TheoremTask(**BASE_TASK, attempt=5)]
        expanded = attempt_tasks(tasks, 2)
        assert [t.attempt for t in expanded] == [0, 1]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            attempt_tasks([TheoremTask(**BASE_TASK)], 0)

    def test_attempt_zero_salt_empty(self):
        task = TheoremTask(**BASE_TASK)
        assert task.sample_salt() == ""

    def test_salt_derives_from_attempt_zero_key(self):
        task = TheoremTask(**{**BASE_TASK, "attempt": 2})
        base_key = TheoremTask(**BASE_TASK).cache_key()
        assert task.sample_salt() == attempt_seed(base_key, 2)


def _record(theorem, status, revalidated):
    return OutcomeRecord(
        theorem=theorem,
        model="gpt-4o",
        hinted=True,
        status=status,
        queries=1,
        revalidated=revalidated,
    )


class TestCoverageAtK:
    def test_mean_over_cells(self):
        records = [
            _record("a", "proved", True),
            _record("a", "stuck", False),
            _record("b", "stuck", False),
            _record("b", "stuck", False),
        ]
        cov = coverage_at_k(records, [1, 2])
        # Cell a: pass@1 = 0.5, pass@2 = 1.0; cell b: 0 at both.
        assert cov[1] == pytest.approx(0.25)
        assert cov[2] == pytest.approx(0.5)

    def test_repaired_counts_as_success(self):
        records = [
            _record("a", "repaired", True),
            _record("a", "stuck", False),
        ]
        assert coverage_at_k(records, [2])[2] == 1.0

    def test_unrevalidated_proof_does_not_count(self):
        records = [
            _record("a", "proved", False),
            _record("a", "stuck", False),
        ]
        assert coverage_at_k(records, [1])[1] == 0.0

    def test_empty_records(self):
        assert coverage_at_k([], [1, 4]) == {1: 0.0, 4: 0.0}


class TestBackendParity:
    def test_process_matches_serial_for_attempts(self, project):
        # Attempt salts must be a pure function of the task, not of
        # the process that executes it: the expanded sweep's records
        # are identical under serial and process backends.
        config = ExperimentConfig(max_theorems=2, fuel=8, repair_rounds=1)
        runner = Runner(project, config)
        tasks = attempt_tasks(
            sweep_tasks(
                runner.theorems_for("gpt-4o-mini"),
                "gpt-4o-mini",
                True,
                config,
            ),
            2,
        )
        serial = runner.run_tasks(tasks, executor=SerialExecutor())
        processed = runner.run_tasks(
            tasks, executor=ProcessPoolExecutor(config, jobs=2)
        )
        assert processed == serial
        assert len({t.cache_key() for t in tasks}) == len(tasks)
