"""Tracer/Span unit behaviour + the JSONL sink round-trip."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Tracer,
    load_spans,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestTracer:
    def test_spans_nest_via_the_stack(self):
        tracer = Tracer(trace_id="t1")
        with tracer.span("task"):
            with tracer.span("search"):
                with tracer.span("expand"):
                    pass
                with tracer.span("expand"):
                    pass
        spans = tracer.export()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (task,) = by_name["task"]
        (search,) = by_name["search"]
        assert task["parent"] is None
        assert search["parent"] == task["span"]
        assert [e["parent"] for e in by_name["expand"]] == [
            search["span"],
            search["span"],
        ]
        assert all(span["trace"] == "t1" for span in spans)

    def test_elapsed_and_start_use_the_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.tick(1.0)
        with tracer.span("outer"):
            clock.tick(2.0)
            with tracer.span("inner"):
                clock.tick(0.5)
        spans = {s["name"]: s for s in tracer.export()}
        assert spans["outer"]["start"] == pytest.approx(1.0)
        assert spans["outer"]["elapsed"] == pytest.approx(2.5)
        assert spans["inner"]["start"] == pytest.approx(3.0)
        assert spans["inner"]["elapsed"] == pytest.approx(0.5)

    def test_export_orders_by_span_id(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        # "b" finishes before "a": export must still be creation order.
        assert [s["name"] for s in tracer.export()] == ["a", "b"]

    def test_set_is_chainable_and_attrs_export(self):
        tracer = Tracer()
        with tracer.span("tactic") as span:
            assert span.set(verdict="valid") is span
            span.set(tactic="intros")
        (exported,) = tracer.export()
        assert exported["attrs"] == {"verdict": "valid", "tactic": "intros"}

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("task"):
                raise ValueError("boom")
        (span,) = tracer.export()
        assert span["attrs"]["error"] == "ValueError"

    def test_mis_nested_exit_closes_abandoned_inner_spans(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")  # never exited
        outer.__exit__(None, None, None)
        with tracer.span("next"):
            pass
        spans = {s["name"]: s for s in tracer.export()}
        # The new span must parent on the root, not on the leaked inner.
        assert spans["next"]["parent"] is None

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False


class TestNullTracer:
    def test_span_returns_a_shared_noop(self):
        a = NULL_TRACER.span("x", attr=1)
        b = NULL_TRACER.span("y")
        assert a is b  # no allocation per call
        with a as span:
            assert span.set(anything="goes") is span
        assert NULL_TRACER.export() == []

    def test_null_tracer_is_a_singleton_default(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(trace_id="rt")
        with tracer.span("task", theorem="rev_involutive"):
            with tracer.span("search"):
                pass
        sink = JsonlSink(path)
        assert sink.write(tracer.export()) == 2
        assert sink.spans_written == 2
        loaded = load_spans(path)
        assert loaded == tracer.export()

    def test_empty_write_creates_nothing(self, tmp_path):
        sink = JsonlSink(tmp_path / "never.jsonl")
        assert sink.write([]) == 0
        assert not (tmp_path / "never.jsonl").exists()

    def test_load_skips_blank_and_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        good = {"trace": "t", "span": 1, "parent": None, "name": "task"}
        path.write_text(
            json.dumps(good) + "\n\n{\"trace\": \"t\", \"span\": 2, \"na",
            encoding="utf-8",
        )
        assert load_spans(path) == [good]

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        sink = JsonlSink(path)
        barrier = threading.Barrier(4)

        def write(worker):
            tracer = Tracer(trace_id=f"w{worker}")
            for index in range(20):
                with tracer.span("expand", query=index):
                    pass
            barrier.wait()
            sink.write(tracer.export())

        threads = [
            threading.Thread(target=write, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = load_spans(path)
        assert len(spans) == 80
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span["trace"], []).append(span)
        assert set(by_trace) == {f"w{n}" for n in range(4)}
        assert all(len(group) == 20 for group in by_trace.values())
