"""The ``repro trace`` renderer: tree shape, labels, self-time table."""

from __future__ import annotations

from repro.obs.render import (
    group_traces,
    render_summary,
    render_trace,
    stage_summary,
)
from repro.obs.trace import Tracer


def make_spans():
    tracer = Tracer(trace_id="demo")
    with tracer.span("task", theorem="rev_involutive", model="gpt-4o"):
        with tracer.span("search", theorem="rev_involutive") as search:
            with tracer.span("select"):
                pass
            with tracer.span(
                "expand", query=1, fuel=16, depth=0, score=0.0, goal="G"
            ):
                with tracer.span("prompt_build"):
                    pass
                with tracer.span("generation") as gen:
                    gen.set(candidates=2)
                with tracer.span("tactic") as tac:
                    tac.set(tactic="intros", verdict="valid", message="")
                with tracer.span("tactic") as tac:
                    tac.set(
                        tactic="lia",
                        verdict="rejected",
                        message="not linear",
                    )
            search.set(status="stuck", queries=1)
    return tracer.export()


class TestGroupTraces:
    def test_groups_interleaved_traces_by_id(self):
        a = [{"trace": "a", "span": 1}, {"trace": "a", "span": 2}]
        b = [{"trace": "b", "span": 1}]
        interleaved = [a[0], b[0], a[1]]
        groups = group_traces(interleaved)
        assert groups == {"a": a, "b": b}


class TestRenderTrace:
    def test_tree_shape_and_annotations(self):
        text = render_trace(make_spans())
        lines = text.splitlines()
        assert lines[0].startswith("task rev_involutive")
        assert "search rev_involutive → stuck" in text
        assert "expand q1/16 depth=0" in text
        assert 'tactic "intros" → valid' in text
        assert 'tactic "lia" → rejected' in text
        assert "(not linear)" in text  # failure message shown
        # Valid tactics don't echo an (empty) message.
        valid_line = next(l for l in lines if '"intros"' in l)
        assert "()" not in valid_line
        # Box-drawing structure: children indent under their parent.
        assert any(l.startswith("└─ ") or l.startswith("├─ ") for l in lines)
        assert any("│  " in l or "   ├─" in l for l in lines)

    def test_orphan_spans_promote_to_root(self):
        spans = [
            {
                "trace": "t",
                "span": 5,
                "parent": 99,  # parent line lost (torn file)
                "name": "expand",
                "start": 0.0,
                "elapsed": 0.1,
                "attrs": {},
            }
        ]
        text = render_trace(spans)
        assert text.startswith("expand")

    def test_max_width_truncates_lines(self):
        text = render_trace(make_spans(), max_width=30)
        assert all(len(line) <= 30 for line in text.splitlines())


class TestStageSummary:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            {"span": 1, "parent": None, "name": "search", "elapsed": 10.0},
            {"span": 2, "parent": 1, "name": "expand", "elapsed": 8.0},
            {"span": 3, "parent": 2, "name": "tactic", "elapsed": 3.0},
        ]
        rows = {row["name"]: row for row in stage_summary(spans)}
        assert rows["search"]["self"] == 2.0
        assert rows["expand"]["self"] == 5.0
        assert rows["tactic"]["self"] == 3.0
        assert rows["tactic"]["calls"] == 1

    def test_rows_sorted_by_self_time_desc(self):
        spans = [
            {"span": 1, "parent": None, "name": "a", "elapsed": 1.0},
            {"span": 2, "parent": None, "name": "b", "elapsed": 5.0},
        ]
        assert [r["name"] for r in stage_summary(spans)] == ["b", "a"]

    def test_self_time_never_negative(self):
        # Clock granularity can make children sum past the parent.
        spans = [
            {"span": 1, "parent": None, "name": "p", "elapsed": 1.0},
            {"span": 2, "parent": 1, "name": "c", "elapsed": 1.5},
        ]
        rows = {row["name"]: row for row in stage_summary(spans)}
        assert rows["p"]["self"] == 0.0

    def test_render_summary_table(self):
        text = render_summary(make_spans())
        lines = text.splitlines()
        assert lines[0].split() == ["stage", "calls", "total", "self", "self%"]
        assert any("tactic" in line for line in lines[1:])
        assert all("%" in line for line in lines[1:])
