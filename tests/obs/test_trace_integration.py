"""Tracing end-to-end: span-tree shape and the determinism contract.

Two invariants ride on the tracer design:

* **tracing off is free** — the no-op tracer must leave outcome
  records byte-identical (the committed golden store is replayed by
  ``tests/eval/test_golden_replay.py`` with tracing off; here we check
  the *traced* run produces the same records, proving trace config
  never leaks into outcomes);
* **tracing on tells the true story** — the span tree for a known
  theorem must mirror the search structure: ``task → search →
  (select/expand)*`` with ``prompt_build``/``generation``/``tactic``
  children per expansion, one ``tactic`` span per candidate checked.
"""

from __future__ import annotations

from dataclasses import replace

from repro.eval import ExperimentConfig, Runner, RunStore, SerialExecutor
from repro.eval.tasks import TheoremTask, sweep_tasks
from repro.obs.trace import JsonlSink, load_spans

CONFIG = ExperimentConfig(max_theorems=3, fuel=16)


def run_records(project, store_path, trace, trace_sink=None):
    runner = Runner(project, replace(CONFIG, trace=trace))
    theorems = runner.theorems_for("gpt-4o-mini")
    tasks = sweep_tasks(theorems, "gpt-4o-mini", False, CONFIG)
    tasks += sweep_tasks(theorems, "gpt-4o-mini", True, CONFIG)
    store = RunStore(store_path)
    runner.run_tasks(
        tasks,
        executor=SerialExecutor(),
        store=store,
        trace_sink=trace_sink,
    )
    return store_path.read_text(encoding="utf-8")


class TestDeterminism:
    def test_traced_sweep_writes_byte_identical_records(
        self, project, tmp_path
    ):
        plain = run_records(project, tmp_path / "plain.jsonl", trace=False)
        sink = JsonlSink(tmp_path / "trace.jsonl")
        traced = run_records(
            project, tmp_path / "traced.jsonl", trace=True, trace_sink=sink
        )
        assert traced == plain
        assert sink.spans_written > 0

    def test_trace_config_is_not_part_of_the_cache_key(self):
        traced_config = replace(CONFIG, trace=True)
        a = TheoremTask.from_config(
            "rev_involutive", "gpt-4o-mini", False, CONFIG
        )
        b = TheoremTask.from_config(
            "rev_involutive", "gpt-4o-mini", False, traced_config
        )
        assert a.cache_key() == b.cache_key()

    def test_untraced_task_ships_no_trace(self, project):
        runner = Runner(project, CONFIG)
        task = TheoremTask.from_config(
            "rev_involutive", "gpt-4o-mini", False, CONFIG
        )
        assert runner.execute_task(task).trace is None


class TestSpanTreeShape:
    def test_known_theorem_trace_mirrors_the_search(self, project, tmp_path):
        runner = Runner(project, replace(CONFIG, trace=True))
        task = TheoremTask.from_config(
            "rev_involutive", "gpt-4o-mini", True, CONFIG
        )
        result = runner.execute_task(task)
        assert result.trace, "traced task must ship spans"
        sink = JsonlSink(tmp_path / "one.jsonl")
        sink.write(result.trace)
        spans = load_spans(tmp_path / "one.jsonl")
        assert spans == result.trace

        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (task_span,) = by_name["task"]
        (search_span,) = by_name["search"]
        assert task_span["parent"] is None
        assert search_span["parent"] == task_span["span"]
        assert task_span["attrs"]["theorem"] == "rev_involutive"
        assert task_span["attrs"]["status"] == result.record.status
        assert task_span["attrs"]["queries"] == result.record.queries
        assert search_span["attrs"]["status"] == result.record.status

        expands = by_name["expand"]
        assert len(expands) == result.record.queries
        expand_ids = {e["span"] for e in expands}
        assert all(e["parent"] == search_span["span"] for e in expands)
        # Per-expansion children: prompt build, generation, and one
        # tactic span per candidate the checker saw.
        for kind in ("prompt_build", "generation"):
            kids = by_name[kind]
            assert len(kids) == len(expands)
            assert all(k["parent"] in expand_ids for k in kids)
        tactics = by_name["tactic"]
        assert tactics and all(t["parent"] in expand_ids for t in tactics)
        candidates = sum(
            e["attrs"]["candidates"] for e in by_name["generation"]
        )
        assert len(tactics) == candidates
        for tactic in tactics:
            assert tactic["attrs"]["verdict"] in (
                "valid",
                "rejected",
                "duplicate",
                "timeout",
            )
            assert "tactic" in tactic["attrs"]
        # Every expand is annotated with fuel index, depth, and score.
        for index, expand in enumerate(
            sorted(expands, key=lambda e: e["span"])
        ):
            assert expand["attrs"]["query"] == index + 1
            assert expand["attrs"]["fuel"] == CONFIG.fuel
            assert "depth" in expand["attrs"]
            assert "score" in expand["attrs"]
            assert "goal" in expand["attrs"]

    def test_proved_theorem_records_qed_replay(self, project):
        # Find a provable cell cheaply: hinted gpt-4o-mini usually
        # proves at least one of the first few theorems at fuel 16.
        runner = Runner(project, replace(CONFIG, trace=True))
        for theorem in runner.theorems_for("gpt-4o-mini"):
            task = TheoremTask.from_config(
                theorem.name, "gpt-4o-mini", True, CONFIG
            )
            result = runner.execute_task(task)
            if result.record.status != "proved":
                continue
            names = {span["name"] for span in result.trace}
            assert "qed_replay" in names
            (replay,) = [
                s for s in result.trace if s["name"] == "qed_replay"
            ]
            assert replay["attrs"]["revalidated"] is True
            return
        raise AssertionError(
            "no provable cell in the mini-sweep; widen the probe"
        )
