"""Lints the Prometheus text exposition against the 0.0.4 grammar."""

from __future__ import annotations

import re

from repro.eval.instrumentation import Metrics
from repro.obs.prometheus import render_prometheus

METRIC_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
SAMPLE_LINE = re.compile(
    rf"^{METRIC_NAME}(?:\{{{LABEL}(?:,{LABEL})*\}})? "
    r"-?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|\d+)$"
)
TYPE_LINE = re.compile(rf"^# TYPE ({METRIC_NAME}) (counter|gauge)$")
HELP_LINE = re.compile(rf"^# HELP ({METRIC_NAME}) .+$")


def sample_service_block():
    return {
        "uptime": 12.5,
        "scheduler": {
            "queue_depth": 3,
            "in_flight": 2,
            "workers": 4,
            "max_queued": 32,
            "draining": False,
            "jobs": {"done": 5, "running": 2, "queued": 3},
        },
        "batchers": [
            {
                "model": "gpt-4o-mini",
                "batches": 9,
                "queries": 30,
                "max_batch_size": 6,
                "queue_depth": 1,
            }
        ],
        "proof_cache": {
            "persistent": False,
            "records": 7,
            "inflight": 2,
            "capacity": 4096,
            "evictions": 1,
            "path": None,
        },
        "kernel_cache_pins": 2,
    }


def sample_text():
    metrics = Metrics()
    metrics.incr("verdict.rejected", 4)
    metrics.incr("tasks.executed", 2)
    metrics.add_time("generation", 1.25)
    metrics.add_time("checking", 0.5)
    return render_prometheus(
        metrics.snapshot(), service=sample_service_block()
    )


class TestExpositionFormat:
    def test_every_line_matches_the_grammar(self):
        for line in sample_text().strip().splitlines():
            assert (
                TYPE_LINE.match(line)
                or HELP_LINE.match(line)
                or SAMPLE_LINE.match(line)
            ), f"illegal exposition line: {line!r}"

    def test_one_type_line_per_family_and_no_duplicates(self):
        families = [
            m.group(1)
            for m in map(TYPE_LINE.match, sample_text().splitlines())
            if m
        ]
        assert len(families) == len(set(families))

    def test_sample_names_belong_to_a_declared_family(self):
        text = sample_text()
        declared = {
            m.group(1)
            for m in map(TYPE_LINE.match, text.splitlines())
            if m
        }
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = re.match(METRIC_NAME, line).group(0)
            assert name in declared

    def test_counters_end_in_total_and_gauges_do_not(self):
        for line in sample_text().splitlines():
            match = TYPE_LINE.match(line)
            if not match:
                continue
            name, kind = match.groups()
            if kind == "counter":
                assert name.endswith("_total"), name
            else:
                assert not name.endswith("_total"), name

    def test_no_duplicate_label_sets_within_a_family(self):
        seen = set()
        for line in sample_text().splitlines():
            if line.startswith("#") or not line:
                continue
            key = line.rsplit(" ", 1)[0]
            assert key not in seen, f"duplicate sample {key!r}"
            seen.add(key)

    def test_counter_and_gauge_typing(self):
        types = {
            m.group(1): m.group(2)
            for m in map(TYPE_LINE.match, sample_text().splitlines())
            if m
        }
        assert types["repro_verdict_rejected_total"] == "counter"
        assert types["repro_stage_seconds_total"] == "counter"
        assert types["repro_service_batches_total"] == "counter"
        assert types["repro_service_proof_cache_evictions_total"] == "counter"
        assert types["repro_service_queue_depth"] == "gauge"
        assert types["repro_service_in_flight"] == "gauge"
        assert types["repro_service_uptime_seconds"] == "gauge"


class TestRendering:
    def test_dotted_counter_names_are_sanitized(self):
        text = render_prometheus({"counters": {"service.jobs.completed": 3}})
        assert "repro_service_jobs_completed_total 3" in text

    def test_colliding_sanitized_names_are_summed(self):
        text = render_prometheus(
            {"counters": {"a.b": 2, "a_b": 3}}
        )
        assert text.count("# TYPE repro_a_b_total counter") == 1
        assert "repro_a_b_total 5" in text

    def test_stage_timers_become_labelled_counters(self):
        text = render_prometheus(
            {"stages": {"generation": {"seconds": 2.5, "calls": 4}}}
        )
        assert 'repro_stage_seconds_total{stage="generation"} 2.5' in text
        assert 'repro_stage_calls_total{stage="generation"} 4' in text

    def test_label_values_are_escaped(self):
        text = render_prometheus(
            None,
            service={
                "batchers": [
                    {"model": 'we"ird\\name', "batches": 1, "queries": 1}
                ]
            },
        )
        assert 'model="we\\"ird\\\\name"' in text

    def test_accepts_a_metrics_object_directly(self):
        metrics = Metrics()
        metrics.incr("tasks.total", 7)
        assert "repro_tasks_total_total 7" in render_prometheus(metrics)

    def test_empty_snapshot_renders_only_stage_families(self):
        text = render_prometheus(None)
        assert "# TYPE repro_stage_seconds_total counter" in text
        assert text.endswith("\n")

    def test_jobs_by_state_gauge(self):
        text = render_prometheus(None, service=sample_service_block())
        assert 'repro_service_jobs{state="running"} 2' in text
        assert 'repro_service_jobs{state="done"} 5' in text
