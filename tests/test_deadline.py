"""Deadline enforcement across the stack.

One wall-clock budget, three enforcement points that must agree:

* :mod:`repro.deadline` — the shared primitive (thread-local stack);
* :class:`repro.kernel.reduction.Budget` — cooperative interrupt *at*
  the budget inside long reductions, not post-hoc;
* :class:`repro.serapi.checker.ProofChecker` — per-tactic deadline
  whose in-flight (``TacticTimeout``) and post-hoc (slow tactic that
  never hit a checkpoint) paths yield the same verdict and message;
* :class:`repro.core.search.BestFirstSearch` — per-theorem deadline
  yielding a clean ``Status.TIMEOUT`` outcome.

All clocks are fakes; no test here sleeps or depends on real time.
"""

import pytest

from repro.core import BestFirstSearch, SearchConfig, Status
from repro.deadline import (
    TIMEOUT_MESSAGE,
    Deadline,
    active_deadline,
    check_deadline,
    pop_deadline,
    push_deadline,
)
from repro.errors import TacticTimeout
from repro.kernel.reduction import DEADLINE_CHECK_INTERVAL, Budget
from repro.llm import Candidate
from repro.prompting import PromptBuilder
from repro.serapi import ProofChecker, Verdict


class ManualClock:
    """clock() returns a value advanced only by the test."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TickingClock:
    """clock() advances by ``step`` on every read — simulates a slow
    computation without sleeping."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestDeadlinePrimitive:
    def test_after_and_remaining(self):
        clock = ManualClock(100.0)
        deadline = Deadline.after(5.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == 5.0
        clock.now = 104.0
        assert deadline.remaining() == pytest.approx(1.0)
        clock.now = 106.0
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_stack_push_pop(self):
        assert active_deadline() is None
        clock = ManualClock()
        outer = Deadline.after(10.0, clock=clock)
        inner = Deadline.after(1.0, clock=clock)
        push_deadline(outer)
        push_deadline(inner)
        assert active_deadline() is inner
        pop_deadline()
        assert active_deadline() is outer
        pop_deadline()
        assert active_deadline() is None

    def test_check_deadline_raises_canonical_message(self):
        clock = ManualClock()
        push_deadline(Deadline.after(1.0, clock=clock))
        try:
            check_deadline()  # not expired: no-op
            clock.now = 2.0
            with pytest.raises(TacticTimeout) as excinfo:
                check_deadline()
            assert str(excinfo.value) == TIMEOUT_MESSAGE
        finally:
            pop_deadline()


class TestBudgetDeadline:
    def test_interrupts_at_check_interval(self):
        clock = ManualClock()
        budget = Budget(
            remaining=10**9, deadline=Deadline.after(5.0, clock=clock)
        )
        for _ in range(DEADLINE_CHECK_INTERVAL - 1):
            assert budget.spend()
        clock.now = 10.0  # budget blown mid-reduction
        with pytest.raises(TacticTimeout) as excinfo:
            budget.spend()
        # The cooperative interrupt and the checker's post-hoc verdict
        # must tell the same story.
        assert str(excinfo.value) == TIMEOUT_MESSAGE

    def test_no_deadline_never_interrupts(self):
        budget = Budget(remaining=2 * DEADLINE_CHECK_INTERVAL + 1)
        assert budget.deadline is None
        for _ in range(2 * DEADLINE_CHECK_INTERVAL):
            assert budget.spend()

    def test_adopts_active_deadline(self):
        clock = ManualClock()
        deadline = Deadline.after(5.0, clock=clock)
        push_deadline(deadline)
        try:
            assert Budget().deadline is deadline
        finally:
            pop_deadline()
        assert Budget().deadline is None

    def test_fuel_exhaustion_still_returns_false(self):
        budget = Budget(remaining=1)
        assert budget.spend()
        assert not budget.spend()


class TestCheckerDeadline:
    def test_slow_tactic_times_out_posthoc(self, env):
        # Every clock read costs 10 "seconds": the tactic completes but
        # blows its 5 s budget, which the post-hoc check converts into
        # the same TIMEOUT verdict the in-flight path produces.
        checker = ProofChecker(
            env, tactic_timeout=5.0, clock=TickingClock(10.0)
        )
        state = checker.start_text("forall n, n = n")
        result = checker.check(state, "intros")
        assert result.verdict is Verdict.TIMEOUT
        assert result.message == TIMEOUT_MESSAGE
        assert result.elapsed > 0.0

    def test_fast_tactic_unaffected(self, env):
        checker = ProofChecker(
            env, tactic_timeout=1e9, clock=TickingClock(0.001)
        )
        state = checker.start_text("forall n, n = n")
        assert checker.check(state, "intros").verdict is Verdict.VALID

    def test_elapsed_uses_injected_clock(self, env):
        clock = TickingClock(10.0)
        checker = ProofChecker(env, tactic_timeout=5.0, clock=clock)
        state = checker.start_text("forall n, n = n")
        result = checker.check(state, "intros")
        # elapsed is a whole number of ticks, not real wall-clock.
        assert result.elapsed % 10.0 == 0.0


class _OneTacticModel:
    name = "one-tactic"
    context_window = 10**9
    provides_log_probs = True

    def generate(self, prompt, k):
        return [Candidate(tactic="intros", log_prob=-1.0)]


class TestSearchTheoremDeadline:
    def _search(self, project, clock, **config_kwargs):
        theorem = project.theorem("plus_0_l")
        checker = ProofChecker(project.env_for(theorem))
        builder = PromptBuilder(project, theorem)
        search = BestFirstSearch(
            checker,
            _OneTacticModel(),
            SearchConfig(fuel=4, **config_kwargs),
            clock=clock,
        )
        return search.prove(theorem.name, theorem.statement, builder.build)

    def test_expired_deadline_yields_clean_timeout(self, project):
        # clock ticks 1 s per read, deadline 0.5 s: expired before the
        # first expansion — zero model queries, clean TIMEOUT status.
        result = self._search(
            project, TickingClock(1.0), theorem_deadline=0.5
        )
        assert result.status is Status.TIMEOUT
        assert result.stats.queries == 0
        assert result.stats.wall_seconds > 0.0

    def test_no_deadline_runs_to_normal_outcome(self, project):
        result = self._search(project, TickingClock(1.0))
        assert result.status in (Status.STUCK, Status.FUELOUT, Status.PROVED)

    def test_generous_deadline_is_invisible(self, project):
        bounded = self._search(
            project, TickingClock(0.001), theorem_deadline=1e9
        )
        unbounded = self._search(project, TickingClock(0.001))
        assert bounded.status == unbounded.status
        assert bounded.stats.queries == unbounded.stats.queries
