"""Context extraction, prompt assembly, truncation."""

import pytest

from repro.corpus.splits import make_splits
from repro.corpus.tokenizer import count_tokens
from repro.kernel.goals import initial_state
from repro.prompting import (
    GOAL_HEADER,
    PromptBuilder,
    context_for,
    reduced_context_for,
    strip_proof,
    truncate_to_window,
)


class TestContext:
    def test_never_reveals_future(self, project):
        theorem = project.theorem("plus_comm")
        context = context_for(project, theorem)
        assert "plus_comm" not in context  # the theorem itself is hidden
        assert "plus_0_r" in context  # earlier lemma statement shown
        assert "mult_comm" not in context  # later lemma hidden

    def test_vanilla_hides_proofs(self, project):
        theorem = project.theorem("plus_comm")
        context = context_for(project, theorem)
        assert "(* ... *)" in context
        assert "induction n; simpl" not in context

    def test_hints_reveal_selected_proofs(self, project):
        theorem = project.theorem("plus_comm")
        context = context_for(project, theorem, hint_names={"plus_0_r"})
        assert "rewrite IHn" in context  # plus_0_r's proof body

    def test_import_closure_only(self, project):
        theorem = project.theorem("plus_comm")  # ArithUtils
        context = context_for(project, theorem)
        assert "sep_star" not in context  # CHL not imported there

    def test_reduced_context(self, project):
        theorem = project.theorem("plus_comm")
        context = reduced_context_for(
            project, theorem, ["plus_0_r", "plus_n_Sm"]
        )
        assert "plus_0_r" in context
        assert "le_trans" not in context

    def test_strip_proof_keeps_statement(self, project):
        decl = next(
            d
            for f in project.files
            for d in f.declarations
            if d.kind == "lemma"
        )
        stripped = strip_proof(decl)
        assert decl.statement_text in stripped
        assert "Qed." in stripped


class TestPromptBuilder:
    def test_layout(self, project):
        theorem = project.theorem("rev_involutive")
        builder = PromptBuilder(project, theorem)
        state = initial_state(project.env_for(theorem), theorem.statement)
        prompt = builder.build(state, ["intros"])
        assert prompt.index(GOAL_HEADER) > prompt.index("Current theorem")
        assert "intros." in prompt
        assert prompt.rstrip().endswith("(* Next tactic? *)")

    def test_window_truncates(self, project):
        theorem = project.theorem("sb_ok_used_bound")
        builder = PromptBuilder(project, theorem, window_tokens=1000)
        state = initial_state(project.env_for(theorem), theorem.statement)
        prompt = builder.build(state, [])
        assert count_tokens(prompt) <= 1100  # line-granular slack
        assert GOAL_HEADER in prompt  # the tail always survives


class TestTruncation:
    def test_noop_when_fits(self):
        assert truncate_to_window("short text", 100) == "short text"

    def test_keeps_the_end(self):
        text = "\n".join(f"line {i}" for i in range(200))
        out = truncate_to_window(text, 50)
        assert "line 199" in out
        assert "line 0" not in out
        assert out.startswith("(* ...context truncated... *)")

    def test_respects_budget(self):
        text = "\n".join("word " * 10 for _ in range(100))
        out = truncate_to_window(text, 60)
        assert count_tokens(out) <= 75
