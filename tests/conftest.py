"""Shared fixtures: the corpus project is loaded once per session."""

from __future__ import annotations

import pytest

from repro.corpus.loader import load_project


@pytest.fixture(scope="session")
def project():
    """The full corpus, with every human proof machine-checked."""
    return load_project()


@pytest.fixture(scope="session")
def env(project):
    return project.env


@pytest.fixture()
def prove(env):
    """Helper: assert a statement is provable by a script in ``env``."""
    from repro.kernel.parser import parse_statement
    from repro.tactics.script import run_script

    def _prove(statement_text: str, script: str):
        statement = parse_statement(env, statement_text)
        return run_script(env, statement, script)

    return _prove


@pytest.fixture()
def fails(env):
    """Helper: assert a script does NOT prove a statement."""
    import pytest as _pytest

    from repro.errors import ReproError
    from repro.kernel.parser import parse_statement
    from repro.tactics.script import run_script

    def _fails(statement_text: str, script: str):
        statement = parse_statement(env, statement_text)
        with _pytest.raises(ReproError):
            run_script(env, statement, script)

    return _fails
