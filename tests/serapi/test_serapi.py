"""The SerAPI-like layer: sexp, session, protocol, checker."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError, TacticError
from repro.serapi import ProofChecker, SerapiServer, Session, Verdict
from repro.serapi.sexp import dumps, loads


class TestSexp:
    def test_roundtrip_simple(self):
        assert loads("(a b (c d))") == ["a", "b", ["c", "d"]]

    def test_quoting(self):
        value = ["Add", 'intros. simpl "quoted" \\ done']
        assert loads(dumps(value)) == value

    def test_empty_list(self):
        assert loads("()") == []

    def test_unclosed_fails(self):
        with pytest.raises(ParseError):
            loads("(a b")

    sexps = st.recursive(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=12,
        ),
        lambda children: st.lists(children, max_size=4),
        max_leaves=12,
    )

    @given(sexps)
    def test_roundtrip_property(self, value):
        assert loads(dumps(value)) == value


class TestSession:
    def test_exec_and_complete(self, env):
        session = Session.for_goal_text(env, "forall n, n + 0 = n")
        sid = session.add("induction n; simpl; auto")
        session.exec(sid)
        sid2 = session.add("rewrite IHn. reflexivity")
        with pytest.raises(TacticError):
            session.exec(sid2)  # two sentences in one add is invalid
        session.cancel(sid2)
        sid3 = session.add("rewrite IHn")
        sid4 = session.add("reflexivity")
        session.exec(sid4)
        assert session.is_complete()

    def test_cancel_rolls_back(self, env):
        session = Session.for_goal_text(env, "forall n, n = n")
        sid = session.add("intros")
        session.exec(sid)
        before = session.goals_text()
        sid2 = session.add("reflexivity")
        session.exec(sid2)
        session.cancel(sid2)
        assert session.goals_text() == before

    def test_failed_sentence_reports(self, env):
        session = Session.for_goal_text(env, "forall n, n = n")
        sid = session.add("discriminate")
        with pytest.raises(TacticError):
            session.exec(sid)
        assert session.sentences()[0].status == "failed"


class TestProtocol:
    def test_full_exchange(self, env):
        server = SerapiServer(env)
        out = server.handle_text('(NewDoc "forall n, n <= n")')
        assert "Added" in out[0]
        server.handle_text('(Add "intros")')
        server.handle_text('(Exec 1)')
        answers = server.handle_text("(Query Goals)")
        assert "n : nat" in answers[0]
        server.handle_text('(Add "apply le_n")')
        server.handle_text("(Exec 2)")
        answers = server.handle_text("(Query Completed)")
        assert "true" in answers[0]

    def test_error_becomes_coqexn(self, env):
        server = SerapiServer(env)
        server.handle_text('(NewDoc "forall n, n <= n")')
        server.handle_text('(Add "discriminate")')
        answers = server.handle_text("(Exec 1)")
        assert any("CoqExn" in a for a in answers)

    def test_command_without_doc(self, env):
        server = SerapiServer(env)
        answers = server.handle_text('(Add "intros")')
        assert any("CoqExn" in a for a in answers)


class TestChecker:
    def test_valid(self, env):
        checker = ProofChecker(env)
        state = checker.start_text("forall n, n = n")
        result = checker.check(state, "intros")
        assert result.verdict is Verdict.VALID

    def test_rejected_parse(self, env):
        checker = ProofChecker(env)
        state = checker.start_text("forall n, n = n")
        assert (
            checker.check(state, "frobnicate the goal").verdict
            is Verdict.REJECTED
        )

    def test_rejected_tactic(self, env):
        checker = ProofChecker(env)
        state = checker.start_text("forall n, n = n")
        assert checker.check(state, "discriminate").verdict is Verdict.REJECTED

    def test_duplicate_detection(self, env):
        checker = ProofChecker(env)
        state = checker.start_text("forall n m, n + m = m + n")
        seen = {checker.state_key(state)}
        # auto cannot close this; it no-ops back to the same state.
        result = checker.check(state, "auto", seen_keys=seen)
        assert result.verdict is Verdict.DUPLICATE

    def test_proves(self, env):
        checker = ProofChecker(env)
        state = checker.start_text("forall n, n = n")
        result = checker.check(state, "intros; reflexivity")
        assert result.ok and result.state.is_complete()
