"""FaultPlan parsing, determinism, and wrapper behaviour."""

import pytest

from repro.errors import (
    MalformedResponseError,
    RateLimitError,
    TransientModelError,
)
from repro.llm.interface import Candidate
from repro.testing import FAULTS_ENV_VAR, FaultPlan, FaultyChecker, FaultyGenerator


class EchoModel:
    name = "echo"
    context_window = 1000
    provides_log_probs = True

    def __init__(self) -> None:
        self.calls = 0

    def generate(self, prompt, k):
        self.calls += 1
        return [Candidate(tactic="auto.", log_prob=-1.0)]


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,transient=0.2,ratelimit=0.1,stall=0.05,"
            "malformed=0.1,truncate=0.05,crash=0.3,kill=ext_*,"
            "initfail=1,stall_seconds=0.5,max_failures=3"
        )
        assert plan.seed == 7
        assert plan.transient == 0.2
        assert plan.ratelimit == 0.1
        assert plan.crash == 0.3
        assert plan.kill == "ext_*"
        assert plan.initfail is True
        assert plan.stall_seconds == 0.5
        assert plan.max_failures == 3

    def test_empty_tokens_and_spaces_tolerated(self):
        plan = FaultPlan.parse(" transient=0.5 , , seed=1 ")
        assert plan.transient == 0.5 and plan.seed == 1

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("flood=0.5")

    def test_bad_token_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("transient")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FaultPlan.parse("transient=1.5")

    def test_from_spec_none_without_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.from_spec(None) is None

    def test_from_spec_env_fallback(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=9,transient=0.4")
        plan = FaultPlan.from_spec(None)
        assert plan is not None
        assert plan.seed == 9 and plan.transient == 0.4

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=9")
        assert FaultPlan.from_spec("seed=3").seed == 3


class TestDecisions:
    def test_fault_choice_is_deterministic(self):
        plan = FaultPlan(seed=1, transient=0.3, ratelimit=0.2)
        picks = [plan.model_fault_for("ctx", f"prompt {i}") for i in range(200)]
        assert picks == [
            plan.model_fault_for("ctx", f"prompt {i}") for i in range(200)
        ]
        assert "transient" in picks and "ratelimit" in picks
        assert picks.count(None) > 0

    def test_rates_roughly_respected(self):
        plan = FaultPlan(seed=5, transient=0.5)
        picks = [
            plan.model_fault_for("ctx", f"prompt {i}") for i in range(400)
        ]
        frac = picks.count("transient") / len(picks)
        assert 0.35 < frac < 0.65

    def test_context_decorrelates_decisions(self):
        plan = FaultPlan(seed=1, transient=0.5)
        a = [plan.model_fault_for("task-a", f"p{i}") for i in range(100)]
        b = [plan.model_fault_for("task-b", f"p{i}") for i in range(100)]
        assert a != b

    def test_failures_bounded_by_max(self):
        plan = FaultPlan(seed=2, transient=1.0, max_failures=3)
        counts = {plan.failures_for("ctx", f"p{i}") for i in range(100)}
        assert counts <= {1, 2, 3}
        assert len(counts) > 1

    def test_kill_glob_is_permanent(self):
        plan = FaultPlan(kill="ext_*")
        for attempt in range(5):
            assert plan.should_kill_worker("ext_tree_lookup", attempt)
        assert not plan.should_kill_worker("plus_0_l", 0)

    def test_crash_rate_first_attempt_only(self):
        plan = FaultPlan(seed=3, crash=1.0)
        assert plan.should_kill_worker("plus_0_l", 0)
        assert not plan.should_kill_worker("plus_0_l", 1)


class TestFaultyGenerator:
    def test_noop_plan_is_transparent(self):
        model = EchoModel()
        faulty = FaultyGenerator(model, FaultPlan())
        assert [c.tactic for c in faulty.generate("p", 4)] == ["auto."]
        assert model.calls == 1

    def test_fault_budget_then_success(self):
        model = EchoModel()
        plan = FaultPlan(seed=1, transient=1.0, max_failures=2)
        faulty = FaultyGenerator(model, plan)
        budget = plan.failures_for("", "p")
        for _ in range(budget):
            with pytest.raises(TransientModelError):
                faulty.generate("p", 4)
        # The budget is spent: the same prompt now succeeds forever.
        assert faulty.generate("p", 4)
        assert faulty.generate("p", 4)
        assert model.calls == 2

    def test_fault_kinds_map_to_typed_errors(self):
        model = EchoModel()
        for kind, exc_type in (
            ("ratelimit", RateLimitError),
            ("malformed", MalformedResponseError),
            ("truncate", MalformedResponseError),
        ):
            plan = FaultPlan(seed=1, **{kind: 1.0})
            faulty = FaultyGenerator(model, plan)
            with pytest.raises(exc_type):
                faulty.generate("p", 4)

    def test_stall_sleeps_then_answers(self):
        model = EchoModel()
        slept = []
        plan = FaultPlan(seed=1, stall=1.0, stall_seconds=7.5)
        faulty = FaultyGenerator(model, plan, sleep=slept.append)
        assert faulty.generate("p", 4)
        assert slept == [7.5]
        assert model.calls == 1

    def test_resilient_wrapper_absorbs_injected_faults(self):
        # The integration the chaos sweep relies on: injected transient
        # faults are retried through and the final candidates are
        # identical to the fault-free ones.
        from repro.llm.resilient import ResilientGenerator, RetryPolicy

        clean = EchoModel()
        baseline = clean.generate("p", 4)

        sleeps = []
        plan = FaultPlan(seed=1, transient=0.5, ratelimit=0.5, max_failures=2)
        resilient = ResilientGenerator(
            FaultyGenerator(EchoModel(), plan),
            policy=RetryPolicy(max_attempts=4),
            clock=lambda: 0.0,
            sleep=sleeps.append,
        )
        for i in range(20):
            out = resilient.generate(f"prompt {i}", 4)
            assert [c.tactic for c in out] == [c.tactic for c in baseline]
        assert sleeps, "at least one prompt should have drawn a fault"


class TestFaultyChecker:
    class _Checker:
        def check(self, state, tactic_text, seen_keys=None):
            return ("checked", tactic_text)

        def start(self, statement):
            return "state"

    def test_stall_injection_and_delegation(self):
        slept = []
        plan = FaultPlan(seed=1, stall=1.0, stall_seconds=2.0)
        faulty = FaultyChecker(self._Checker(), plan, sleep=slept.append)
        assert faulty.check("s", "auto.") == ("checked", "auto.")
        assert slept == [2.0]
        # Non-check attributes delegate to the inner checker.
        assert faulty.start(None) == "state"

    def test_no_stall_without_rate(self):
        slept = []
        faulty = FaultyChecker(self._Checker(), FaultPlan(), sleep=slept.append)
        faulty.check("s", "auto.")
        assert slept == []


class TestClusterFaultPlan:
    def test_parse_round_trips_through_to_spec(self):
        from repro.testing import ClusterFaultPlan

        plan = ClusterFaultPlan.parse(
            "seed=7,kill_job=rev_*,kill_times=2,"
            "stall_job=app_*,stall_seconds=0.5,corrupt_journal=3"
        )
        assert plan.kill_job == "rev_*"
        assert plan.kill_times == 2
        assert plan.stall_seconds == 0.5
        assert plan.corrupt_journal == 3
        assert ClusterFaultPlan.parse(plan.to_spec()) == plan

    def test_parse_rejects_unknown_keys(self):
        from repro.testing import ClusterFaultPlan

        with pytest.raises(ValueError, match="unknown cluster fault"):
            ClusterFaultPlan.parse("explode=1")
        with pytest.raises(ValueError, match="key=value"):
            ClusterFaultPlan.parse("justaword")

    def test_from_spec_falls_back_to_environment(self, monkeypatch):
        from repro.testing import CLUSTER_FAULTS_ENV_VAR, ClusterFaultPlan

        assert ClusterFaultPlan.from_spec(None) is None
        monkeypatch.setenv(CLUSTER_FAULTS_ENV_VAR, "kill_job=foo")
        plan = ClusterFaultPlan.from_spec(None)
        assert plan is not None and plan.kill_job == "foo"
        # An explicit spec wins over the environment.
        assert ClusterFaultPlan.from_spec("kill_job=bar").kill_job == "bar"

    def test_should_die_counts_deaths_across_processes(self, tmp_path):
        from repro.testing import ClusterFaultPlan

        plan = ClusterFaultPlan(kill_job="rev_*", kill_times=2)
        # Two deaths, then the theorem is allowed to finish — even from
        # a "different process" (a fresh plan reading the same markers).
        assert plan.should_die("rev_involutive", tmp_path) is True
        assert plan.should_die("rev_involutive", tmp_path) is True
        fresh = ClusterFaultPlan.parse(plan.to_spec())
        assert fresh.should_die("rev_involutive", tmp_path) is False
        # Non-matching theorems never die and drop no markers.
        assert plan.should_die("plus_comm", tmp_path) is False
        assert len(list(tmp_path.iterdir())) == 2

    def test_stall_only_matching_theorems(self):
        from repro.testing import ClusterFaultPlan

        plan = ClusterFaultPlan(stall_job="app_*", stall_seconds=0.25)
        assert plan.stall_for("app_assoc") == 0.25
        assert plan.stall_for("rev_involutive") == 0.0
