"""The best-first search engine."""

import pytest

from repro.core import (
    BestFirstSearch,
    Node,
    SearchConfig,
    Status,
    Transcript,
    make_frontier,
)
from repro.core.frontier import BestFirstFrontier
from repro.errors import ReproError
from repro.kernel.goals import initial_state
from repro.llm import Candidate, get_model
from repro.prompting import PromptBuilder
from repro.serapi import ProofChecker
from repro.tactics.script import run_script


class _ScriptedModel:
    """Replays fixed candidate lists (deterministic test double)."""

    name = "scripted"
    context_window = 10**9
    provides_log_probs = True

    def __init__(self, rounds):
        self.rounds = list(rounds)
        self.calls = 0

    def generate(self, prompt, k):
        index = min(self.calls, len(self.rounds) - 1)
        self.calls += 1
        return [
            Candidate(t, -float(i + 1))
            for i, t in enumerate(self.rounds[index][:k])
        ]


def _search_for(project, name, model, **config):
    theorem = project.theorem(name)
    env = project.env_for(theorem)
    checker = ProofChecker(env)
    builder = PromptBuilder(project, theorem)
    search = BestFirstSearch(checker, model, SearchConfig(**config))
    return search, theorem, builder, env


class TestFrontiers:
    def _nodes(self):
        import dataclasses

        dummy_state = object()
        return [
            Node(state=None, key=str(i), cum_log_prob=lp, depth=0)
            for i, lp in enumerate([-2.0, -0.5, -1.0])
        ]

    def test_best_first_order(self):
        frontier = make_frontier("best-first")
        for node in self._nodes():
            frontier.push(node)
        assert frontier.pop().cum_log_prob == -0.5
        assert frontier.pop().cum_log_prob == -1.0

    def test_depth_first_lifo(self):
        frontier = make_frontier("depth-first")
        for node in self._nodes():
            frontier.push(node)
        assert frontier.pop().key == "2"

    def test_breadth_first_fifo(self):
        frontier = make_frontier("breadth-first")
        for node in self._nodes():
            frontier.push(node)
        assert frontier.pop().key == "0"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_frontier("monte-carlo")

    def test_ties_fifo(self):
        frontier = BestFirstFrontier()
        a = Node(state=None, key="a", cum_log_prob=-1.0, depth=0)
        b = Node(state=None, key="b", cum_log_prob=-1.0, depth=0)
        frontier.push(a)
        frontier.push(b)
        assert frontier.pop() is a


class TestSearch:
    def test_scripted_proof_found(self, project):
        model = _ScriptedModel(
            [["intros", "auto"], ["induction n", "reflexivity"]]
        )
        search, theorem, builder, env = _search_for(
            project, "plus_0_l", model
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.PROVED
        run_script(env, theorem.statement, result.proof_text())  # Qed

    def test_stuck_when_all_rejected(self, project):
        model = _ScriptedModel([["discriminate", "nonsense tactic"]])
        search, theorem, builder, _ = _search_for(project, "plus_0_l", model)
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.STUCK
        assert result.stats.rejected >= 2

    def test_fuelout_on_query_limit(self, project):
        # `intros; simpl in *` style no-ops are duplicates; keep a
        # chain of new-but-useless states alive to exhaust the fuel.
        model = _ScriptedModel([["assert (0 = 0)"]])
        search, theorem, builder, _ = _search_for(
            project, "plus_comm", model, fuel=5
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.FUELOUT
        assert result.stats.queries == 5

    def test_duplicate_states_pruned(self, project):
        model = _ScriptedModel([["auto", "auto", "intros"]])
        search, theorem, builder, _ = _search_for(
            project, "plus_comm", model, fuel=3
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.stats.duplicates >= 1

    def test_dedup_off_keeps_duplicates(self, project):
        model = _ScriptedModel([["auto"], ["auto"], ["auto"]])
        search, theorem, builder, _ = _search_for(
            project, "plus_comm", model, fuel=2, dedup_states=False
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.stats.duplicates == 0

    def test_transcript_records_expansions(self, project):
        model = _ScriptedModel([["intros"], ["lia"]])
        search, theorem, builder, _ = _search_for(project, "le_trans", model)
        transcript = Transcript(theorem.name, model.name)
        result = search.prove(
            theorem.name, theorem.statement, builder.build, transcript
        )
        assert result.status is Status.PROVED
        assert len(transcript.events) >= 1
        assert transcript.summary()

    def test_real_model_end_to_end(self, project):
        model = get_model("gpt-4o")
        search, theorem, builder, env = _search_for(
            project, "app_nil_l", model
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.PROVED
        run_script(env, theorem.statement, result.proof_text())

    def test_search_deterministic(self, project):
        model = get_model("gemini-1.5-flash")
        search, theorem, builder, _ = _search_for(
            project, "Forall_inv", model, fuel=16
        )
        r1 = search.prove(theorem.name, theorem.statement, builder.build)
        r2 = search.prove(theorem.name, theorem.statement, builder.build)
        assert r1.status == r2.status
        assert r1.tactics == r2.tactics


class TestFrontierReservations:
    """reserve/commit/release across all three disciplines (virtual loss)."""

    def _nodes(self, scores=(-2.0, -0.5, -1.0)):
        return [
            Node(state=None, key=str(i), cum_log_prob=lp, depth=0)
            for i, lp in enumerate(scores)
        ]

    def test_best_first_reserve_skips_to_sibling(self):
        frontier = make_frontier("best-first")
        for node in self._nodes():
            frontier.push(node)
        first = frontier.reserve()
        second = frontier.reserve()
        assert first.cum_log_prob == -0.5
        assert second.cum_log_prob == -1.0  # not the reserved node again
        assert len(frontier) == 1

    def test_best_first_release_restores_exact_order(self):
        frontier = make_frontier("best-first")
        a = Node(state=None, key="a", cum_log_prob=-1.0, depth=0)
        b = Node(state=None, key="b", cum_log_prob=-1.0, depth=0)
        c = Node(state=None, key="c", cum_log_prob=-2.0, depth=0)
        for node in (a, b, c):
            frontier.push(node)
        r1 = frontier.reserve()
        r2 = frontier.reserve()
        assert (r1, r2) == (a, b)
        # Reverse reservation order: ties land back in FIFO position.
        frontier.release(r2)
        frontier.release(r1)
        assert frontier.pop() is a
        assert frontier.pop() is b
        assert frontier.pop() is c

    def test_best_first_commit_is_final(self):
        frontier = make_frontier("best-first")
        for node in self._nodes():
            frontier.push(node)
        node = frontier.reserve()
        frontier.commit(node)
        frontier.release(node)  # after commit: re-queued as a plain push
        assert len(frontier) == 3

    def test_depth_first_reserve_release_round_trip(self):
        frontier = make_frontier("depth-first")
        nodes = self._nodes()
        for node in nodes:
            frontier.push(node)
        r1 = frontier.reserve()
        r2 = frontier.reserve()
        assert (r1.key, r2.key) == ("2", "1")
        frontier.release(r2)
        frontier.release(r1)
        assert [frontier.pop().key for _ in range(3)] == ["2", "1", "0"]

    def test_breadth_first_reserve_release_round_trip(self):
        frontier = make_frontier("breadth-first")
        for node in self._nodes():
            frontier.push(node)
        r1 = frontier.reserve()
        r2 = frontier.reserve()
        assert (r1.key, r2.key) == ("0", "1")
        frontier.release(r2)
        frontier.release(r1)
        assert [frontier.pop().key for _ in range(3)] == ["0", "1", "2"]

    def test_len_tracks_pushes_pops_and_reservations(self):
        # Covers the deque-backed BFS pop fix alongside the others.
        for kind in ("best-first", "depth-first", "breadth-first"):
            frontier = make_frontier(kind)
            nodes = self._nodes(scores=tuple(-float(i) for i in range(6)))
            for node in nodes:
                frontier.push(node)
            assert len(frontier) == 6
            frontier.pop()
            assert len(frontier) == 5
            reserved = frontier.reserve()
            assert len(frontier) == 4
            frontier.release(reserved)
            assert len(frontier) == 5
            popped = [frontier.pop() for _ in range(5)]
            assert all(p is not None for p in popped)
            assert len(frontier) == 0
            assert frontier.pop() is None

    def test_breadth_first_fifo_order_at_scale(self):
        frontier = make_frontier("breadth-first")
        nodes = self._nodes(scores=tuple(-float(i) for i in range(50)))
        for node in nodes:
            frontier.push(node)
        assert [frontier.pop().key for _ in range(50)] == [
            str(i) for i in range(50)
        ]


class TestPrefixSeeding:
    def test_first_expansion_is_deepest_prefix_node(self, project):
        # Regression: the old -(n-d)*1e-6 seed scoring gave the deepest
        # prefix node exactly 0.0 — tying the root, which was pushed
        # first and therefore won the FIFO tie-break, so every repair
        # round re-expanded the root instead of the failure frontier.
        model = _ScriptedModel([["lia"]])
        search, theorem, builder, _ = _search_for(project, "le_trans", model)
        prefixes_seen = []

        def spy_prompt(state, prefix):
            prefixes_seen.append(list(prefix))
            return builder.build(state, prefix)

        result = search.prove(
            theorem.name,
            theorem.statement,
            spy_prompt,
            initial_tactics=["intros"],
        )
        assert result.status is Status.PROVED
        assert prefixes_seen[0] == ["intros"], (
            "the seeded prefix node, not the root, must be expanded first"
        )

    def test_deepest_of_longer_prefix_wins(self, project):
        model = _ScriptedModel([["nonsense tactic"]])
        search, theorem, builder, _ = _search_for(
            project, "rev_involutive", model, fuel=1
        )
        prefixes_seen = []

        def spy_prompt(state, prefix):
            prefixes_seen.append(list(prefix))
            return builder.build(state, prefix)

        search.prove(
            theorem.name,
            theorem.statement,
            spy_prompt,
            initial_tactics=["induction l", "simpl"],
        )
        assert prefixes_seen[0] == ["induction l", "simpl"]

    def test_seeded_frontier_scores_increase_with_depth(self, project):
        theorem = project.theorem("rev_involutive")
        env = project.env_for(theorem)
        checker = ProofChecker(env)
        frontier = BestFirstFrontier()
        state = checker.start(theorem.statement)
        root = Node(
            state=state, key=checker.state_key(state), cum_log_prob=0.0,
            depth=0,
        )
        frontier.push(root)
        # Mirror prove()'s seeding arithmetic directly.
        for offset in range(3):
            frontier.push(
                Node(
                    state=state,
                    key=f"seed{offset}",
                    cum_log_prob=(offset + 1) * 1e-6,
                    depth=offset + 1,
                )
            )
        order = [frontier.pop().depth for _ in range(4)]
        assert order == [3, 2, 1, 0]


class TestZeroCandidateExpansions:
    def test_empty_candidate_list_records_sentinel_failure(self, project):
        from repro.core.search import NO_CANDIDATES_TACTIC

        model = _ScriptedModel([[]])
        search, theorem, builder, _ = _search_for(project, "plus_0_l", model)
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.STUCK
        assert result.failure is not None, (
            "a zero-candidate STUCK search must stay repair-eligible"
        )
        assert result.failure.failed_tactic == NO_CANDIDATES_TACTIC
        assert result.failure.verdict == "rejected"

    def test_all_blank_tactics_record_sentinel_failure(self, project):
        from repro.core.search import NO_CANDIDATES_TACTIC

        model = _ScriptedModel([["", "   "]])
        search, theorem, builder, _ = _search_for(project, "plus_0_l", model)
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.STUCK
        assert result.failure is not None
        assert result.failure.failed_tactic == NO_CANDIDATES_TACTIC

    def test_real_rejection_still_wins_over_sentinel(self, project):
        model = _ScriptedModel([["nonsense tactic", ""]])
        search, theorem, builder, _ = _search_for(project, "plus_0_l", model)
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.failure is not None
        assert result.failure.failed_tactic == "nonsense tactic"


class TestPipelinedSearch:
    def _result_fields(self, result):
        return (
            result.status,
            result.tactics,
            result.stats.queries,
            result.stats.candidates,
            result.stats.nodes_created,
            result.stats.nodes_expanded,
            result.stats.rejected,
            result.stats.duplicates,
            result.failure,
        )

    def _prove(self, project, name, depth, fuel=16, **kwargs):
        model = get_model("gpt-4o")
        search, theorem, builder, _ = _search_for(
            project, name, model, fuel=fuel, pipeline_depth=depth, **kwargs
        )
        transcript = Transcript(theorem.name, model.name)
        result = search.prove(
            theorem.name, theorem.statement, builder.build, transcript
        )
        return result, transcript

    def test_depth1_matches_serial_exactly(self, project):
        for name in ("app_nil_l", "le_trans", "rev_involutive"):
            serial, serial_t = self._prove(project, name, depth=0)
            piped, piped_t = self._prove(project, name, depth=1)
            assert self._result_fields(piped) == self._result_fields(serial)
            assert piped_t.events == serial_t.events

    def test_depth4_same_coverage(self, project):
        for name in ("app_nil_l", "le_trans", "plus_0_l"):
            serial, _ = self._prove(project, name, depth=0)
            piped, _ = self._prove(project, name, depth=4)
            assert piped.status is serial.status
            if serial.status is Status.PROVED:
                assert piped.tactics  # a valid proof, possibly different

    def test_depth4_run_to_run_deterministic(self, project):
        r1, t1 = self._prove(project, "rev_involutive", depth=4)
        r2, t2 = self._prove(project, "rev_involutive", depth=4)
        assert self._result_fields(r1) == self._result_fields(r2)
        assert t1.events == t2.events

    def test_depth1_fuelout_and_stuck_match_serial(self, project):
        model_rounds = [["assert (0 = 0)"]]
        for depth in (0, 1):
            model = _ScriptedModel(model_rounds)
            search, theorem, builder, _ = _search_for(
                project, "plus_comm", model, fuel=5, pipeline_depth=depth
            )
            result = search.prove(
                theorem.name, theorem.statement, builder.build
            )
            assert result.status is Status.FUELOUT
            assert result.stats.queries == 5

    def test_pipelined_timeout_releases_frontier(self, project):
        # A fake clock that expires the deadline after the first round:
        # the pipelined loop must exit TIMEOUT cleanly (released
        # reservations, closed pipeline) rather than hanging.
        ticks = [0.0]

        def fake_clock():
            ticks[0] += 0.4
            return ticks[0]

        model = _ScriptedModel([["assert (0 = 0)"]])
        theorem = project.theorem("plus_comm")
        checker = ProofChecker(project.env_for(theorem))
        builder = PromptBuilder(project, theorem)
        search = BestFirstSearch(
            checker,
            model,
            SearchConfig(fuel=50, pipeline_depth=3, theorem_deadline=2.0),
            clock=fake_clock,
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.TIMEOUT
