"""The best-first search engine."""

import pytest

from repro.core import (
    BestFirstSearch,
    Node,
    SearchConfig,
    Status,
    Transcript,
    make_frontier,
)
from repro.core.frontier import BestFirstFrontier
from repro.errors import ReproError
from repro.kernel.goals import initial_state
from repro.llm import Candidate, get_model
from repro.prompting import PromptBuilder
from repro.serapi import ProofChecker
from repro.tactics.script import run_script


class _ScriptedModel:
    """Replays fixed candidate lists (deterministic test double)."""

    name = "scripted"
    context_window = 10**9
    provides_log_probs = True

    def __init__(self, rounds):
        self.rounds = list(rounds)
        self.calls = 0

    def generate(self, prompt, k):
        index = min(self.calls, len(self.rounds) - 1)
        self.calls += 1
        return [
            Candidate(t, -float(i + 1))
            for i, t in enumerate(self.rounds[index][:k])
        ]


def _search_for(project, name, model, **config):
    theorem = project.theorem(name)
    env = project.env_for(theorem)
    checker = ProofChecker(env)
    builder = PromptBuilder(project, theorem)
    search = BestFirstSearch(checker, model, SearchConfig(**config))
    return search, theorem, builder, env


class TestFrontiers:
    def _nodes(self):
        import dataclasses

        dummy_state = object()
        return [
            Node(state=None, key=str(i), cum_log_prob=lp, depth=0)
            for i, lp in enumerate([-2.0, -0.5, -1.0])
        ]

    def test_best_first_order(self):
        frontier = make_frontier("best-first")
        for node in self._nodes():
            frontier.push(node)
        assert frontier.pop().cum_log_prob == -0.5
        assert frontier.pop().cum_log_prob == -1.0

    def test_depth_first_lifo(self):
        frontier = make_frontier("depth-first")
        for node in self._nodes():
            frontier.push(node)
        assert frontier.pop().key == "2"

    def test_breadth_first_fifo(self):
        frontier = make_frontier("breadth-first")
        for node in self._nodes():
            frontier.push(node)
        assert frontier.pop().key == "0"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_frontier("monte-carlo")

    def test_ties_fifo(self):
        frontier = BestFirstFrontier()
        a = Node(state=None, key="a", cum_log_prob=-1.0, depth=0)
        b = Node(state=None, key="b", cum_log_prob=-1.0, depth=0)
        frontier.push(a)
        frontier.push(b)
        assert frontier.pop() is a


class TestSearch:
    def test_scripted_proof_found(self, project):
        model = _ScriptedModel(
            [["intros", "auto"], ["induction n", "reflexivity"]]
        )
        search, theorem, builder, env = _search_for(
            project, "plus_0_l", model
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.PROVED
        run_script(env, theorem.statement, result.proof_text())  # Qed

    def test_stuck_when_all_rejected(self, project):
        model = _ScriptedModel([["discriminate", "nonsense tactic"]])
        search, theorem, builder, _ = _search_for(project, "plus_0_l", model)
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.STUCK
        assert result.stats.rejected >= 2

    def test_fuelout_on_query_limit(self, project):
        # `intros; simpl in *` style no-ops are duplicates; keep a
        # chain of new-but-useless states alive to exhaust the fuel.
        model = _ScriptedModel([["assert (0 = 0)"]])
        search, theorem, builder, _ = _search_for(
            project, "plus_comm", model, fuel=5
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.FUELOUT
        assert result.stats.queries == 5

    def test_duplicate_states_pruned(self, project):
        model = _ScriptedModel([["auto", "auto", "intros"]])
        search, theorem, builder, _ = _search_for(
            project, "plus_comm", model, fuel=3
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.stats.duplicates >= 1

    def test_dedup_off_keeps_duplicates(self, project):
        model = _ScriptedModel([["auto"], ["auto"], ["auto"]])
        search, theorem, builder, _ = _search_for(
            project, "plus_comm", model, fuel=2, dedup_states=False
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.stats.duplicates == 0

    def test_transcript_records_expansions(self, project):
        model = _ScriptedModel([["intros"], ["lia"]])
        search, theorem, builder, _ = _search_for(project, "le_trans", model)
        transcript = Transcript(theorem.name, model.name)
        result = search.prove(
            theorem.name, theorem.statement, builder.build, transcript
        )
        assert result.status is Status.PROVED
        assert len(transcript.events) >= 1
        assert transcript.summary()

    def test_real_model_end_to_end(self, project):
        model = get_model("gpt-4o")
        search, theorem, builder, env = _search_for(
            project, "app_nil_l", model
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.PROVED
        run_script(env, theorem.statement, result.proof_text())

    def test_search_deterministic(self, project):
        model = get_model("gemini-1.5-flash")
        search, theorem, builder, _ = _search_for(
            project, "Forall_inv", model, fuel=16
        )
        r1 = search.prove(theorem.name, theorem.statement, builder.build)
        r2 = search.prove(theorem.name, theorem.statement, builder.build)
        assert r1.status == r2.status
        assert r1.tactics == r2.tactics
