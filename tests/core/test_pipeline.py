"""GenerationPipeline: inline/threaded/submit_fn backends + ordering."""

import threading

import pytest

from repro.core.pipeline import GenerationHandle, GenerationPipeline


def test_depth_below_one_rejected():
    with pytest.raises(ValueError):
        GenerationPipeline(lambda p, k: [], 0)


def test_depth1_executes_inline_without_threads():
    calls = []

    def gen(prompt, k):
        calls.append((prompt, k, threading.current_thread().name))
        return [prompt.upper()]

    pipeline = GenerationPipeline(gen, 1)
    handle = pipeline.submit("a", 4)
    # Already executed, on the caller's thread, before result().
    assert calls == [("a", 4, threading.current_thread().name)]
    assert handle.result() == ["A"]
    assert pipeline._pool is None
    pipeline.close()


def test_depth1_errors_raise_at_submit():
    def gen(prompt, k):
        raise RuntimeError("boom")

    pipeline = GenerationPipeline(gen, 1)
    with pytest.raises(RuntimeError):
        pipeline.submit("a", 1)


def test_sequence_numbers_are_submission_ordered():
    pipeline = GenerationPipeline(lambda p, k: [p], 1)
    handles = [pipeline.submit(str(i), 1) for i in range(5)]
    assert [h.seq for h in handles] == [0, 1, 2, 3, 4]


def test_threaded_results_commit_in_submission_order():
    # The first submission parks until the second finishes; committing
    # handles in submission order must still return them in order.
    first_may_finish = threading.Event()

    def gen(prompt, k):
        if prompt == "slow":
            assert first_may_finish.wait(5.0)
        return [prompt]

    with GenerationPipeline(gen, 2) as pipeline:
        slow = pipeline.submit("slow", 1)
        fast = pipeline.submit("fast", 1)
        # Completion order: fast then slow.
        assert fast._future.result() == ["fast"]
        first_may_finish.set()
        # Commit order: slow (seq 0) then fast (seq 1).
        assert slow.result() == ["slow"]
        assert fast.result() == ["fast"]
        assert (slow.seq, fast.seq) == (0, 1)


def test_threaded_error_surfaces_at_result():
    def gen(prompt, k):
        if prompt == "bad":
            raise RuntimeError("boom")
        return [prompt]

    with GenerationPipeline(gen, 2) as pipeline:
        good = pipeline.submit("good", 1)
        bad = pipeline.submit("bad", 1)
        assert good.result() == ["good"]
        with pytest.raises(RuntimeError):
            bad.result()


def test_submit_fn_backend_is_preferred():
    routed = []

    class FakePending:
        def __init__(self, prompt):
            self.prompt = prompt

        def result(self):
            return [self.prompt + "!"]

    def submit_fn(prompt, k):
        routed.append(prompt)
        return FakePending(prompt)

    pipeline = GenerationPipeline(
        lambda p, k: pytest.fail("generate_fn must not be called"),
        3,
        submit_fn=submit_fn,
    )
    handle = pipeline.submit("x", 2)
    assert routed == ["x"]
    assert handle.result() == ["x!"]
    assert pipeline._pool is None  # no thread pool was created
    pipeline.close()


def test_submit_fn_ignored_at_depth1():
    # Depth 1 is the serial-identity mode: always inline.
    pipeline = GenerationPipeline(
        lambda p, k: ["inline"],
        1,
        submit_fn=lambda p, k: pytest.fail("must not route async"),
    )
    assert pipeline.submit("x", 1).result() == ["inline"]


def test_close_is_idempotent():
    pipeline = GenerationPipeline(lambda p, k: [p], 2)
    pipeline.submit("a", 1).result()
    pipeline.close()
    pipeline.close()


def test_handle_result_repeatable():
    handle = GenerationHandle(0, value=["v"])
    assert handle.result() == ["v"]
    assert handle.result() == ["v"]
