"""The alternative search engines: MCTS and Rango-style linear."""

import dataclasses

import pytest

from repro.core import (
    LinearConfig,
    LinearSearch,
    MCTSConfig,
    MCTSSearch,
    Status,
)
from repro.errors import GenerationError
from repro.llm import Candidate
from repro.llm.models import SimulatedModel, get_model
from repro.prompting import PromptBuilder
from repro.serapi import ProofChecker
from repro.tactics.script import run_script


class _ScriptedModel:
    name = "scripted"
    context_window = 10**9
    provides_log_probs = True

    def __init__(self, rounds):
        self.rounds = list(rounds)
        self.calls = 0

    def generate(self, prompt, k):
        index = min(self.calls, len(self.rounds) - 1)
        self.calls += 1
        return [
            Candidate(t, -float(i + 1))
            for i, t in enumerate(self.rounds[index][:k])
        ]


def _setup(project, name, model):
    theorem = project.theorem(name)
    env = project.env_for(theorem)
    return (
        theorem,
        env,
        ProofChecker(env),
        PromptBuilder(project, theorem),
    )


@pytest.mark.parametrize("engine_cls,config", [
    (MCTSSearch, MCTSConfig(fuel=32)),
    (LinearSearch, LinearConfig(fuel=32)),
])
class TestEngines:
    def test_scripted_proof(self, project, engine_cls, config):
        model = _ScriptedModel([["intros"], ["reflexivity", "auto"]])
        theorem, env, checker, builder = _setup(project, "plus_0_l", model)
        result = engine_cls(checker, model, config).prove(
            theorem.name, theorem.statement, builder.build
        )
        assert result.status is Status.PROVED
        run_script(env, theorem.statement, result.proof_text())

    def test_stuck_on_garbage(self, project, engine_cls, config):
        model = _ScriptedModel([["nonsense", "discriminate"]])
        theorem, env, checker, builder = _setup(project, "plus_0_l", model)
        result = engine_cls(checker, model, config).prove(
            theorem.name, theorem.statement, builder.build
        )
        assert result.status is Status.STUCK

    def test_fuelout(self, project, engine_cls, config):
        model = _ScriptedModel([["assert (0 = 0)"]])
        theorem, env, checker, builder = _setup(project, "plus_comm", model)
        small = dataclasses.replace(config, fuel=3)
        result = engine_cls(checker, model, small).prove(
            theorem.name, theorem.statement, builder.build
        )
        assert result.status is Status.FUELOUT
        assert result.stats.queries == 3

    def test_rejects_wholeproof_model(self, project, engine_cls, config):
        from repro.llm import WholeProofModel

        with pytest.raises(GenerationError):
            engine_cls(ProofChecker(project.env), WholeProofModel(), config)

    def test_real_model_deterministic(self, project, engine_cls, config):
        model = SimulatedModel(
            dataclasses.replace(get_model("gpt-4o").profile, lucidity=1.0)
        )
        theorem, env, checker, builder = _setup(project, "Forall_inv", model)
        engine = engine_cls(checker, model, config)
        r1 = engine.prove(theorem.name, theorem.statement, builder.build)
        r2 = engine.prove(theorem.name, theorem.statement, builder.build)
        assert r1.status == r2.status
        assert r1.tactics == r2.tactics
        if r1.proved:
            run_script(env, theorem.statement, r1.proof_text())


class TestLinearBacktracking:
    def test_backtracks_to_spare_candidate(self, project):
        # First pick leads to a dead end ("split" is invalid on an Eq
        # goal after intros? use a path: intros then a dead assert);
        # the spare candidate closes the proof.
        model = _ScriptedModel(
            [
                ["intros"],
                ["assert (1 = 1)", "reflexivity"],
                ["fail"],  # dead end after the assert path
            ]
        )
        theorem, env, checker, builder = _setup(project, "plus_0_l", model)
        result = LinearSearch(
            checker, model, LinearConfig(fuel=16)
        ).prove(theorem.name, theorem.statement, builder.build)
        assert result.status is Status.PROVED
        run_script(env, theorem.statement, result.proof_text())


class TestMCTSInternals:
    def test_exploration_visits_accumulate(self, project):
        model = _ScriptedModel(
            [["intros"], ["assert (0 = 0)", "assert (1 = 1)"], ["auto"]]
        )
        theorem, env, checker, builder = _setup(project, "plus_comm", model)
        result = MCTSSearch(
            checker, model, MCTSConfig(fuel=6)
        ).prove(theorem.name, theorem.statement, builder.build)
        assert result.stats.queries <= 6
        assert result.stats.nodes_expanded >= 2
