"""Cluster recovery contract: crash, replay, quarantine, degradation.

The PR's acceptance tests: a worker killed mid-job must be invisible
in the final records (supervisor restart + router re-dispatch,
byte-identical store); a router crash must replay unfinished journaled
jobs to the same bytes; a corrupt journal line must be quarantined,
not fatal; and the degradation ladder must be observable on
``/healthz`` over real HTTP.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.eval.store import OutcomeRecord, RunStore
from repro.eval.tasks import task_from_json
from repro.service import ProverClient
from repro.service.cluster import ClusterConfig, HashRing, ProverCluster

MODEL = "gpt-4o-mini"
FUEL = 10
THEOREMS = ["plus_0_l", "plus_0_r", "plus_n_Sm"]


def bodies():
    return [
        {"theorem": name, "model": MODEL, "fuel": FUEL}
        for name in THEOREMS
    ]


def boot(tmp_path, name, **overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("threads", 2)
    overrides.setdefault("state_dir", str(tmp_path / name))
    cluster = ProverCluster(ClusterConfig(**overrides))
    cluster.start()
    return cluster


def run_all(cluster, task_bodies, budget=120.0):
    ids = []
    for body in task_bodies:
        status, payload = cluster.submit(dict(body))
        assert status in (200, 202), payload
        ids.append(payload["job"])
    wait_all(cluster, ids, budget)
    return ids


def wait_all(cluster, ids, budget=120.0):
    deadline = time.monotonic() + budget
    for job_id in ids:
        while True:
            _, body = cluster.job_status(job_id, wait=2.0)
            if body.get("state") in ("done", "failed"):
                break
            assert time.monotonic() < deadline, f"{job_id} never finished"


def store_bytes(cluster, task_bodies, ids, path):
    store = RunStore(path)
    for body, job_id in zip(task_bodies, ids):
        _, status = cluster.job_status(job_id)
        assert status["state"] == "done", status
        store.put(
            task_from_json(dict(body)),
            OutcomeRecord.from_json(status["record"]),
        )
    return path.read_bytes()


# ----------------------------------------------------------------------
# Hash ring (pure, no processes)
# ----------------------------------------------------------------------


def test_ring_is_deterministic_and_covers_all_workers():
    ring = HashRing(4)
    keys = [f"key-{i}" for i in range(200)]
    owners = [ring.lookup(k, lambda i: True) for k in keys]
    assert owners == [ring.lookup(k, lambda i: True) for k in keys]
    assert set(owners) == {0, 1, 2, 3}  # vnodes spread the ranges


def test_ring_reroutes_only_the_dead_workers_ranges():
    ring = HashRing(3)
    keys = [f"key-{i}" for i in range(200)]
    before = {k: ring.lookup(k, lambda i: True) for k in keys}
    after = {k: ring.lookup(k, lambda i: i != 1) for k in keys}
    for key in keys:
        if before[key] != 1:
            assert after[key] == before[key]  # survivors keep ranges
        else:
            assert after[key] in (0, 2)
    assert ring.lookup("anything", lambda i: False) is None


# ----------------------------------------------------------------------
# Crash recovery (forked worker fleets)
# ----------------------------------------------------------------------


def test_kill_worker_mid_job_recovers_byte_identical(tmp_path):
    cluster = boot(tmp_path, "baseline")
    try:
        ids = run_all(cluster, bodies())
        baseline = store_bytes(
            cluster, bodies(), ids, tmp_path / "baseline.jsonl"
        )
    finally:
        cluster.close(timeout=30)

    victim = THEOREMS[1]
    cluster = boot(
        tmp_path, "kill", cluster_faults=f"kill_job={victim}"
    )
    try:
        ids = run_all(cluster, bodies())
        deadline = time.monotonic() + 30
        while (
            cluster.supervisor.restarts_total < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        assert cluster.metrics.counter("cluster.worker_deaths") >= 1
        assert cluster.supervisor.restarts_total >= 1
        _, text = cluster.metrics_text()
        restarts = [
            line
            for line in text.splitlines()
            if line.startswith("repro_cluster_worker_restarts_total ")
        ]
        assert restarts and int(float(restarts[0].split()[1])) >= 1
        recovered = store_bytes(
            cluster, bodies(), ids, tmp_path / "kill.jsonl"
        )
    finally:
        cluster.close(timeout=30)
    assert recovered == baseline


def test_router_crash_replays_journal_byte_identical(tmp_path):
    cluster = boot(tmp_path, "baseline")
    try:
        ids = run_all(cluster, bodies())
        baseline = store_bytes(
            cluster, bodies(), ids, tmp_path / "baseline.jsonl"
        )
    finally:
        cluster.close(timeout=30)

    # Crash-stop mid-run: a stall pins one job in flight so the abort
    # is guaranteed to strand journaled work.
    cluster = boot(
        tmp_path,
        "replay",
        cluster_faults=f"stall_job={THEOREMS[2]},stall_seconds=2",
    )
    ids = []
    for body in bodies():
        _, payload = cluster.submit(dict(body))
        ids.append(payload["job"])
    time.sleep(0.1)
    cluster.abort()
    assert cluster.journal.pending(), "abort raced the sweep"

    successor = boot(tmp_path, "replay")
    try:
        assert successor.replayed_jobs >= 1
        wait_all(successor, ids)
        replayed = store_bytes(
            successor, bodies(), ids, tmp_path / "replay.jsonl"
        )
    finally:
        successor.close(timeout=30)
    assert replayed == baseline


def test_corrupt_journal_line_is_quarantined_not_fatal(tmp_path):
    cluster = boot(tmp_path, "corrupt")
    try:
        run_all(cluster, bodies()[:1])
    finally:
        cluster.close(timeout=30)
    journal_path = tmp_path / "corrupt" / "journal.jsonl"
    lines = journal_path.read_text(encoding="utf-8").splitlines()
    lines[0] = lines[0][:-5] + "XXXX}"
    journal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    cluster = boot(tmp_path, "corrupt")
    try:
        assert cluster.journal.quarantined == 1
        assert cluster.journal.quarantine_path().exists()
        run_all(cluster, bodies()[:1])  # sweep still completes
        _, snapshot = cluster.metrics_snapshot()
        assert (
            snapshot["service"]["cluster"]["journal"]["quarantined"] == 1
        )
    finally:
        cluster.close(timeout=30)


# ----------------------------------------------------------------------
# Degradation ladder over real HTTP
# ----------------------------------------------------------------------


def test_degradation_ladder_is_observable_on_healthz(tmp_path):
    cluster = boot(tmp_path, "ladder")
    httpd = cluster.make_http_server()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = ProverClient(f"http://{host}:{port}", timeout=60.0)
    try:
        health = client.healthz()
        assert (health["status"], health["ladder"]) == ("ok", "healthy")
        assert health["degraded"] is False

        # Warm the router cache while healthy (cache_only rung needs it).
        job = client.prove(**bodies()[0])
        if job["state"] not in ("done", "failed"):
            client.wait(job["job"], timeout=120.0)

        cluster.supervisor.disable_worker(0)
        health = client.healthz()
        assert health["ladder"] == "shed_adhoc"
        assert health["degraded"] is True
        from repro.service import ProverServiceError

        with pytest.raises(ProverServiceError) as err:
            client.prove(goal="forall n, n = n", model=MODEL)
        assert err.value.status == 429  # raw goals shed first

        cluster.supervisor.disable_worker(1)
        health = client.healthz()
        assert health["ladder"] == "cache_only"
        warm = client.prove(**bodies()[0])  # router-cache hit
        assert warm["state"] == "done" and warm["cached"]
        with pytest.raises(ProverServiceError) as err:
            client.prove(**bodies()[2])  # cold: nothing can run it
        assert err.value.status == 503

        text = client.metrics_text()
        assert "repro_cluster_degraded 2" in text
        assert "repro_cluster_worker_restarts_total" in text
    finally:
        httpd.shutdown()
        httpd.server_close()
        cluster.close(timeout=30)
