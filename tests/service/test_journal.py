"""Write-ahead job journal: lifecycle, replay view, quarantine."""

from __future__ import annotations

import json

from repro.eval.store import checksum_payload
from repro.service.journal import JobJournal


def test_lifecycle_round_trips_through_reload(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.admitted("cj-1", "k1", {"theorem": "t1", "model": "m"})
    journal.dispatched("cj-1", 0)
    journal.done("cj-1", "k1", {"status": "proved"})
    journal.admitted("cj-2", "k2", {"theorem": "t2", "model": "m"})
    journal.dispatched("cj-2", 1)
    journal.failed("cj-2", "worker exploded")
    journal.admitted("cj-3", "k3", {"theorem": "t3", "model": "m"})
    journal.dispatched("cj-3", 0)
    journal.dispatched("cj-3", 1)  # re-dispatch appends, never rewrites

    reloaded = JobJournal(path)
    assert reloaded.quarantined == 0
    assert [e.job for e in reloaded.finished()] == ["cj-1", "cj-2"]
    assert [e.job for e in reloaded.pending()] == ["cj-3"]
    assert reloaded.entries["cj-1"].record == {"status": "proved"}
    assert reloaded.entries["cj-2"].error == "worker exploded"
    assert reloaded.entries["cj-3"].workers == [0, 1]
    # The live journal's view must match what a reload sees.
    assert journal.stats() == reloaded.stats()


def test_pending_requires_an_admitted_body(tmp_path):
    journal = JobJournal(tmp_path / "journal.jsonl")
    # A dispatched event without its admitted line (quarantined, or a
    # torn multi-line write) must not become a replayable ghost job.
    journal.dispatched("cj-9", 2)
    assert journal.pending() == []


def test_corrupt_lines_are_quarantined_on_load(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.admitted("cj-1", "k1", {"theorem": "t1", "model": "m"})
    journal.done("cj-1", "k1", {"status": "proved"})
    journal.admitted("cj-2", "k2", {"theorem": "t2", "model": "m"})
    lines = path.read_text(encoding="utf-8").splitlines()
    lines[1] = lines[1][:-4] + 'XX"}'  # flip bytes: checksum mismatch
    lines.append("not json at all")
    # A journal line without a sum is corrupt (no legacy exemption).
    lines.append(json.dumps({"event": "failed", "job": "cj-2"}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    reloaded = JobJournal(path)
    assert reloaded.quarantined == 3
    assert reloaded.quarantine_path().exists()
    assert (
        len(reloaded.quarantine_path().read_text().splitlines()) == 3
    )
    # cj-1 lost its terminal event to corruption -> pending again;
    # the bogus un-summed "failed" line must not have finished cj-2.
    assert [e.job for e in reloaded.pending()] == ["cj-1", "cj-2"]
    # The rewritten journal is clean: a second load quarantines nothing.
    assert JobJournal(path).quarantined == 0


def test_checksums_use_the_store_convention(tmp_path):
    path = tmp_path / "journal.jsonl"
    JobJournal(path).admitted("cj-1", "k", {"theorem": "t", "model": "m"})
    obj = json.loads(path.read_text(encoding="utf-8"))
    stored = obj.pop("sum")
    assert stored == checksum_payload(obj)
