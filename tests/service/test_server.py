"""Prover service end-to-end over real HTTP.

Includes the PR's acceptance differential: for the same task, the
record produced (a) solo by the evaluation runner, (b) by the service
under concurrent micro-batched load, and (c) by a warm-cache replay
must be byte-identical.
"""

from __future__ import annotations

import threading

import pytest

from repro.eval.config import ExperimentConfig
from repro.eval.runner import Runner
from repro.eval.tasks import CACHE_KEY_VERSION, TheoremTask
from repro.service import (
    ProverClient,
    ProverServiceError,
    ProverService,
    QueueFullError,
    ServerConfig,
    ShuttingDownError,
)

FUEL = 12  # small budgets keep the e2e searches quick


def boot(project, **overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("workers", 4)
    overrides.setdefault("batch_window", 0.005)
    overrides.setdefault("max_batch_size", 4)
    service = ProverService(ServerConfig(**overrides), project=project)
    httpd = service.make_http_server()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = ProverClient(f"http://{host}:{port}", timeout=60.0)
    return service, httpd, client


def shut(service, httpd):
    httpd.shutdown()
    httpd.server_close()
    assert service.close(timeout=30.0)


@pytest.fixture()
def served(project):
    service, httpd, client = boot(project)
    yield service, client
    shut(service, httpd)


class TestRoutes:
    def test_healthz(self, served):
        _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["cache_key_version"] == CACHE_KEY_VERSION
        assert health["uptime"] >= 0

    def test_metrics_exposes_service_gauges(self, served):
        _, client = served
        snapshot = client.metrics()
        service_block = snapshot["service"]
        assert "queue_depth" in service_block["scheduler"]
        assert "in_flight" in service_block["scheduler"]
        assert service_block["proof_cache"]["persistent"] is False
        assert "kernel_cache_pins" in service_block
        assert "metrics" in snapshot

    def test_unknown_route_is_404(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_theorem_is_404(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(theorem="no_such_lemma", model="gpt-4o")
        assert excinfo.value.status == 404

    def test_unknown_model_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(theorem="rev_involutive", model="gpt-5-turbo")
        assert excinfo.value.status == 400

    def test_unknown_task_field_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(
                theorem="rev_involutive", model="gpt-4o", fule=9
            )
        assert excinfo.value.status == 400
        assert "fule" in excinfo.value.payload["error"]

    def test_unknown_job_is_404(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_raw_goal_is_registered_and_proved(self, served):
        _, client = served
        status = client.prove_and_wait(
            goal="forall n : nat, n = n",
            model="gpt-4o",
            fuel=FUEL,
            timeout=60.0,
        )
        assert status["state"] == "done"
        assert status["task"]["theorem"].startswith("goal_")
        assert status["record"]["status"] == "proved"

    def test_goal_that_does_not_parse_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(goal="forall ) mangled (", model="gpt-4o")
        assert excinfo.value.status == 400

    def test_goal_and_theorem_together_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(
                goal="forall n : nat, n = n",
                theorem="rev_involutive",
                model="gpt-4o",
            )
        assert excinfo.value.status == 400


class TestWaitValidation:
    """Regression: ``float("nan")`` parses, then sails through the
    min/max long-poll clamp (NaN fails every comparison) straight into
    ``Event.wait(nan)``.  Non-finite waits must be a 400, like any
    other malformed parameter."""

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "Infinity"])
    def test_non_finite_wait_is_400(self, served, bad):
        service, client = served
        job = client.prove(
            theorem="rev_involutive", model="gpt-4o", fuel=FUEL
        )
        with pytest.raises(ProverServiceError) as excinfo:
            client._request("GET", f"/jobs/{job['job']}?wait={bad}")
        assert excinfo.value.status == 400
        assert "finite" in excinfo.value.payload["error"]

    def test_non_numeric_wait_is_still_400(self, served):
        _, client = served
        job = client.prove(
            theorem="rev_involutive", model="gpt-4o", fuel=FUEL
        )
        with pytest.raises(ProverServiceError) as excinfo:
            client._request("GET", f"/jobs/{job['job']}?wait=soon")
        assert excinfo.value.status == 400

    def test_in_process_callers_get_the_defensive_clamp(self, project):
        # Direct job_status calls bypass HTTP validation; a NaN there
        # must degrade to "no wait", not crash in threading.
        service = ProverService(ServerConfig(port=0), project=project)
        try:
            _, payload = service.submit(
                {"theorem": "rev_involutive", "model": "gpt-4o",
                 "fuel": FUEL}
            )
            status, body = service.job_status(
                payload["job"], wait=float("nan")
            )
            assert status == 200
            assert body["id"] == payload["job"]
        finally:
            service.close(timeout=30.0)


class TestPrometheusMetrics:
    def test_json_remains_the_default(self, served):
        _, client = served
        snapshot = client.metrics()
        assert "service" in snapshot and "metrics" in snapshot

    def test_format_param_negotiates_prometheus_text(self, served):
        _, client = served
        client.prove_and_wait(
            theorem="rev_involutive", model="gpt-4o", fuel=FUEL,
            timeout=60.0,
        )
        text = client.metrics_text()
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "# TYPE repro_service_uptime_seconds gauge" in text
        assert "# TYPE repro_stage_seconds_total counter" in text
        # The completed job shows up in the counter families.
        assert "repro_service_jobs_completed_total 1" in text
        # One TYPE line per family — the no-duplicate invariant.
        families = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert len(families) == len(set(families))

    def test_accept_header_negotiates_prometheus_text(self, served):
        import urllib.request

        _, client = served
        request = urllib.request.Request(
            client.base_url + "/metrics",
            headers={"Accept": "text/plain"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode("utf-8")
        assert body.startswith("# HELP")

    def test_explicit_json_format_wins_over_accept(self, served):
        import json as json_mod
        import urllib.request

        _, client = served
        request = urllib.request.Request(
            client.base_url + "/metrics?format=json",
            headers={"Accept": "text/plain"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            payload = json_mod.loads(response.read().decode("utf-8"))
        assert "service" in payload


class TestTracedJobs:
    def test_trace_path_records_each_job_as_a_span_tree(
        self, project, tmp_path
    ):
        from repro.obs.trace import load_spans

        trace_path = tmp_path / "jobs.jsonl"
        service, httpd, client = boot(project, trace_path=str(trace_path))
        try:
            status = client.prove_and_wait(
                theorem="rev_involutive", model="gpt-4o", fuel=FUEL,
                timeout=60.0,
            )
            assert status["state"] == "done"
        finally:
            shut(service, httpd)
        spans = load_spans(trace_path)
        names = {span["name"] for span in spans}
        assert {"job", "task", "search", "expand", "tactic"} <= names
        (job_span,) = [s for s in spans if s["name"] == "job"]
        assert job_span["parent"] is None
        assert job_span["attrs"]["theorem"] == "rev_involutive"

    def test_traced_record_matches_untraced(self, project, tmp_path):
        body = {"theorem": "rev_involutive", "model": "gpt-4o",
                "fuel": FUEL}
        service, httpd, client = boot(project)
        try:
            plain = client.prove_and_wait(timeout=60.0, **body)
        finally:
            shut(service, httpd)
        service, httpd, client = boot(
            project, trace_path=str(tmp_path / "t.jsonl")
        )
        try:
            traced = client.prove_and_wait(timeout=60.0, **body)
        finally:
            shut(service, httpd)
        assert traced["record"] == plain["record"]


class TestErrorMapping:
    """Scheduler refusals map to backpressure status codes."""

    def test_queue_full_maps_to_429(self, project, monkeypatch):
        service = ProverService(ServerConfig(port=0), project=project)

        def full(task):
            raise QueueFullError("queue full")

        monkeypatch.setattr(service.scheduler, "submit", full)
        status, payload = service.submit(
            {"theorem": "rev_involutive", "model": "gpt-4o"}
        )
        assert status == 429
        service.close(timeout=10.0)

    def test_draining_maps_to_503(self, project, monkeypatch):
        service = ProverService(ServerConfig(port=0), project=project)

        def draining(task):
            raise ShuttingDownError("draining")

        monkeypatch.setattr(service.scheduler, "submit", draining)
        status, payload = service.submit(
            {"theorem": "rev_involutive", "model": "gpt-4o"}
        )
        assert status == 503
        service.close(timeout=10.0)


class TestDeadline:
    def test_default_deadline_yields_clean_timeout_over_http(self, project):
        service, httpd, client = boot(project, default_deadline=0.001)
        try:
            hard = max(project.theorems, key=lambda t: t.proof_tokens)
            status = client.prove_and_wait(
                theorem=hard.name,
                model="gpt-4o-mini",
                fuel=4096,
                timeout=120.0,
            )
            assert status["state"] == "done"
            assert status["record"]["status"] == "timeout"
        finally:
            shut(service, httpd)


class TestWarmCache:
    def test_persistent_cache_survives_a_restart(self, project, tmp_path):
        path = str(tmp_path / "service-cache.jsonl")
        body = {"theorem": "rev_involutive", "model": "gpt-4o", "fuel": FUEL}

        service, httpd, client = boot(project, cache_path=path, workers=2)
        try:
            first = client.prove_and_wait(timeout=120.0, **body)
            assert first["state"] == "done"
        finally:
            shut(service, httpd)

        # A fresh process-equivalent: new service, same cache file.
        warm, httpd, client = boot(project, cache_path=path, workers=2)
        try:
            replay = client.prove(**body)
            assert replay["state"] == "done"
            assert replay["cached"] is True
            assert replay["record"] == first["record"]
        finally:
            shut(warm, httpd)


class TestRepairKnobs:
    def test_repair_rounds_flow_through_post_prove(self, served):
        # No dedicated route: ``repair_rounds`` is an ordinary task
        # field, so it reaches the runner through task_from_json and is
        # folded into the cache key before admission.
        _, client = served
        body = {
            "theorem": "le_trans",
            "model": "gpt-4o",
            "hinted": True,
            "fuel": 64,
        }
        repaired = client.prove_and_wait(
            repair_rounds=2, timeout=120.0, **body
        )
        assert repaired["state"] == "done"
        assert repaired["record"]["status"] == "repaired"
        assert repaired["record"]["attempts"] == 2

        # Same knobs again: served from the proof cache, byte-equal.
        replay = client.prove(repair_rounds=2, **body)
        assert replay["cached"] is True
        assert replay["record"] == repaired["record"]

        # Different knobs are a different cache key, not a stale hit.
        plain = client.prove_and_wait(timeout=120.0, **body)
        assert plain["record"]["status"] == "stuck"

    def test_attempt_index_is_a_first_class_knob(self, served):
        _, client = served
        body = {
            "theorem": "rev_involutive",
            "model": "gpt-4o",
            "fuel": FUEL,
        }
        base = client.prove_and_wait(timeout=120.0, **body)
        resampled = client.prove_and_wait(attempt=1, timeout=120.0, **body)
        assert base["state"] == resampled["state"] == "done"
        assert base["task"]["attempt"] == 0
        assert resampled["task"]["attempt"] == 1
        assert base["key"] != resampled["key"]


class TestAcceptanceDifferential:
    def test_solo_batched_and_warm_records_are_identical(self, project):
        """The PR's end-to-end determinism gate: same (theorem, model,
        params, CACHE_KEY_VERSION) ⇒ same record — solo runner,
        concurrent batched service, warm-cache replay."""
        ranked = sorted(project.theorems, key=lambda t: t.proof_tokens)
        picks = [ranked[0], ranked[len(ranked) // 2], ranked[-1]]
        bodies = [
            {
                "theorem": theorem.name,
                "model": model,
                "hinted": hinted,
                "fuel": FUEL,
            }
            for theorem in picks
            for model, hinted in (("gpt-4o", False), ("gpt-4o-mini", True))
        ]

        # (a) solo reference: the evaluation runner, no service stack.
        runner = Runner(project, ExperimentConfig())
        solo = {}
        for body in bodies:
            task = TheoremTask(
                theorem=body["theorem"],
                model=body["model"],
                hinted=body["hinted"],
                fuel=body["fuel"],
            )
            solo[task.cache_key()] = runner.execute_task(task).record.to_json()

        # (b) the same cells, concurrently, through HTTP + micro-batching.
        service, httpd, client = boot(project, workers=len(bodies))
        try:
            results = [None] * len(bodies)

            def drive(index):
                results[index] = client.prove_and_wait(
                    timeout=180.0, **bodies[index]
                )

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(len(bodies))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            for status in results:
                assert status is not None and status["state"] == "done"
                assert status["record"] == solo[status["key"]]

            # (c) warm replay: identical record, served from cache.
            replay = client.prove(**bodies[0])
            assert replay["state"] == "done" and replay["cached"] is True
            assert replay["record"] == solo[replay["key"]]

            # Micro-batching actually engaged under the concurrent load.
            batchers = client.metrics()["service"]["batchers"]
            assert sum(b["queries"] for b in batchers) > 0
        finally:
            shut(service, httpd)
