"""Prover service end-to-end over real HTTP.

Includes the PR's acceptance differential: for the same task, the
record produced (a) solo by the evaluation runner, (b) by the service
under concurrent micro-batched load, and (c) by a warm-cache replay
must be byte-identical.
"""

from __future__ import annotations

import threading

import pytest

from repro.eval.config import ExperimentConfig
from repro.eval.runner import Runner
from repro.eval.tasks import CACHE_KEY_VERSION, TheoremTask
from repro.service import (
    ProverClient,
    ProverServiceError,
    ProverService,
    QueueFullError,
    ServerConfig,
    ShuttingDownError,
)

FUEL = 12  # small budgets keep the e2e searches quick


def boot(project, **overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("workers", 4)
    overrides.setdefault("batch_window", 0.005)
    overrides.setdefault("max_batch_size", 4)
    service = ProverService(ServerConfig(**overrides), project=project)
    httpd = service.make_http_server()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = ProverClient(f"http://{host}:{port}", timeout=60.0)
    return service, httpd, client


def shut(service, httpd):
    httpd.shutdown()
    httpd.server_close()
    assert service.close(timeout=30.0)


@pytest.fixture()
def served(project):
    service, httpd, client = boot(project)
    yield service, client
    shut(service, httpd)


class TestRoutes:
    def test_healthz(self, served):
        _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["cache_key_version"] == CACHE_KEY_VERSION
        assert health["uptime"] >= 0

    def test_metrics_exposes_service_gauges(self, served):
        _, client = served
        snapshot = client.metrics()
        service_block = snapshot["service"]
        assert "queue_depth" in service_block["scheduler"]
        assert "in_flight" in service_block["scheduler"]
        assert service_block["proof_cache"]["persistent"] is False
        assert "kernel_cache_pins" in service_block
        assert "metrics" in snapshot

    def test_unknown_route_is_404(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_theorem_is_404(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(theorem="no_such_lemma", model="gpt-4o")
        assert excinfo.value.status == 404

    def test_unknown_model_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(theorem="rev_involutive", model="gpt-5-turbo")
        assert excinfo.value.status == 400

    def test_unknown_task_field_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(
                theorem="rev_involutive", model="gpt-4o", fule=9
            )
        assert excinfo.value.status == 400
        assert "fule" in excinfo.value.payload["error"]

    def test_unknown_job_is_404(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_raw_goal_is_registered_and_proved(self, served):
        _, client = served
        status = client.prove_and_wait(
            goal="forall n : nat, n = n",
            model="gpt-4o",
            fuel=FUEL,
            timeout=60.0,
        )
        assert status["state"] == "done"
        assert status["task"]["theorem"].startswith("goal_")
        assert status["record"]["status"] == "proved"

    def test_goal_that_does_not_parse_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(goal="forall ) mangled (", model="gpt-4o")
        assert excinfo.value.status == 400

    def test_goal_and_theorem_together_is_400(self, served):
        _, client = served
        with pytest.raises(ProverServiceError) as excinfo:
            client.prove(
                goal="forall n : nat, n = n",
                theorem="rev_involutive",
                model="gpt-4o",
            )
        assert excinfo.value.status == 400


class TestErrorMapping:
    """Scheduler refusals map to backpressure status codes."""

    def test_queue_full_maps_to_429(self, project, monkeypatch):
        service = ProverService(ServerConfig(port=0), project=project)

        def full(task):
            raise QueueFullError("queue full")

        monkeypatch.setattr(service.scheduler, "submit", full)
        status, payload = service.submit(
            {"theorem": "rev_involutive", "model": "gpt-4o"}
        )
        assert status == 429
        service.close(timeout=10.0)

    def test_draining_maps_to_503(self, project, monkeypatch):
        service = ProverService(ServerConfig(port=0), project=project)

        def draining(task):
            raise ShuttingDownError("draining")

        monkeypatch.setattr(service.scheduler, "submit", draining)
        status, payload = service.submit(
            {"theorem": "rev_involutive", "model": "gpt-4o"}
        )
        assert status == 503
        service.close(timeout=10.0)


class TestDeadline:
    def test_default_deadline_yields_clean_timeout_over_http(self, project):
        service, httpd, client = boot(project, default_deadline=0.001)
        try:
            hard = max(project.theorems, key=lambda t: t.proof_tokens)
            status = client.prove_and_wait(
                theorem=hard.name,
                model="gpt-4o-mini",
                fuel=4096,
                timeout=120.0,
            )
            assert status["state"] == "done"
            assert status["record"]["status"] == "timeout"
        finally:
            shut(service, httpd)


class TestWarmCache:
    def test_persistent_cache_survives_a_restart(self, project, tmp_path):
        path = str(tmp_path / "service-cache.jsonl")
        body = {"theorem": "rev_involutive", "model": "gpt-4o", "fuel": FUEL}

        service, httpd, client = boot(project, cache_path=path, workers=2)
        try:
            first = client.prove_and_wait(timeout=120.0, **body)
            assert first["state"] == "done"
        finally:
            shut(service, httpd)

        # A fresh process-equivalent: new service, same cache file.
        warm, httpd, client = boot(project, cache_path=path, workers=2)
        try:
            replay = client.prove(**body)
            assert replay["state"] == "done"
            assert replay["cached"] is True
            assert replay["record"] == first["record"]
        finally:
            shut(warm, httpd)


class TestAcceptanceDifferential:
    def test_solo_batched_and_warm_records_are_identical(self, project):
        """The PR's end-to-end determinism gate: same (theorem, model,
        params, CACHE_KEY_VERSION) ⇒ same record — solo runner,
        concurrent batched service, warm-cache replay."""
        ranked = sorted(project.theorems, key=lambda t: t.proof_tokens)
        picks = [ranked[0], ranked[len(ranked) // 2], ranked[-1]]
        bodies = [
            {
                "theorem": theorem.name,
                "model": model,
                "hinted": hinted,
                "fuel": FUEL,
            }
            for theorem in picks
            for model, hinted in (("gpt-4o", False), ("gpt-4o-mini", True))
        ]

        # (a) solo reference: the evaluation runner, no service stack.
        runner = Runner(project, ExperimentConfig())
        solo = {}
        for body in bodies:
            task = TheoremTask(
                theorem=body["theorem"],
                model=body["model"],
                hinted=body["hinted"],
                fuel=body["fuel"],
            )
            solo[task.cache_key()] = runner.execute_task(task).record.to_json()

        # (b) the same cells, concurrently, through HTTP + micro-batching.
        service, httpd, client = boot(project, workers=len(bodies))
        try:
            results = [None] * len(bodies)

            def drive(index):
                results[index] = client.prove_and_wait(
                    timeout=180.0, **bodies[index]
                )

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(len(bodies))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            for status in results:
                assert status is not None and status["state"] == "done"
                assert status["record"] == solo[status["key"]]

            # (c) warm replay: identical record, served from cache.
            replay = client.prove(**bodies[0])
            assert replay["state"] == "done" and replay["cached"] is True
            assert replay["record"] == solo[replay["key"]]

            # Micro-batching actually engaged under the concurrent load.
            batchers = client.metrics()["service"]["batchers"]
            assert sum(b["queries"] for b in batchers) > 0
        finally:
            shut(service, httpd)
