"""Scheduler: admission control, single-flight, drain, deadlines.

Most tests inject stub ``execute`` functions (an Event-gated search
stand-in) so the concurrency logic is exercised without real proof
searches; the deadline test runs a real search against the corpus.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.eval.store import OutcomeRecord
from repro.eval.tasks import TheoremTask
from repro.service.proofcache import ProofCache
from repro.service.scheduler import (
    JobState,
    QueueFullError,
    Scheduler,
    SchedulerConfig,
    ShuttingDownError,
)


def make_task(theorem="rev_involutive", **kwargs):
    kwargs.setdefault("model", "gpt-4o-mini")
    kwargs.setdefault("hinted", False)
    return TheoremTask(theorem=theorem, **kwargs)


def make_result(task, status="proved"):
    return SimpleNamespace(
        record=OutcomeRecord(
            theorem=task.theorem,
            model=task.model,
            hinted=task.hinted,
            status=status,
            queries=2,
        ),
        metrics=None,
    )


class GatedExecute:
    """A search stand-in that blocks until the test opens the gate."""

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, task, generator):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.gate.wait(10.0), "test never opened the gate"
        return make_result(task)


def make_scheduler(execute, **config_kwargs):
    config_kwargs.setdefault("workers", 1)
    config_kwargs.setdefault("max_queued", 4)
    return Scheduler(
        execute=execute,
        generator_for=lambda model: None,
        cache=ProofCache(),
        config=SchedulerConfig(**config_kwargs),
    )


class TestLifecycle:
    def test_submit_run_complete(self):
        scheduler = make_scheduler(lambda task, gen: make_result(task))
        job = scheduler.submit(make_task())
        assert job.done.wait(10.0)
        assert job.state is JobState.DONE
        assert job.record.status == "proved"
        assert scheduler.shutdown(timeout=10.0)

    def test_completed_result_serves_future_requests_from_cache(self):
        execute = GatedExecute()
        execute.gate.set()
        scheduler = make_scheduler(execute)
        task = make_task()
        first = scheduler.submit(task)
        assert first.done.wait(10.0)
        second = scheduler.submit(task)
        # Instant completion from the shared cache: no second search.
        assert second.finished() and second.cached
        assert second.record == first.record
        assert execute.calls == 1
        assert scheduler.shutdown(timeout=10.0)

    def test_failed_job_reports_error_and_frees_the_key(self):
        def explode(task, gen):
            raise ValueError("kernel said no")

        scheduler = make_scheduler(explode)
        task = make_task()
        job = scheduler.submit(task)
        assert job.done.wait(10.0)
        assert job.state is JobState.FAILED
        assert "kernel said no" in job.error
        assert scheduler.cache.inflight_count() == 0
        # A failure is not cached: the next submit runs a fresh search.
        retry = scheduler.submit(task)
        assert retry is not job
        assert retry.done.wait(10.0)
        assert scheduler.shutdown(timeout=10.0)


class TestAdmissionControl:
    def test_overflow_raises_queue_full(self):
        execute = GatedExecute()
        scheduler = make_scheduler(execute, workers=1, max_queued=1)
        running = scheduler.submit(make_task(theorem="a", fuel=1))
        assert execute.started.wait(10.0)  # worker occupied
        queued = scheduler.submit(make_task(theorem="b", fuel=2))
        with pytest.raises(QueueFullError):
            scheduler.submit(make_task(theorem="c", fuel=3))
        # The refused task must not linger in the single-flight table —
        # a retry after the queue empties must be admittable.
        assert scheduler.cache.inflight_count() == 2
        execute.gate.set()
        for job in (running, queued):
            assert job.done.wait(10.0)
        retry = scheduler.submit(make_task(theorem="c", fuel=3))
        assert retry.done.wait(10.0)
        assert scheduler.shutdown(timeout=10.0)

    def test_draining_scheduler_refuses_then_finishes(self):
        execute = GatedExecute()
        scheduler = make_scheduler(execute)
        job = scheduler.submit(make_task(theorem="a"))
        assert execute.started.wait(10.0)

        drained = []
        waiter = threading.Thread(
            target=lambda: drained.append(scheduler.shutdown(timeout=20.0))
        )
        waiter.start()
        for _ in range(200):
            if scheduler.stats()["draining"]:
                break
            time.sleep(0.005)
        with pytest.raises(ShuttingDownError):
            scheduler.submit(make_task(theorem="b"))
        # Graceful drain: the admitted job still completes.
        execute.gate.set()
        waiter.join(20.0)
        assert drained == [True]
        assert job.state is JobState.DONE


class TestSingleFlight:
    def test_identical_submits_share_one_search(self):
        execute = GatedExecute()
        scheduler = make_scheduler(execute, workers=2)
        task = make_task()
        leader = scheduler.submit(task)
        assert execute.started.wait(10.0)
        follower = scheduler.submit(task)
        assert follower is leader
        assert leader.dedup_hits == 1
        execute.gate.set()
        assert leader.done.wait(10.0)
        # One search served both callers.
        assert execute.calls == 1
        assert scheduler.shutdown(timeout=10.0)

    def test_different_cells_do_not_coalesce(self):
        execute = GatedExecute()
        execute.gate.set()
        scheduler = make_scheduler(execute, workers=2)
        a = scheduler.submit(make_task(fuel=8))
        b = scheduler.submit(make_task(fuel=16))
        assert a is not b
        for job in (a, b):
            assert job.done.wait(10.0)
        assert execute.calls == 2
        assert scheduler.shutdown(timeout=10.0)


class TestDeadlines:
    def test_default_deadline_folds_into_task_and_key(self):
        scheduler = make_scheduler(
            lambda task, gen: make_result(task), default_deadline=5.0
        )
        job = scheduler.submit(make_task())
        assert job.task.theorem_deadline == 5.0
        # Deadline participates in the cache key: a bounded cell never
        # aliases the unbounded one.
        assert job.key != make_task().cache_key()
        assert job.key == make_task(theorem_deadline=5.0).cache_key()
        assert job.done.wait(10.0)
        assert scheduler.shutdown(timeout=10.0)

    def test_task_deadline_wins_over_the_default(self):
        scheduler = make_scheduler(
            lambda task, gen: make_result(task), default_deadline=5.0
        )
        job = scheduler.submit(make_task(theorem_deadline=2.0))
        assert job.task.theorem_deadline == 2.0
        assert job.done.wait(10.0)
        assert scheduler.shutdown(timeout=10.0)

    def test_deadline_yields_a_clean_timeout_record(self, project):
        """A real search under a tiny budget ends as TIMEOUT — an
        outcome, not an exception."""
        from repro.eval.config import ExperimentConfig
        from repro.eval.runner import Runner

        runner = Runner(project, ExperimentConfig())
        hard = max(project.theorems, key=lambda t: t.proof_tokens)
        scheduler = Scheduler(
            execute=lambda task, gen: runner.execute_task(task),
            generator_for=lambda model: None,
            cache=ProofCache(),
            config=SchedulerConfig(workers=1, default_deadline=0.001),
        )
        job = scheduler.submit(
            make_task(theorem=hard.name, fuel=4096, model="gpt-4o-mini")
        )
        assert job.done.wait(60.0)
        assert job.state is JobState.DONE
        assert job.record.status == "timeout"
        assert scheduler.shutdown(timeout=10.0)
