"""ProofCache: result caching, JSONL persistence, single-flight admission."""

from __future__ import annotations

import threading

from repro.eval.store import OutcomeRecord, RunStore
from repro.eval.tasks import TheoremTask
from repro.service.proofcache import ProofCache


def make_task(theorem="rev_involutive", **kwargs):
    kwargs.setdefault("model", "gpt-4o-mini")
    kwargs.setdefault("hinted", False)
    return TheoremTask(theorem=theorem, **kwargs)


def make_record(task, status="proved"):
    return OutcomeRecord(
        theorem=task.theorem,
        model=task.model,
        hinted=task.hinted,
        status=status,
        queries=3,
        generated_proof="intros. reflexivity.",
        revalidated=status == "proved",
    )


class CountingMetrics:
    def __init__(self):
        self.counters = {}

    def incr(self, name, n=1):
        self.counters[name] = self.counters.get(name, 0) + n


class TestResultCache:
    def test_memory_roundtrip(self):
        cache = ProofCache()
        task = make_task()
        assert cache.get(task.cache_key()) is None
        record = make_record(task)
        cache.put(task, record)
        assert cache.get(task.cache_key()) == record
        assert cache.stats()["persistent"] is False
        assert cache.stats()["records"] == 1

    def test_metrics_count_hits_and_misses(self):
        metrics = CountingMetrics()
        cache = ProofCache(metrics=metrics)
        task = make_task()
        cache.get(task.cache_key())
        cache.put(task, make_record(task))
        cache.get(task.cache_key())
        assert metrics.counters["service.cache.misses"] == 1
        assert metrics.counters["service.cache.hits"] == 1

    def test_warm_restart_from_jsonl(self, tmp_path):
        """A new cache on the same path serves the previous one's results."""
        path = tmp_path / "service.jsonl"
        task = make_task()
        record = make_record(task)
        ProofCache(path).put(task, record)

        warm = ProofCache(path)
        assert warm.get(task.cache_key()) == record
        assert warm.stats()["persistent"] is True
        assert warm.stats()["records"] == 1

    def test_resumes_from_an_offline_sweep_store(self, tmp_path):
        """The cache file format IS the eval RunStore format: a sweep's
        store warm-starts the server, byte for byte."""
        path = tmp_path / "sweep.jsonl"
        store = RunStore(path)
        task = make_task(theorem="app_nil_r")
        record = make_record(task, status="stuck")
        store.put(task, record)

        cache = ProofCache(path)
        assert cache.get(task.cache_key()) == record
        # And the server's own writes land back in the same store.
        other = make_task(theorem="rev_involutive")
        cache.put(other, make_record(other))
        assert RunStore(path).get(other.cache_key()) is not None


class TestMemoryBound:
    """Regression: the store-less fallback used to be an unbounded
    dict — a slow leak in exactly the long-running deployment that has
    no cache file."""

    def test_storeless_memory_is_bounded(self):
        cache = ProofCache(memory_capacity=4)
        tasks = [make_task(fuel=fuel) for fuel in range(1, 9)]
        for task in tasks:
            cache.put(task, make_record(task))
        stats = cache.stats()
        assert stats["records"] == 4
        assert stats["capacity"] == 4
        assert stats["evictions"] == 4

    def test_eviction_is_fifo_and_counted_in_metrics(self):
        metrics = CountingMetrics()
        cache = ProofCache(metrics=metrics, memory_capacity=2)
        tasks = [make_task(fuel=fuel) for fuel in range(1, 4)]
        for task in tasks:
            cache.put(task, make_record(task))
        # Oldest entry evicted; the two newest survive.
        assert cache.get(tasks[0].cache_key()) is None
        assert cache.get(tasks[1].cache_key()) is not None
        assert cache.get(tasks[2].cache_key()) is not None
        assert metrics.counters["service.cache.evictions"] == 1

    def test_repeat_put_of_same_key_does_not_evict(self):
        cache = ProofCache(memory_capacity=2)
        task = make_task()
        for _ in range(5):
            cache.put(task, make_record(task))
        stats = cache.stats()
        assert stats["records"] == 1
        assert stats["evictions"] == 0

    def test_store_backed_cache_has_no_bound_gauges(self, tmp_path):
        cache = ProofCache(tmp_path / "c.jsonl")
        stats = cache.stats()
        assert "evictions" not in stats
        assert "capacity" not in stats

    def test_kernel_cache_clear_does_not_wipe_proof_results(self):
        # The bounded table reuses kernel BoundedCache machinery but
        # must NOT be in the kernel registry: clear_caches() runs once
        # per evaluation task and would empty the proof cache.
        from repro.kernel import cache as kernel_cache

        cache = ProofCache()
        task = make_task()
        cache.put(task, make_record(task))
        kernel_cache.clear_caches()
        assert cache.get(task.cache_key()) is not None


class TestSingleFlight:
    def test_leader_creates_followers_share(self):
        cache = ProofCache()
        first, created_first = cache.admit("k", lambda: object())
        second, created_second = cache.admit("k", lambda: object())
        assert created_first and not created_second
        assert first is second
        assert cache.inflight_count() == 1

    def test_release_retires_the_key(self):
        cache = ProofCache()
        cache.admit("k", lambda: "leader")
        cache.release("k")
        assert cache.inflight_count() == 0
        entry, created = cache.admit("k", lambda: "second-leader")
        assert created and entry == "second-leader"

    def test_release_is_idempotent(self):
        cache = ProofCache()
        cache.release("never-admitted")  # must not raise
        assert cache.inflight_count() == 0

    def test_concurrent_admits_elect_exactly_one_leader(self):
        cache = ProofCache()
        outcomes = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            outcomes.append(cache.admit("k", object))

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        leaders = [entry for entry, created in outcomes if created]
        entries = {id(entry) for entry, _ in outcomes}
        assert len(leaders) == 1
        assert entries == {id(leaders[0])}
