"""Micro-batching: the pure planner under a fake clock, the threaded
generator under controlled concurrency, and the determinism contract.
"""

from __future__ import annotations

import threading

import pytest

from repro.llm import get_model
from repro.llm.interface import Candidate
from repro.service.batching import BatchingGenerator, BatchPlanner, BatchPolicy, _Pending


class CountingMetrics:
    def __init__(self):
        self.counters = {}

    def incr(self, name, n=1):
        self.counters[name] = self.counters.get(name, 0) + n


# ----------------------------------------------------------------------
# BatchPlanner: all timing injected, no threads, no sleeps.
# ----------------------------------------------------------------------


class TestBatchPlanner:
    def planner(self, window=1.0, size=4):
        return BatchPlanner(BatchPolicy(batch_window=window, max_batch_size=size))

    def test_empty_queue_is_idle(self):
        planner = self.planner()
        assert not planner.ready(now=0.0)
        assert planner.wait_budget(now=0.0) is None
        assert planner.take() == []

    def test_window_opens_at_oldest_arrival(self):
        planner = self.planner(window=1.0)
        planner.add(_Pending("a", 1, arrived=10.0))
        assert not planner.ready(now=10.5)
        assert planner.wait_budget(now=10.5) == pytest.approx(0.5)
        assert planner.ready(now=11.0)
        assert planner.wait_budget(now=11.2) == 0.0

    def test_late_arrivals_do_not_extend_the_window(self):
        planner = self.planner(window=1.0)
        planner.add(_Pending("a", 1, arrived=10.0))
        planner.add(_Pending("b", 1, arrived=10.9))
        # Due at oldest + window, not newest + window.
        assert planner.ready(now=11.0)

    def test_full_batch_dispatches_immediately(self):
        planner = self.planner(window=60.0, size=2)
        planner.add(_Pending("a", 1, arrived=0.0))
        assert not planner.ready(now=0.0)
        planner.add(_Pending("b", 1, arrived=0.0))
        assert planner.ready(now=0.0)
        assert planner.wait_budget(now=0.0) == 0.0

    def test_take_leaves_the_overflow_queued(self):
        planner = self.planner(window=0.0, size=2)
        for name in "abc":
            planner.add(_Pending(name, 1, arrived=0.0))
        batch = planner.take()
        assert [p.prompt for p in batch] == ["a", "b"]
        assert [p.prompt for p in planner.queue] == ["c"]

    def test_zero_window_means_dispatch_whatever_is_queued(self):
        planner = self.planner(window=0.0)
        planner.add(_Pending("a", 1, arrived=5.0))
        assert planner.ready(now=5.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(batch_window=-0.1)
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)


# ----------------------------------------------------------------------
# BatchingGenerator: threads, but deterministic coalescing — a full
# batch (max_batch_size == caller count, huge window) dispatches all
# callers in one generate_batch call, no timing dependence.
# ----------------------------------------------------------------------


class RecordingInner:
    """Delegates to a real model, recording batch sizes."""

    def __init__(self, model):
        self.model = model
        self.name = model.name
        self.context_window = model.context_window
        self.provides_log_probs = model.provides_log_probs
        self.batch_sizes = []
        self.solo_calls = 0

    def generate(self, prompt, k):
        self.solo_calls += 1
        return self.model.generate(prompt, k)

    def generate_batch(self, requests):
        self.batch_sizes.append(len(requests))
        return self.model.generate_batch(requests)


def fan_out(batcher, requests):
    """Call ``generate`` concurrently; return results in request order."""
    results = [None] * len(requests)
    errors = []

    def call(index, prompt, k):
        try:
            results[index] = batcher.generate(prompt, k)
        except BaseException as exc:  # noqa: BLE001
            errors.append((index, exc))

    threads = [
        threading.Thread(target=call, args=(i, p, k))
        for i, (p, k) in enumerate(requests)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, errors


class TestBatchingGenerator:
    def test_full_batch_coalesces_and_matches_solo(self):
        model = get_model("gpt-4o-mini")
        inner = RecordingInner(model)
        requests = [(f"Goal {i} : n + 0 = n", 2 + i % 3) for i in range(4)]
        batcher = BatchingGenerator(
            inner, BatchPolicy(batch_window=30.0, max_batch_size=len(requests))
        )
        try:
            results, errors = fan_out(batcher, requests)
        finally:
            batcher.close()
        assert errors == []
        # One dispatch carried all four callers (size trigger, not the
        # 30s window) ...
        assert inner.batch_sizes == [4]
        assert inner.solo_calls == 0
        # ... and every element is byte-identical to a solo call (the
        # determinism contract the service depends on).
        assert results == [model.generate(p, k) for p, k in requests]

    def test_window_flushes_a_lone_request(self):
        inner = RecordingInner(get_model("gpt-4o"))
        batcher = BatchingGenerator(
            inner, BatchPolicy(batch_window=0.005, max_batch_size=8)
        )
        try:
            out = batcher.generate("Goal n = n", 3)
        finally:
            batcher.close()
        assert out == inner.model.generate("Goal n = n", 3)
        assert inner.batch_sizes == [1]

    def test_batching_disabled_is_a_straight_passthrough(self):
        inner = RecordingInner(get_model("gpt-4o"))
        batcher = BatchingGenerator(inner, BatchPolicy(max_batch_size=1))
        out = batcher.generate("Goal n = n", 2)
        assert out == inner.model.generate("Goal n = n", 2)
        assert inner.batch_sizes == []  # no queue, no dispatcher thread
        assert inner.solo_calls >= 1
        assert batcher._dispatcher is None

    def test_failed_batch_falls_back_to_solo_calls(self):
        class BrokenBatch(RecordingInner):
            def generate_batch(self, requests):
                raise RuntimeError("batch endpoint down")

        inner = BrokenBatch(get_model("gpt-4o-mini"))
        metrics = CountingMetrics()
        requests = [("Goal a = a", 2), ("Goal b = b", 2)]
        batcher = BatchingGenerator(
            inner,
            BatchPolicy(batch_window=30.0, max_batch_size=2),
            metrics=metrics,
        )
        try:
            results, errors = fan_out(batcher, requests)
        finally:
            batcher.close()
        assert errors == []
        assert results == [inner.model.generate(p, k) for p, k in requests]
        assert metrics.counters.get("service.batch.fallbacks") == 1

    def test_solo_fallback_isolates_a_poisoned_element(self):
        class Poisoned(RecordingInner):
            def generate(self, prompt, k):
                if prompt == "poison":
                    raise ValueError("bad prompt")
                return super().generate(prompt, k)

            def generate_batch(self, requests):
                # Batch path refuses the whole batch; solo fallback
                # must fail only the poisoned element.
                if any(p == "poison" for p, _ in requests):
                    raise ValueError("bad prompt in batch")
                return super().generate_batch(requests)

        inner = Poisoned(get_model("gpt-4o-mini"))
        batcher = BatchingGenerator(
            inner, BatchPolicy(batch_window=30.0, max_batch_size=2)
        )
        try:
            results, errors = fan_out(
                batcher, [("Goal ok : n = n", 2), ("poison", 2)]
            )
        finally:
            batcher.close()
        assert results[0] == inner.model.generate("Goal ok : n = n", 2)
        assert len(errors) == 1 and isinstance(errors[0][1], ValueError)

    def test_close_flushes_pending_then_rejects_new_work(self):
        inner = RecordingInner(get_model("gpt-4o"))
        batcher = BatchingGenerator(
            inner, BatchPolicy(batch_window=60.0, max_batch_size=8)
        )
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault(
                "out", batcher.generate("Goal n = n", 2)
            )
        )
        thread.start()
        # Wait until the request is queued (not yet dispatched: the
        # 60s window would otherwise park it).
        for _ in range(1000):
            if len(batcher._planner) or box.get("out"):
                break
            thread.join(0.005)
        batcher.close()  # must flush, not strand, the queued caller
        thread.join(5.0)
        assert box["out"] == inner.model.generate("Goal n = n", 2)
        with pytest.raises(RuntimeError):
            batcher.generate("Goal n = n", 2)

    def test_stats_shape(self):
        inner = RecordingInner(get_model("gpt-4o-mini"))
        batcher = BatchingGenerator(
            inner, BatchPolicy(batch_window=0.005, max_batch_size=4)
        )
        try:
            batcher.generate("Goal n = n", 2)
        finally:
            batcher.close()
        stats = batcher.stats()
        assert stats["model"] == inner.name
        assert stats["batches"] == 1
        assert stats["queries"] == 1
        assert stats["mean_batch_size"] == 1.0
        assert stats["queue_depth"] == 0


class TestDeterminismContract:
    def test_concurrent_batched_equals_solo_under_timing_noise(self):
        """Many concurrent searches, tiny real window: whatever batch
        composition the timing produced, every result must equal the
        solo reference."""
        model = get_model("gemini-1.5-flash")
        requests = [
            (f"Lemma l{i} : forall n : nat, n + {i} = {i} + n.", 1 + i % 5)
            for i in range(24)
        ]
        reference = [model.generate(p, k) for p, k in requests]
        batcher = BatchingGenerator(
            model, BatchPolicy(batch_window=0.002, max_batch_size=6)
        )
        try:
            results, errors = fan_out(batcher, requests)
        finally:
            batcher.close()
        assert errors == []
        assert results == reference
        stats = batcher.stats()
        assert stats["queries"] == len(requests)


class TestSubmitApi:
    """The async submit() surface used by the intra-search pipeline."""

    def test_submit_coalesces_like_generate(self):
        model = get_model("gpt-4o-mini")
        inner = RecordingInner(model)
        requests = [(f"Goal {i} : n + 0 = n", 3) for i in range(3)]
        batcher = BatchingGenerator(
            inner, BatchPolicy(batch_window=30.0, max_batch_size=3)
        )
        try:
            handles = [batcher.submit(p, k) for p, k in requests]
            results = [h.result() for h in handles]
        finally:
            batcher.close()
        assert inner.batch_sizes == [3]
        assert inner.solo_calls == 0
        assert results == [model.generate(p, k) for p, k in requests]

    def test_submit_with_batching_disabled_resolves_inline(self):
        inner = RecordingInner(get_model("gpt-4o"))
        batcher = BatchingGenerator(
            inner, BatchPolicy(batch_window=0.0, max_batch_size=1)
        )
        handle = batcher.submit("Goal n = n", 2)
        assert inner.solo_calls == 1  # executed before result()
        assert handle.result() == inner.model.generate("Goal n = n", 2)
        batcher.close()

    def test_submit_error_surfaces_at_result(self):
        class Broken(RecordingInner):
            def generate(self, prompt, k):
                raise RuntimeError("endpoint down")

        batcher = BatchingGenerator(
            Broken(get_model("gpt-4o")),
            BatchPolicy(batch_window=0.0, max_batch_size=1),
        )
        handle = batcher.submit("Goal n = n", 2)
        with pytest.raises(RuntimeError):
            handle.result()
        batcher.close()

    def test_submit_after_close_rejected(self):
        batcher = BatchingGenerator(
            RecordingInner(get_model("gpt-4o")),
            BatchPolicy(batch_window=0.01, max_batch_size=4),
        )
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit("Goal n = n", 2)

    def test_for_search_sizes_the_policy_to_the_depth(self):
        inner = RecordingInner(get_model("gpt-4o"))
        batcher = BatchingGenerator.for_search(inner, 4, batch_window=30.0)
        assert batcher.policy.max_batch_size == 4
        try:
            handles = [
                batcher.submit(f"Goal {i} : n = n", 2) for i in range(4)
            ]
            for h in handles:
                h.result()
        finally:
            batcher.close()
        # A full fill phase dispatched as one batch (size trigger).
        assert inner.batch_sizes == [4]

    def test_for_search_depth_one_disables_batching(self):
        batcher = BatchingGenerator.for_search(
            RecordingInner(get_model("gpt-4o")), 1
        )
        assert batcher.policy.max_batch_size == 1
