"""Soundness of the lia decision procedure, by brute force.

For randomly generated linear claims over small naturals, whenever
``lia`` proves the universally quantified statement, exhaustive
evaluation over a finite grid must agree.  (The converse — lia proving
everything true — is completeness, which a budgeted lia does not
promise; we separately spot-check that plainly false claims are
rejected.)
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.kernel.parser import parse_statement
from repro.tactics.script import run_script

GRID = range(0, 5)


@st.composite
def linear_atoms(draw):
    """(python_predicate, coq_text) pairs over variables a, b."""
    c1 = draw(st.integers(0, 3))
    c2 = draw(st.integers(0, 3))
    k = draw(st.integers(0, 4))
    op = draw(st.sampled_from(["<=", "<", "="]))
    lhs_text = f"{c1} * a + {c2} * b"
    rhs_text = f"a + {k}" if draw(st.booleans()) else f"{k}"
    use_a = rhs_text.startswith("a")

    def lhs(a, b):
        return c1 * a + c2 * b

    def rhs(a, b):
        return (a + k) if use_a else k

    if op == "<=":
        return (lambda a, b: lhs(a, b) <= rhs(a, b)), f"{lhs_text} <= {rhs_text}"
    if op == "<":
        return (lambda a, b: lhs(a, b) < rhs(a, b)), f"{lhs_text} < {rhs_text}"
    return (lambda a, b: lhs(a, b) == rhs(a, b)), f"{lhs_text} = {rhs_text}"


class TestLiaSoundness:
    @given(linear_atoms(), linear_atoms())
    @settings(max_examples=60, deadline=None)
    def test_implication_claims(self, env, atom1, atom2):
        pred1, text1 = atom1
        pred2, text2 = atom2
        statement = f"forall a b, ({text1}) -> ({text2})"
        try:
            run_script(
                env, parse_statement(env, statement), "intros. lia."
            )
            proved = True
        except ReproError:
            proved = False
        if proved:
            for a in GRID:
                for b in GRID:
                    if pred1(a, b):
                        assert pred2(a, b), (
                            f"lia proved a falsehood: {statement} "
                            f"at a={a}, b={b}"
                        )

    @given(linear_atoms())
    @settings(max_examples=40, deadline=None)
    def test_unconditional_claims(self, env, atom):
        pred, text = atom
        statement = f"forall a b, {text}"
        try:
            run_script(env, parse_statement(env, statement), "intros. lia.")
            proved = True
        except ReproError:
            proved = False
        if proved:
            for a in GRID:
                for b in GRID:
                    assert pred(a, b), f"lia proved a falsehood: {statement}"


class TestLiaRejectsFalsehoods:
    @pytest.mark.parametrize(
        "statement",
        [
            "forall a, a < a",
            "forall a b, a + b = a",
            "forall a, a <= 3",
            "forall a b, a <= b",
            "forall a, 1 <= a",
        ],
    )
    def test_rejected(self, env, fails, statement):
        fails(statement, "intros. lia.")


class TestLiaSubtraction:
    """Truncated subtraction is the classic lia-on-nat trap."""

    @given(st.integers(0, 6), st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_ground_sub_facts(self, env, a, b):
        value = max(0, a - b)
        run_script(
            env,
            parse_statement(env, f"{a} - {b} = {value}"),
            "lia.",
        )

    def test_sub_not_overapproximated(self, env, fails):
        # False on nat (take a=0, b=1): a - b + b = a fails truncation.
        fails("forall a b, a - b + b = a", "intros. lia.")

    def test_sub_conditional_identity(self, prove):
        prove("forall a b, b <= a -> a - b + b = a", "intros. lia.")
