"""Per-tactic behaviour, driven through whole proof scripts.

Each test proves (or refutes provability of) a small statement in the
full corpus environment; `prove`/`fails` fixtures come from conftest.
"""

import pytest


class TestIntro:
    def test_intros_names(self, prove):
        prove("forall n m, n = m -> n = m", "intros a b Hab. assumption.")

    def test_intros_bare_stops_at_neg(self, prove):
        prove(
            "forall n, ~ S n = 0",
            "intros. intro H. discriminate H.",
        )

    def test_intro_through_definition(self, prove):
        # `intro` unfolds `incl` to expose the product.
        prove(
            "forall (T : Type) (l : list T), incl l l",
            "intros. intro x. intros H. assumption.",
        )

    def test_intros_duplicate_name_fails(self, fails):
        fails("forall n m, n + m = m + n", "intros x x. lia.")


class TestApply:
    def test_apply_lemma(self, prove):
        prove("forall n, 0 <= S n", "intros. apply le_0_n.")

    def test_apply_hypothesis_chain(self, prove):
        prove(
            "forall (P Q : Prop), (P -> Q) -> P -> Q",
            "intros P Q H HP. apply H. assumption.",
        )

    def test_apply_needs_eapply(self, fails):
        fails(
            "forall n p, n <= p -> n <= p",
            "intros. apply le_trans. assumption.",
        )

    def test_eapply_with_metas(self, prove):
        prove(
            "forall n m p, n <= m -> m <= p -> n <= p",
            "intros. eapply le_trans.\n- apply H.\n- assumption.",
        )

    def test_apply_in_forward(self, prove):
        prove(
            "forall n m, beq_nat n m = true -> n = m",
            "intros. apply beq_nat_true in H. assumption.",
        )

    def test_apply_unknown_name(self, fails):
        fails("forall n, n = n", "apply no_such_lemma.")

    def test_exact(self, prove):
        prove("forall (P : Prop), P -> P", "intros P H. exact H.")


class TestRewrite:
    def test_forward(self, prove):
        prove(
            "forall n m, n = m -> n + 0 = m",
            "intros. rewrite plus_0_r. assumption.",
        )

    def test_backward(self, prove):
        prove(
            "forall n m, n = m -> m = n + 0",
            "intros. rewrite plus_0_r. rewrite H. reflexivity.",
        )

    def test_rewrite_in_hyp(self, prove):
        prove(
            "forall n m, n + 0 = m -> n = m",
            "intros. rewrite plus_0_r in H. assumption.",
        )

    def test_rewrite_arrow_back(self, prove):
        prove(
            "forall n m, n + S m = S (n + m)",
            "intros. rewrite <- plus_n_Sm. reflexivity.",
        )

    def test_conditional_rewrite_by(self, prove):
        prove(
            "forall (T : Type) (l : list T), firstn (length l) l = l",
            "intros. rewrite firstn_oob by lia. reflexivity.",
        )

    def test_no_match_fails(self, fails):
        fails("forall n, n = n", "rewrite app_nil_r. reflexivity.")

    def test_never_rewrites_under_binders(self, fails):
        # The only occurrence is under a forall: plain rewrite fails.
        fails(
            "forall m, (forall n, n + 0 = n) -> forall n, n + 0 = n",
            "intros m H. rewrite plus_0_r in H. apply H.",
        )


class TestInductionDestruct:
    def test_induction_generalizes(self, prove):
        # The IH must quantify over m (induction before intros).
        prove(
            "forall n m, n + S m = S (n + m)",
            "induction n; simpl; intros.\n"
            "- reflexivity.\n"
            "- rewrite IHn. reflexivity.",
        )

    def test_induction_on_hyp_fails(self, fails):
        fails("forall n, n <= n -> n <= n", "intros. induction H. auto.")

    def test_destruct_nat(self, prove):
        prove(
            "forall n, n = 0 \\/ (exists m, n = S m)",
            "destruct n.\n"
            "- left. reflexivity.\n"
            "- right. exists n. reflexivity.",
        )

    def test_destruct_conj_pattern(self, prove):
        prove(
            "forall (P Q : Prop), P /\\ Q -> Q",
            "intros P Q H. destruct H as [HP HQ]. assumption.",
        )

    def test_destruct_disj_pattern(self, prove):
        prove(
            "forall (P : Prop), P \\/ P -> P",
            "intros P H. destruct H as [H1 | H2].\n"
            "- assumption.\n"
            "- assumption.",
        )

    def test_destruct_exists(self, prove):
        prove(
            "forall (P : nat -> Prop), (exists n, P n) -> exists m, P m",
            "intros P H. destruct H as [n Hn]. exists n. assumption.",
        )

    def test_destruct_term_with_eqn(self, prove):
        prove(
            "forall n, beq_nat n n = true",
            "intros. destruct (beq_nat n n) eqn:E.\n"
            "- reflexivity.\n"
            "- pose proof (beq_nat_refl n) as Hr. rewrite Hr in E. "
            "discriminate E.",
        )


class TestInversion:
    def test_inversion_le_impossible(self, prove):
        prove("forall n, S n <= 0 -> False", "intros n H. inversion H.")

    def test_inversion_forall_cons(self, prove):
        prove(
            "forall (P : nat -> Prop) (x : nat) (l : list nat), "
            "Forall P (x :: l) -> P x",
            "intros. inversion H. assumption.",
        )

    def test_inversion_eq_injects(self, prove):
        prove(
            "forall n m, S n = S m -> n = m",
            "intros. inversion H. reflexivity.",
        )

    def test_inversion_ctor_clash_closes(self, prove):
        prove("forall n, 0 = S n -> False", "intros n H. inversion H.")


class TestLogic:
    def test_split(self, prove):
        prove(
            "forall n, n = n /\\ n <= n",
            "intros. split.\n- reflexivity.\n- apply le_n.",
        )

    def test_left_right(self, prove):
        prove("forall n, n = n \\/ n = 0", "intros. left. reflexivity.")

    def test_exists_witness(self, prove):
        prove("exists n, n + 2 = 5", "exists 3. reflexivity.")

    def test_eexists_then_solve(self, prove):
        prove("exists n, S n = 4", "eexists. reflexivity.")

    def test_exfalso_contradiction(self, prove):
        prove(
            "forall (P : Prop), P -> ~ P -> 0 = 1",
            "intros P H Hn. exfalso. contradiction.",
        )

    def test_constructor_picks_rule(self, prove):
        prove("forall n, n <= S n", "intros. constructor. constructor.")


class TestSubstCongruenceLia:
    def test_subst(self, prove):
        prove(
            "forall (x y : nat), x = y -> x + 0 = y",
            "intros. subst. apply plus_0_r.",
        )

    def test_congruence_injectivity(self, prove):
        prove(
            "forall n m, S n = S m -> n = m",
            "intros. congruence.",
        )

    def test_congruence_functions(self, prove):
        prove(
            "forall (g : nat -> nat) (a b : nat), "
            "a = b -> g a = g b",
            "intros. congruence.",
        )

    def test_lia_linear(self, prove):
        prove(
            "forall a b c, a <= b -> b < c -> a + 1 <= c",
            "intros. unfold lt in *. lia.",
        )

    def test_lia_truncated_sub(self, prove):
        prove("forall a, a - a = 0", "intros. lia.")

    def test_lia_refuses_nonlinear_goal(self, fails):
        fails("forall a b, a * b = b * a", "intros. lia.")

    def test_discriminate(self, prove):
        prove("forall n, true = false -> n = 0", "intros. discriminate H.")

    def test_injection(self, prove):
        prove(
            "forall (T : Type) (a b : T), Some a = Some b -> a = b",
            "intros. injection H as He. assumption.",
        )


class TestAutomation:
    def test_auto_uses_hints(self, prove):
        prove("forall n, n <= n + 0", "auto.")

    def test_auto_is_noop_when_stuck(self, env):
        from repro.kernel.goals import initial_state
        from repro.kernel.parser import parse_statement
        from repro.tactics import parse_tactic
        from repro.tactics.base import run_tactic

        s = parse_statement(env, "forall (P : Prop), P")
        st = initial_state(env, s)
        st2 = run_tactic(env, st, parse_tactic("auto"))
        assert st2.key() == st.key()  # auto never fails, only no-ops

    def test_eauto_threads_metas(self, prove):
        prove(
            "forall n m p, n <= m -> m <= p -> n <= p",
            "intros. eauto using le_trans.",
        )

    def test_intuition(self, prove):
        prove(
            "forall (P Q : Prop), P /\\ Q -> Q /\\ P",
            "intros. intuition.",
        )

    def test_trivial(self, prove):
        prove("forall n, n = n", "trivial.")


class TestCombinators:
    def test_seq_applies_to_all_subgoals(self, prove):
        prove("0 = 0 /\\ 1 = 1", "split; reflexivity.")

    def test_try_swallows_failure(self, prove):
        prove("0 = 0", "try discriminate. reflexivity.")

    def test_orelse(self, prove):
        prove("0 = 0", "discriminate || reflexivity.")

    def test_repeat(self, prove):
        prove(
            "forall n, n = n /\\ (n = n /\\ n = n)",
            "intros. repeat split; reflexivity.",
        )

    def test_fail_fails(self, fails):
        fails("0 = 0", "fail.")

    def test_idtac_noop_then_close(self, prove):
        prove("0 = 0", "idtac. reflexivity.")


class TestStructural:
    def test_assert_with_braces(self, prove):
        prove(
            "forall n, n + 0 + 0 = n",
            "intros. assert (n + 0 = n) as Ha.\n"
            "{ apply plus_0_r. }\n"
            "rewrite Ha. apply plus_0_r.",
        )

    def test_pose_proof_specialized(self, prove):
        prove(
            "forall n, n + 0 = n",
            "intros. pose proof (plus_0_r n) as Hp. assumption.",
        )

    def test_specialize(self, prove):
        prove(
            "forall (P : nat -> Prop), (forall n, P n) -> P 3",
            "intros P H. specialize (H 3). assumption.",
        )

    def test_revert_then_induction(self, prove):
        prove(
            "forall m n, n + m = m + n",
            "intros. revert m. induction n; simpl; intros.\n"
            "- rewrite plus_0_r. reflexivity.\n"
            "- rewrite IHn. rewrite plus_n_Sm. reflexivity.",
        )

    def test_clear_blocked_by_dependency(self, fails):
        fails(
            "forall n, n = n -> n = n",
            "intros. clear n. reflexivity.",
        )

    def test_f_equal(self, prove):
        prove(
            "forall n m, n = m -> S n = S m",
            "intros. f_equal. assumption.",
        )

    def test_symmetry(self, prove):
        prove("forall n m, n = m -> m = n", "intros. symmetry. assumption.")

    def test_unfold_and_fold_smoke(self, prove):
        prove(
            "forall n m, lt n m -> S n <= m",
            "intros. unfold lt in H. assumption.",
        )


class TestQedDiscipline:
    def test_incomplete_proof_rejected(self, fails):
        fails("0 = 0 /\\ 1 = 1", "split. reflexivity.")

    def test_unresolved_existential_rejected(self, fails):
        fails("exists n, n = n", "eexists.")

    def test_bullet_misuse_rejected(self, fails):
        fails("0 = 0", "- reflexivity. - reflexivity.")
