"""Cross-validate corpus fixpoints against executable Python models.

The corpus functions (``replay``, ``count_free``, ``find_free``,
``pad2``...) are definitions inside the kernel's term language; these
property tests evaluate them by reduction and compare against plain
Python implementations — the strongest evidence that the file-system
substrate means what it claims.
"""

from hypothesis import given, settings, strategies as st

from repro.kernel.parser import parse_term
from repro.kernel.reduction import simpl, unfold
from repro.kernel.terms import as_nat_lit, head_const
from repro.kernel.typecheck import elaborate_term


def _nat_list(values):
    text = "nil"
    for v in reversed(values):
        text = f"({v} :: {text})"
    return text


def _bool_list(values):
    text = "nil"
    for v in reversed(values):
        text = f"({'true' if v else 'false'} :: {text})"
    return text


def _entry_list(entries):
    text = "nil"
    for a, _ in reversed(entries):
        text = f"(pair {a} v0 :: {text})"
    return text


def _eval_nat(env, text):
    term = elaborate_term(env, parse_term(text), {})
    return as_nat_lit(simpl(env, term))


class TestBalloc:
    @given(st.lists(st.booleans(), max_size=7))
    @settings(max_examples=40)
    def test_count_free(self, env, bits):
        got = _eval_nat(env, f"count_free {_bool_list(bits)}")
        assert got == sum(1 for b in bits if not b)

    @given(st.lists(st.booleans(), max_size=7))
    @settings(max_examples=40)
    def test_find_free(self, env, bits):
        term = elaborate_term(
            env, parse_term(f"find_free {_bool_list(bits)}"), {}
        )
        result = simpl(env, term)
        expected = next((i for i, b in enumerate(bits) if not b), None)
        if expected is None:
            assert head_const(result) == "None"
        else:
            assert head_const(result) == "Some"
            assert as_nat_lit(result.args[0]) == expected


class TestLogReplay:
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.just(0)), max_size=5
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=30)
    def test_replay_length(self, env, entries, disk_len):
        disk = _nat_list([0] * disk_len)
        # Disk cells hold valu; reuse v0 everywhere via the entry list,
        # and check only the length (values are opaque).
        text = (
            f"length (replay {_entry_list(entries)} "
            f"(repeat v0 {disk_len}))"
        )
        assert _eval_nat(env, text) == disk_len

    @given(st.lists(st.integers(0, 9), max_size=6))
    @settings(max_examples=40)
    def test_ndata_log_counts_nonzero(self, env, addrs):
        entries = [(a, 0) for a in addrs]
        term = elaborate_term(
            env, parse_term(f"ndata_log {_entry_list(entries)}"), {}
        )
        value = as_nat_lit(simpl(env, unfold(env, term, ["ndata_log"])))
        assert value == sum(1 for a in addrs if a > 0)


class TestRounding:
    @given(st.integers(0, 16))
    @settings(max_examples=20)
    def test_pad2_parity(self, env, n):
        assert _eval_nat(env, f"pad2 {n}") == n % 2

    @given(st.integers(0, 16))
    @settings(max_examples=20)
    def test_even_matches_python(self, env, n):
        term = elaborate_term(env, parse_term(f"even {n}"), {})
        result = simpl(env, term)
        assert head_const(result) == ("true" if n % 2 == 0 else "false")


class TestPaddedLog:
    @given(st.lists(st.integers(0, 5), max_size=5))
    @settings(max_examples=30)
    def test_padded_log_length_even(self, env, addrs):
        entries = [(a, 0) for a in addrs]
        text = f"length (padded_log {_entry_list(entries)})"
        term = elaborate_term(env, parse_term(text), {})
        value = as_nat_lit(simpl(env, unfold(env, term, ["padded_log"])))
        n = len(addrs)
        assert value == n + (n % 2)


class TestDirTree:
    def test_tree_inum_computes(self, env):
        assert _eval_nat(env, "tree_inum (TreeDir 7 nil)") == 7
        assert _eval_nat(env, "tree_inum (TreeFile 3 nil)") == 3

    def test_is_file(self, env):
        term = elaborate_term(env, parse_term("is_file (TreeFile 1 nil)"), {})
        assert head_const(simpl(env, term)) == "true"


class TestSuper:
    @given(st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=30)
    def test_sb_accounting(self, env, total, used):
        def run(text):
            term = elaborate_term(env, parse_term(text), {})
            opened = unfold(env, term, ["sb_used", "sb_alloc", "sb_free"])
            return as_nat_lit(simpl(env, opened))

        assert run(f"sb_used (sb_alloc (pair {total} {used}))") == used + 1
        assert run(f"sb_used (sb_free (pair {total} {used}))") == max(
            0, used - 1
        )
