"""The benchmark corpus: every proof checks; structure is sane."""

import collections

import pytest

from repro.corpus.loader import FILE_MODULES, load_project
from repro.corpus.model import CATEGORIES
from repro.corpus.splits import make_splits
from repro.corpus.tokenizer import bin_of_length, count_tokens, tokenize


class TestAllProofsCheck:
    """Loading the project machine-checks all 300+ human proofs."""

    def test_project_loads_with_proofs_checked(self, project):
        assert len(project.theorems) >= 300

    def test_every_category_populated(self, project):
        counts = collections.Counter(t.category for t in project.theorems)
        for category in CATEGORIES:
            assert counts[category] >= 50, counts

    def test_figure2_lemmas_present(self, project):
        for name in (
            "incl_tl_inv",
            "ndata_log_padded_log",
            "tree_name_distinct_head",
        ):
            theorem = project.theorem(name)
            assert theorem.statement is not None

    def test_unique_names(self, project):
        names = [t.name for t in project.theorems]
        assert len(names) == len(set(names))

    def test_length_bins_populated(self, project):
        bins = collections.Counter(
            bin_of_length(t.proof_tokens) for t in project.theorems
        )
        assert bins[0] > 0  # <=16
        assert bins[2] > 0  # <=64
        assert bins[3] > 0  # <=128
        assert bins[6] > 0  # >512 (no model ever proves these)


class TestEnvRestriction:
    def test_theorem_invisible_to_itself(self, project):
        theorem = project.theorem("plus_comm")
        env = project.env_for(theorem)
        assert env.statement_of("plus_comm") is None
        assert env.statement_of("plus_0_r") is not None  # earlier lemma

    def test_later_lemmas_invisible(self, project):
        theorem = project.theorem("plus_0_r")
        env = project.env_for(theorem)
        assert env.statement_of("ndata_log_padded_log") is None

    def test_later_hints_invisible(self, project):
        first = project.theorems[0]
        env = project.env_for(first)
        assert len(env.hint_resolve) <= len(project.env.hint_resolve)

    def test_cannot_prove_by_own_hint(self, project):
        # Regression: `auto` once proved hinted theorems circularly.
        from repro.errors import ReproError
        from repro.tactics.script import run_script

        theorem = project.theorem("plus_0_r")
        env = project.env_for(theorem)
        with pytest.raises(ReproError):
            run_script(env, theorem.statement, "auto.")


class TestImports:
    def test_import_closure_is_ordered(self, project):
        seen = set()
        for source_file in project.files:
            for imp in source_file.imports:
                assert imp in seen
            seen.add(source_file.name)

    def test_all_modules_loaded(self, project):
        assert len(project.files) == len(FILE_MODULES)


class TestSplits:
    def test_split_deterministic(self, project):
        s1 = make_splits(project)
        s2 = make_splits(project)
        assert s1.hint_names == s2.hint_names
        assert [t.name for t in s1.test_large] == [
            t.name for t in s2.test_large
        ]

    def test_split_disjoint(self, project):
        splits = make_splits(project)
        for theorem in splits.test:
            assert theorem.name not in splits.hint_names

    def test_large_subset_of_small(self, project):
        splits = make_splits(project)
        small = {t.name for t in splits.test}
        assert {t.name for t in splits.test_large} <= small

    def test_fraction_roughly_half(self, project):
        splits = make_splits(project)
        assert abs(len(splits.hint_names) - len(project.theorems) / 2) <= 1


class TestTokenizer:
    def test_punctuation_counts(self):
        assert count_tokens("intros.") >= 2

    def test_long_identifiers_split(self):
        short = count_tokens("auto")
        long = count_tokens("tree_names_distinct_subtree_lemma")
        assert long > short * 3

    def test_monotone_under_concat(self):
        a, b = "intros. simpl.", "reflexivity."
        assert count_tokens(a + " " + b) <= count_tokens(a) + count_tokens(b) + 1

    def test_bin_edges(self):
        assert bin_of_length(10) == 0
        assert bin_of_length(16) == 0
        assert bin_of_length(17) == 1
        assert bin_of_length(512) == 5
        assert bin_of_length(513) == 6

    def test_tokenize_no_empties(self):
        assert all(tokenize("rewrite IHn. reflexivity."))
