"""The ``generate_batch`` protocol: batched must equal solo, byte for byte.

The micro-batcher (``repro.service.batching``) relies on this as a hard
contract — batch *composition* is timing-dependent, so any divergence
between a batched element and a solo call would make service results
non-deterministic.
"""

from __future__ import annotations

import pytest

from repro.llm import available_models, get_model
from repro.llm.interface import Candidate, generate_batch, supports_batch
from repro.llm.resilient import ResilientGenerator

PROMPTS = [
    "Lemma app_nil_r : forall l : list nat, app l nil = l.",
    "Lemma plus_O : forall n : nat, n + 0 = n.",
    "Goal rev (rev l) = l",
    "",  # degenerate prompt must still round-trip
    "Lemma plus_O : forall n : nat, n + 0 = n.",  # duplicate of [1]
]


class TestEveryProfile:
    @pytest.mark.parametrize("name", available_models())
    def test_batched_equals_solo_elementwise(self, name):
        model = get_model(name)
        requests = [(p, 1 + (i % 7)) for i, p in enumerate(PROMPTS)]
        batched = model.generate_batch(requests)
        solo = [model.generate(p, k) for p, k in requests]
        assert batched == solo

    @pytest.mark.parametrize("name", available_models())
    def test_duplicates_in_one_batch_agree(self, name):
        model = get_model(name)
        requests = [("Goal n = n", 4)] * 3
        results = model.generate_batch(requests)
        assert results[0] == results[1] == results[2]
        assert results[0] == model.generate("Goal n = n", 4)

    @pytest.mark.parametrize("name", available_models())
    def test_repeated_batches_are_deterministic(self, name):
        model = get_model(name)
        requests = [(p, 3) for p in PROMPTS]
        assert model.generate_batch(requests) == model.generate_batch(requests)


class SoloOnly:
    """A generator with no native ``generate_batch``."""

    name = "solo-only"
    context_window = 1000
    provides_log_probs = False

    def __init__(self):
        self.calls = []

    def generate(self, prompt, k):
        self.calls.append((prompt, k))
        return [Candidate(tactic=f"auto {len(self.calls)}.", log_prob=-1.0)]


class TestModuleFallback:
    def test_supports_batch(self):
        assert supports_batch(get_model("gpt-4o"))
        assert not supports_batch(SoloOnly())

    def test_fallback_is_elementwise_solo(self):
        gen = SoloOnly()
        out = generate_batch(gen, [("a", 1), ("b", 2)])
        assert gen.calls == [("a", 1), ("b", 2)]
        assert [len(r) for r in out] == [1, 1]

    def test_native_method_is_preferred(self):
        model = get_model("gpt-4o-mini")
        requests = [("Goal n = n", 2)]
        assert generate_batch(model, requests) == model.generate_batch(requests)


class TestResilientWrapper:
    def test_batch_goes_through_the_wrapper_per_element(self):
        inner = SoloOnly()
        wrapper = ResilientGenerator(inner)
        out = wrapper.generate_batch([("a", 1), ("b", 1), ("c", 1)])
        # Each element went through the full solo path (retries/breaker
        # act per element, not per batch).
        assert inner.calls == [("a", 1), ("b", 1), ("c", 1)]
        assert len(out) == 3

    def test_wrapper_batch_equals_wrapper_solo(self):
        model = get_model("gemini-1.5-flash")
        wrapper = ResilientGenerator(model)
        requests = [(p, 2) for p in PROMPTS]
        assert wrapper.generate_batch(requests) == [
            wrapper.generate(p, k) for p, k in requests
        ]
