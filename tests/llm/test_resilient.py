"""ResilientGenerator: retries, backoff, breaker, degradation.

Every test drives the wrapper with a fake clock whose ``sleep``
advances it — no real time passes anywhere in this file.
"""

import pytest

from repro.errors import (
    GenerationTimeout,
    ModelExhaustedError,
    RateLimitError,
    TransientModelError,
)
from repro.llm.interface import Candidate
from repro.llm.resilient import ResilientGenerator, RetryPolicy, stable_jitter


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class ScriptedModel:
    """Raises the scripted errors in order, then answers normally."""

    name = "scripted"
    context_window = 1000
    provides_log_probs = True

    def __init__(self, errors=(), latency=0.0, clock=None) -> None:
        self.errors = list(errors)
        self.latency = latency
        self.clock = clock
        self.calls = 0

    def generate(self, prompt, k):
        self.calls += 1
        if self.latency and self.clock is not None:
            self.clock.now += self.latency
        if self.errors:
            raise self.errors.pop(0)
        return [Candidate(tactic="auto.", log_prob=-1.0)]


class CountingMetrics:
    def __init__(self) -> None:
        self.counters = {}

    def incr(self, name, n=1):
        self.counters[name] = self.counters.get(name, 0) + n


def make(primary, fallback=None, clock=None, **policy_kwargs):
    clock = clock or FakeClock()
    metrics = CountingMetrics()
    wrapper = ResilientGenerator(
        primary,
        fallback=fallback,
        policy=RetryPolicy(**policy_kwargs),
        clock=clock,
        sleep=clock.sleep,
        metrics=metrics,
    )
    return wrapper, clock, metrics


class TestRetries:
    def test_transparent_on_success(self):
        model = ScriptedModel()
        wrapper, clock, metrics = make(model)
        out = wrapper.generate("p", 4)
        assert [c.tactic for c in out] == ["auto."]
        assert model.calls == 1
        assert clock.sleeps == []
        assert metrics.counters == {}

    def test_retries_through_transient_errors(self):
        model = ScriptedModel(
            errors=[TransientModelError("500"), TransientModelError("500")]
        )
        wrapper, clock, metrics = make(model, max_attempts=4)
        out = wrapper.generate("p", 4)
        assert [c.tactic for c in out] == ["auto."]
        assert model.calls == 3
        assert metrics.counters["llm.retries"] == 2
        assert len(clock.sleeps) == 2

    def test_backoff_schedule_is_exponential_and_deterministic(self):
        errors = [TransientModelError("500")] * 3
        model_a = ScriptedModel(errors=list(errors))
        model_b = ScriptedModel(errors=list(errors))
        a, clock_a, _ = make(model_a, base_delay=0.1, jitter=0.25)
        b, clock_b, _ = make(model_b, base_delay=0.1, jitter=0.25)
        a.generate("p", 4)
        b.generate("p", 4)
        # Identical runs sleep identically (hash jitter, no RNG) …
        assert clock_a.sleeps == clock_b.sleeps
        # … and the base doubles each retry: 0.1, 0.2, 0.4 (+ jitter).
        for i, (lo, sleep) in enumerate(zip((0.1, 0.2, 0.4), clock_a.sleeps)):
            assert lo <= sleep <= lo * 1.25, f"retry {i}"

    def test_rate_limit_floor_exceeds_early_backoff(self):
        model = ScriptedModel(errors=[RateLimitError("429")])
        wrapper, clock, _ = make(
            model, base_delay=0.01, rate_limit_delay=0.5
        )
        wrapper.generate("p", 4)
        assert clock.sleeps[0] >= 0.5

    def test_exhaustion_without_fallback_raises(self):
        model = ScriptedModel(errors=[TransientModelError("500")] * 10)
        wrapper, _, _ = make(model, max_attempts=3)
        with pytest.raises(ModelExhaustedError):
            wrapper.generate("p", 4)
        assert model.calls == 3

    def test_exhaustion_with_fallback_degrades(self):
        primary = ScriptedModel(errors=[TransientModelError("500")] * 10)
        fallback = ScriptedModel()
        wrapper, _, metrics = make(primary, fallback=fallback, max_attempts=2)
        out = wrapper.generate("p", 4)
        assert [c.tactic for c in out] == ["auto."]
        assert fallback.calls == 1
        assert metrics.counters["llm.fallback_queries"] == 1


class TestQueryTimeout:
    def test_slow_call_classified_as_timeout(self):
        clock = FakeClock()
        model = ScriptedModel(latency=10.0, clock=clock)
        wrapper, clock, _ = make(
            model, clock=clock, query_timeout=5.0, max_attempts=1
        )
        with pytest.raises(ModelExhaustedError) as excinfo:
            wrapper.generate("p", 4)
        assert isinstance(excinfo.value.__cause__, GenerationTimeout)

    def test_fast_call_passes(self):
        clock = FakeClock()
        model = ScriptedModel(latency=1.0, clock=clock)
        wrapper, clock, _ = make(model, clock=clock, query_timeout=5.0)
        assert wrapper.generate("p", 4)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        model = ScriptedModel(errors=[TransientModelError("500")] * 100)
        fallback = ScriptedModel()
        wrapper, clock, metrics = make(
            model,
            fallback=fallback,
            max_attempts=10,
            breaker_threshold=3,
            breaker_cooldown=30.0,
        )
        wrapper.generate("p", 4)
        # Tripped mid-query after exactly 3 primary failures, then
        # degraded; no further primary calls while open.
        assert model.calls == 3
        assert wrapper.breaker_open()
        assert metrics.counters["llm.breaker_opens"] == 1
        wrapper.generate("q", 4)
        assert model.calls == 3
        assert fallback.calls == 2

    def test_half_open_probe_recovers(self):
        model = ScriptedModel(errors=[TransientModelError("500")] * 3)
        fallback = ScriptedModel()
        wrapper, clock, _ = make(
            model,
            fallback=fallback,
            max_attempts=5,
            breaker_threshold=3,
            breaker_cooldown=30.0,
        )
        wrapper.generate("p", 4)
        assert wrapper.breaker_open()
        clock.now += 31.0  # cooldown over -> half-open
        out = wrapper.generate("q", 4)  # probe succeeds -> closed
        assert [c.tactic for c in out] == ["auto."]
        assert not wrapper.breaker_open()
        assert wrapper._consecutive_failures == 0

    def test_half_open_failure_reopens_immediately(self):
        model = ScriptedModel(errors=[TransientModelError("500")] * 100)
        fallback = ScriptedModel()
        wrapper, clock, metrics = make(
            model,
            fallback=fallback,
            max_attempts=5,
            breaker_threshold=3,
            breaker_cooldown=30.0,
        )
        wrapper.generate("p", 4)
        calls_after_trip = model.calls
        clock.now += 31.0
        wrapper.generate("q", 4)  # half-open probe fails once
        assert model.calls == calls_after_trip + 1
        assert wrapper.breaker_open()
        assert metrics.counters["llm.breaker_opens"] == 2


class TestDelegation:
    def test_generator_surface_is_delegated(self):
        model = ScriptedModel()
        wrapper, _, _ = make(model)
        assert wrapper.name == "scripted"
        assert wrapper.context_window == 1000
        assert wrapper.provides_log_probs is True


class TestStableJitter:
    def test_range_and_determinism(self):
        values = [stable_jitter("model", "prompt", i) for i in range(50)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [stable_jitter("model", "prompt", i) for i in range(50)]
        assert len(set(values)) > 40  # spreads, not constant
