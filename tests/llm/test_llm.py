"""The simulated models: determinism, prompt-boundedness, profiles."""

import math

import pytest

from repro.corpus.splits import make_splits
from repro.errors import GenerationError
from repro.kernel.goals import initial_state
from repro.llm import PROFILES, WholeProofModel, available_models, get_model
from repro.llm.promptview import parse_prompt
from repro.llm.sampling import corrupt, stable_seed
from repro.prompting import PromptBuilder


@pytest.fixture(scope="module")
def prompt_for(project):
    def _prompt(name, hinted=False, window=None):
        theorem = project.theorem(name)
        hints = (
            make_splits(project).hint_names | {"app_nil_r"} if hinted else None
        )
        builder = PromptBuilder(
            project, theorem, hint_names=hints, window_tokens=window
        )
        state = initial_state(project.env_for(theorem), theorem.statement)
        return builder.build(state, [])

    return _prompt


class TestGeneration:
    def test_deterministic(self, prompt_for):
        model = get_model("gpt-4o")
        prompt = prompt_for("rev_involutive")
        first = model.generate(prompt, 8)
        second = model.generate(prompt, 8)
        assert first == second

    def test_k_respected(self, prompt_for):
        model = get_model("gpt-4o")
        candidates = model.generate(prompt_for("rev_involutive"), 4)
        assert 1 <= len(candidates) <= 4

    def test_log_probs_normalized(self, prompt_for):
        model = get_model("gpt-4o")
        candidates = model.generate(prompt_for("rev_involutive"), 8)
        total = sum(math.exp(c.log_prob) for c in candidates)
        assert total <= 1.0 + 1e-6
        assert all(
            a.log_prob >= b.log_prob
            for a, b in zip(candidates, candidates[1:])
        )

    def test_models_differ(self, prompt_for):
        prompt = prompt_for("rev_involutive")
        strong = get_model("gpt-4o").generate(prompt, 8)
        weak = get_model("gpt-4o-mini").generate(prompt, 8)
        assert strong != weak

    def test_unknown_model(self):
        with pytest.raises(GenerationError):
            get_model("gpt-17")

    def test_available_models_match_profiles(self):
        assert set(available_models()) == set(PROFILES)

    def test_k_zero_rejected(self, prompt_for):
        with pytest.raises(GenerationError):
            get_model("gpt-4o").generate(prompt_for("rev_involutive"), 0)


class TestPromptBoundedness:
    def test_hints_change_candidates(self, prompt_for):
        model = get_model("gpt-4o")
        vanilla = model.generate(prompt_for("rev_involutive"), 8)
        hinted = model.generate(prompt_for("rev_involutive", hinted=True), 8)
        assert vanilla != hinted

    def test_truncation_changes_view(self, prompt_for):
        full = parse_prompt(prompt_for("sb_ok_used_bound"))
        narrow = parse_prompt(prompt_for("sb_ok_used_bound", window=1500))
        assert len(narrow.lemmas) < len(full.lemmas)
        # The goal display is always preserved by keep-the-end truncation.
        assert narrow.goal_text


class TestPromptView:
    def test_parses_goal_and_hyps(self, project):
        theorem = project.theorem("Forall_inv")
        env = project.env_for(theorem)
        builder = PromptBuilder(project, theorem)
        state = initial_state(env, theorem.statement)
        from repro.serapi import ProofChecker

        checker = ProofChecker(env)
        state = checker.check(state, "intros").state
        view = parse_prompt(builder.build(state, ["intros"]))
        assert view.steps == ["intros"]
        hyp_names = [h.name for h in view.hyps]
        assert "H" in hyp_names
        assert view.goal_text

    def test_inductive_preds_found(self, prompt_for):
        view = parse_prompt(prompt_for("Forall_inv"))
        assert "Forall" in view.inductive_preds
        assert "le" in view.inductive_preds

    def test_lemma_statements_without_proofs_in_vanilla(self, prompt_for):
        view = parse_prompt(prompt_for("rev_involutive"))
        assert view.lemmas  # statements visible
        assert not view.hinted_lemmas()  # but no proofs

    def test_hint_proofs_visible(self, prompt_for):
        view = parse_prompt(prompt_for("rev_involutive", hinted=True))
        assert view.hinted_lemmas()


class TestSampling:
    def test_stable_seed_stable(self):
        assert stable_seed("a", "b") == stable_seed("a", "b")
        assert stable_seed("a", "b") != stable_seed("a", "c")

    def test_corrupt_changes_text(self):
        import random

        rng = random.Random(1)
        changed = 0
        for _ in range(20):
            if corrupt("apply app_nil_l", rng) != "apply app_nil_l":
                changed += 1
        assert changed > 10


class TestWholeProof:
    def test_no_log_probs_flag(self):
        assert WholeProofModel().provides_log_probs is False

    def test_search_refuses_wholeproof_model(self, project):
        from repro.core import BestFirstSearch
        from repro.serapi import ProofChecker

        with pytest.raises(GenerationError):
            BestFirstSearch(
                ProofChecker(project.env), WholeProofModel()
            )

    def test_generates_scripts(self, prompt_for):
        scripts = WholeProofModel().generate(
            prompt_for("rev_involutive"), 4
        )
        assert len(scripts) == 4
        assert all(s.endswith(".") for s in scripts)
