"""Unit tests for the proposal machinery (heuristics + retrieval)."""

import pytest

from repro.llm.heuristics import propose
from repro.llm.promptview import (
    HypView,
    LemmaView,
    PromptView,
    _binder_names,
    parse_prompt,
)
from repro.llm.retrieval import (
    _proof_steps,
    hint_head_priors,
    hint_proposals,
    retrieve,
)
from repro.kernel.parser import parse_term


def _view(goal_text, hyps=(), lemmas=(), preds=(), defs=()):
    view = PromptView()
    view.goal_text = goal_text
    try:
        view.goal_term = parse_term(goal_text)
    except Exception:
        view.goal_term = None
    view.hyps = list(hyps)
    view.inductive_preds = set(preds)
    view.definitions = list(defs)
    for lemma in lemmas:
        view.lemmas[lemma.name] = lemma
    return view


def _lemma(name, statement, proof=None):
    from repro.llm.promptview import _conclusion_of, _head_of

    conclusion = _conclusion_of(statement)
    head, is_eq = _head_of(conclusion)
    return LemmaView(
        name,
        statement,
        conclusion,
        head,
        is_eq,
        proof=proof,
        binders=_binder_names(statement),
    )


class TestBinderNames:
    def test_parenthesized_groups(self):
        names = _binder_names("forall (A : Type) (l1 l2 : list A), P")
        assert {"A", "l1", "l2"} <= names

    def test_bare_binders(self):
        assert "n" in _binder_names("forall n, n = n")

    def test_no_forall(self):
        assert _binder_names("0 = 0") == frozenset()


class TestHeuristics:
    def test_forall_proposes_intros(self):
        tactics = {p.tactic for p in propose(_view("forall n, n = n"))}
        assert "intros" in tactics

    def test_and_proposes_split(self):
        tactics = {p.tactic for p in propose(_view("a = b /\\ b = a"))}
        assert "split" in tactics

    def test_eq_proposes_reflexivity_and_lia(self):
        tactics = {p.tactic for p in propose(_view("a + b = b + a"))}
        assert "reflexivity" in tactics
        assert "lia" in tactics

    def test_pred_hyp_proposes_inversion(self):
        hyp = HypView("H", "Forall P l", False, parse_term("Forall P l"))
        view = _view("P x", hyps=[hyp], preds={"Forall"})
        tactics = {p.tactic for p in propose(view)}
        assert "inversion H" in tactics

    def test_ih_gets_priority(self):
        hyp = HypView(
            "IHl", "length l = n", False, parse_term("length l = n")
        )
        proposals = propose(_view("S (length l) = S n", hyps=[hyp]))
        by_tactic = {p.tactic: p.weight for p in proposals}
        assert by_tactic["rewrite IHl"] >= 2.0

    def test_definition_unfold(self):
        view = _view("incl l1 l2", defs=["incl"])
        tactics = {p.tactic for p in propose(view)}
        assert "unfold incl" in tactics


class TestRetrieval:
    def test_matching_lemma_proposed(self):
        lemma = _lemma(
            "app_nil_r", "forall (A : Type) (l : list A), l ++ nil = l"
        )
        view = _view("x ++ nil = x", lemmas=[lemma])
        tactics = {p.tactic for p in retrieve(view, 1.0)}
        assert "rewrite app_nil_r" in tactics
        assert "apply app_nil_r" in tactics

    def test_binders_do_not_count_as_signal(self):
        # A lemma whose only shared tokens are its binder names must
        # not outrank one sharing real constants.
        noise = _lemma("noise", "forall (x : nat), x = x")
        signal = _lemma(
            "map_app",
            "forall (A B : Type) (g : A -> B) (l1 l2 : list A), "
            "map g (l1 ++ l2) = map g l1 ++ map g l2",
        )
        view = _view("map fst (a ++ b) = map fst a ++ map fst b",
                     lemmas=[noise, signal])
        proposals = retrieve(view, 1.0)
        weights = {p.tactic: p.weight for p in proposals}
        assert weights.get("rewrite map_app", 0) > weights.get(
            "rewrite noise", 0
        )

    def test_strength_scales(self):
        lemma = _lemma(
            "rev_length",
            "forall (A : Type) (l : list A), length (rev l) = length l",
        )
        view = _view("length (rev k) = length k", lemmas=[lemma])
        strong = {p.tactic: p.weight for p in retrieve(view, 1.0)}
        weak = {p.tactic: p.weight for p in retrieve(view, 0.3)}
        assert strong["apply rev_length"] > weak["apply rev_length"]


class TestHintMimicry:
    def test_steps_split(self):
        steps = _proof_steps(
            "intros. simpl.\n- rewrite IHl; auto.\n- reflexivity."
        )
        assert steps[0] == "intros"
        assert "reflexivity" in steps

    def test_similar_proof_replayed(self):
        lemma = _lemma(
            "ndata_log_app",
            "forall (l1 l2 : list (prod nat valu)), "
            "ndata_log (l1 ++ l2) = ndata_log l1 + ndata_log l2",
            proof="intros. unfold ndata_log. rewrite map_app. "
            "apply nonzero_addrs_app.",
        )
        view = _view(
            "ndata_log (padded_log a) = ndata_log a", lemmas=[lemma]
        )
        view.theorem_statement = view.goal_text
        tactics = {p.tactic for p in hint_proposals(view, 1.0)}
        assert "rewrite map_app" in tactics
        assert "unfold ndata_log" in tactics

    def test_head_priors_frequency(self):
        lemma = _lemma(
            "x", "forall n, n = n", proof="intros. auto. auto. auto."
        )
        view = _view("k = k", lemmas=[lemma])
        priors = hint_head_priors(view)
        assert priors["auto"] > priors["intros"]

    def test_no_hints_no_priors(self):
        view = _view("k = k")
        assert hint_head_priors(view) == {}
        assert hint_proposals(view, 1.0) == []
