"""Environment discipline and proof-script (bullet/brace) semantics."""

import pytest

from repro.errors import EnvironmentError_, ScriptError
from repro.kernel.definitions import Abbreviation
from repro.kernel.env import Environment
from repro.kernel.inductives import DataConstructor, Inductive
from repro.kernel.terms import TRUE
from repro.kernel.types import NAT, PROP
from repro.tactics.script import Sentence, split_sentences


class TestEnvironment:
    def test_duplicate_inductive_rejected(self):
        env = Environment()
        ind = Inductive("t", (), (DataConstructor("mk"),))
        env.declare_inductive(ind)
        with pytest.raises(EnvironmentError_):
            env.declare_inductive(ind)

    def test_duplicate_constructor_rejected(self):
        env = Environment()
        env.declare_inductive(Inductive("t", (), (DataConstructor("mk"),)))
        with pytest.raises(EnvironmentError_):
            env.declare_inductive(
                Inductive("u", (), (DataConstructor("mk"),))
            )

    def test_lemma_cannot_shadow_constant(self):
        env = Environment()
        env.declare_opaque("c", NAT)
        with pytest.raises(EnvironmentError_):
            env.add_lemma("c", TRUE)

    def test_duplicate_lemma_rejected(self):
        env = Environment()
        env.add_lemma("l", TRUE)
        with pytest.raises(EnvironmentError_):
            env.add_axiom("l", TRUE)

    def test_hint_for_unknown_lemma_rejected(self):
        env = Environment()
        with pytest.raises(EnvironmentError_):
            env.hint_resolve_add("ghost")

    def test_auto_hints_order(self):
        env = Environment()
        env.add_lemma("a", TRUE)
        env.add_lemma("b", TRUE)
        env.hint_resolve_add("b", "a")
        assert [n for n, _ in env.auto_hints()] == ["b", "a"]

    def test_abbreviation_signature_type(self):
        env = Environment()
        env.declare_abbreviation(
            Abbreviation("always", (("x", NAT),), TRUE, PROP)
        )
        info = env.signature.lookup("always")
        assert str(info.ty) == "nat -> Prop"


class TestSentenceSplitting:
    def test_plain(self):
        assert split_sentences("intros. auto.") == [
            Sentence(None, "intros"),
            Sentence(None, "auto"),
        ]

    def test_strips_proof_qed(self):
        sentences = split_sentences("Proof.\n intros. auto.\nQed.")
        assert [s.tactic_text for s in sentences] == ["intros", "auto"]

    def test_bullets_attach(self):
        sentences = split_sentences("split.\n- auto.\n- auto.")
        assert sentences[1].bullet == "-"
        assert sentences[1].tactic_text == "auto"

    def test_bullet_runs(self):
        sentences = split_sentences("x.\n-- auto.")
        assert sentences[1].bullet == "--"

    def test_spaced_dashes_are_not_a_run(self):
        sentences = split_sentences("x.\n- - auto.")
        # '- -' is two separate bullets, not '--'.
        assert sentences[1].bullet == "-"
        assert sentences[2].bullet == "-"

    def test_braces_are_markers(self):
        sentences = split_sentences("assert (0 = 0).\n{ auto. }\nauto.")
        kinds = [s.bullet for s in sentences]
        assert "{" in kinds and "}" in kinds

    def test_period_inside_parens_not_a_split(self):
        # Periods only end sentences at top level; none appear nested
        # in practice, but unbalanced input must error, not hang.
        with pytest.raises(ScriptError):
            split_sentences("intros")  # no terminating period


class TestBulletDiscipline:
    def test_wrong_order_fails(self, fails):
        fails(
            "0 = 0 /\\ 1 = 1",
            "split.\n- reflexivity.\nreflexivity.\n- reflexivity.",
        )

    def test_unclosed_brace_fails(self, fails):
        fails("0 = 0", "{ reflexivity.")

    def test_close_without_open_fails(self, fails):
        fails("0 = 0", "reflexivity. }")

    def test_nested_bullets(self, prove):
        prove(
            "(0 = 0 /\\ 1 = 1) /\\ 2 = 2",
            "split.\n"
            "- split.\n"
            "  + reflexivity.\n"
            "  + reflexivity.\n"
            "- reflexivity.",
        )

    def test_brace_then_bullet(self, prove):
        prove(
            "0 = 0 /\\ 1 = 1",
            "split.\n{ reflexivity. }\n{ reflexivity. }",
        )
