"""Term unification and elaboration."""

import pytest

from repro.errors import TypeError_, UnificationError
from repro.kernel.parser import parse_statement, parse_term
from repro.kernel.reduction import make_whnf
from repro.kernel.subst import alpha_eq
from repro.kernel.terms import Const, Eq, Forall, Var, app, napp, nat_lit
from repro.kernel.typecheck import elaborate_term, infer_type
from repro.kernel.types import NAT, PROP, TCon
from repro.kernel.unify import MetaStore, unify


class TestUnify:
    def test_solve_meta(self, env):
        store = MetaStore()
        m = store.fresh("x")
        unify(napp("S", m), napp("S", nat_lit(3)), store)
        assert store.resolve(m) == nat_lit(3)

    def test_rigid_clash(self, env):
        store = MetaStore()
        with pytest.raises(UnificationError):
            unify(Const("O"), napp("S", Const("O")), store)

    def test_rollback_on_failure(self, env):
        store = MetaStore()
        m = store.fresh("x")
        with pytest.raises(UnificationError):
            # First arg solves m := 0, second clashes; m must roll back.
            unify(
                napp("pair", m, Const("O")),
                napp("pair", nat_lit(0), napp("S", Const("O"))),
                store,
            )
        assert not store.is_solved(m.uid)

    def test_occurs_check(self, env):
        store = MetaStore()
        m = store.fresh("x")
        with pytest.raises(UnificationError):
            unify(m, napp("S", m), store)

    def test_binder_scope_violation(self, env):
        store = MetaStore()
        m = store.fresh("x")
        # ?m cannot capture the bound variable.
        with pytest.raises(UnificationError):
            unify(
                Forall("y", NAT, Eq(NAT, m, Var("y"))),
                Forall("z", NAT, Eq(NAT, Var("z"), Var("z"))),
                store,
            )

    def test_unify_up_to_conversion(self, env):
        store = MetaStore()
        lhs = elaborate_term(env, parse_term("1 + 1"), {})
        rhs = nat_lit(2)
        unify(lhs, rhs, store, make_whnf(env))  # succeeds via whnf

    def test_alpha_in_binders(self, env):
        store = MetaStore()
        t1 = Forall("a", NAT, Eq(NAT, Var("a"), Var("a")))
        t2 = Forall("b", NAT, Eq(NAT, Var("b"), Var("b")))
        unify(t1, t2, store)  # no exception


class TestElaboration:
    def test_resolves_constants(self, env):
        term = elaborate_term(env, parse_term("length nil"), {})
        assert term == napp("length", Const("nil"))

    def test_unknown_identifier(self, env):
        with pytest.raises(TypeError_):
            elaborate_term(env, parse_term("definitely_not_a_thing x"), {})

    def test_star_resolves_to_mult(self, env):
        term = elaborate_term(env, parse_term("2 * 3"), {})
        assert term == napp("mult", nat_lit(2), nat_lit(3))

    def test_star_resolves_to_sep_star(self, env):
        term = elaborate_term(
            env,
            parse_term("p * q"),
            {"p": TCon("pred"), "q": TCon("pred")},
        )
        assert term == napp("sep_star", Var("p"), Var("q"))

    def test_eq_type_filled(self, env):
        statement = parse_statement(env, "forall n, n + 0 = n")
        body = statement.body
        assert isinstance(body, Eq)
        assert body.ty == NAT

    def test_type_error_on_misapplication(self, env):
        with pytest.raises(TypeError_):
            elaborate_term(env, parse_term("S nil"), {})

    def test_infer_type(self, env):
        _, ty = infer_type(env, parse_term("0 :: nil"), {})
        assert ty == TCon("list", (NAT,))

    def test_statement_must_be_prop(self, env):
        with pytest.raises(TypeError_):
            parse_statement(env, "1 + 1")

    def test_polymorphic_statement(self, env):
        statement = parse_statement(
            env, "forall (T : Type) (l : list T), l ++ nil = l"
        )
        assert isinstance(statement, Forall)
