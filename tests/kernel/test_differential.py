"""Differential soundness: the cached kernel vs. the pristine kernel.

The performance layer (interning, memoized substitution/reduction,
fingerprint state keys) must be *observationally invisible*: every
verdict, goal count, and state key the search engine sees has to be
identical with caches on and off, and the fingerprint keys must prune
exactly the states the string-key oracle would prune.

Three granularities:

* full FSCQ corpus load with proof replay (every human proof
  machine-checked through the whole tactic engine) under both modes;
* stepwise replay of bullet-free proofs through ``ProofChecker.check``
  comparing per-step verdicts, goal counts, string keys, and
  fingerprints;
* whole evaluation sweeps (search + Qed replay) cache-on vs. cache-off
  and fingerprint-keys vs. string-keys.
"""

from __future__ import annotations

import pytest

from repro.core import BestFirstSearch, SearchConfig
from repro.corpus.loader import load_project
from repro.eval import ExperimentConfig, Runner, SerialExecutor, sweep_tasks
from repro.kernel import cache
from repro.kernel.subst import alpha_key
from repro.llm import get_model
from repro.prompting import PromptBuilder
from repro.serapi import ProofChecker
from repro.tactics.script import script_tactics, split_sentences

CONFIG = ExperimentConfig(max_theorems=6, fuel=16)


class TestCorpusReplay:
    def test_checked_load_matches_with_caches_off(self):
        # A checked load replays all corpus proofs through the tactic
        # engine; both loads completing proves every per-tactic verdict
        # agreed (any divergence raises at load).
        proj_on = load_project(check_proofs=True, use_cache=False)
        assert cache.enabled()
        with cache.disabled():
            proj_off = load_project(check_proofs=True, use_cache=False)
        names_on = [t.name for t in proj_on.theorems]
        names_off = [t.name for t in proj_off.theorems]
        assert names_on == names_off
        for t_on, t_off in zip(proj_on.theorems, proj_off.theorems):
            # Statements differ only in fresh-tvar annotations (the
            # global counter keeps running between loads), never in
            # alpha-structure.
            assert alpha_key(t_on.statement) == alpha_key(t_off.statement)
            assert t_on.proof_text == t_off.proof_text
            assert t_on.category == t_off.category

    def test_stepwise_replay_identical(self, project):
        """Per-step verdicts/goal counts/keys agree across cache modes."""

        def bullet_free(theorem):
            try:
                sentences = split_sentences(theorem.proof_text)
            except Exception:
                return False
            return all(s.bullet is None for s in sentences)

        sample = [t for t in project.theorems if bullet_free(t)][:30]
        assert len(sample) >= 20  # the corpus keeps plenty of these

        def trace(theorem, enabled):
            env = project.env_for(theorem)
            checker = ProofChecker(env)
            steps = []

            def run():
                cache.clear_caches()
                state = checker.start(theorem.statement)
                for tactic in script_tactics(theorem.proof_text):
                    result = checker.check(state, tactic)
                    steps.append(
                        (
                            tactic,
                            result.verdict.value,
                            result.state.num_goals() if result.ok else None,
                            result.state.key() if result.ok else None,
                            result.state.fingerprint() if result.ok else None,
                        )
                    )
                    if not result.ok:
                        return
                    state = result.state

            if enabled:
                run()
            else:
                with cache.disabled():
                    run()
            return steps

        for theorem in sample:
            assert trace(theorem, True) == trace(theorem, False), theorem.name


@pytest.fixture(scope="module")
def sweep(project):
    runner = Runner(project, CONFIG)
    theorems = runner.theorems_for("gpt-4o-mini")
    tasks = sweep_tasks(theorems, "gpt-4o-mini", True, CONFIG)
    tasks += sweep_tasks(theorems, "gpt-4o-mini", False, CONFIG)
    return runner, theorems, tasks


class TestSweepDifferential:
    def test_cache_on_vs_off_identical_records(self, sweep):
        runner, _, tasks = sweep
        cached = runner.run_tasks(tasks, executor=SerialExecutor())
        with cache.disabled():
            pristine = runner.run_tasks(tasks, executor=SerialExecutor())
        assert cached == pristine

    def test_fingerprint_vs_string_keys_identical_search(self, sweep):
        runner, theorems, _ = sweep
        config = SearchConfig(fuel=CONFIG.fuel, width=CONFIG.width)

        def run_search(theorem, state_keys):
            env = runner.project.env_for(theorem)
            checker = ProofChecker(env, state_keys=state_keys)
            builder = PromptBuilder(runner.project, theorem)
            search = BestFirstSearch(checker, get_model("gpt-4o-mini"), config)
            result = search.prove(theorem.name, theorem.statement, builder.build)
            return (
                result.status,
                result.tactics,
                result.stats.queries,
                result.stats.candidates,
                result.stats.rejected,
                result.stats.duplicates,  # no false duplicate pruning
                result.stats.timeouts,
                result.stats.nodes_created,
            )

        for theorem in theorems:
            fp = run_search(theorem, "fingerprint")
            oracle = run_search(theorem, "string")
            assert fp == oracle, theorem.name

    def test_unknown_state_keys_mode_rejected(self, project):
        with pytest.raises(ValueError, match="state_keys"):
            ProofChecker(project.env, state_keys="sha256")
