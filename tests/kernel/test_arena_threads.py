"""Concurrent interning must keep the arena's parallel arrays aligned.

Regression for a race in ``TermArena._admit``: without the admit lock,
two threads could read the same ``len(self.nodes)`` as a fresh id and
interleave their appends, publishing misaligned ids — the cause of
sporadic ``IndexError`` job failures in concurrent service runs.  The
hammer drives many threads through overlapping term structures (shared
seeds guarantee cross-thread collisions on the same nodes) and then
checks the arena's invariants.
"""

from __future__ import annotations

import random
import threading

from repro.kernel import arena
from repro.kernel import cache as kernel_cache
from repro.kernel.terms import And, Const, Impl, Var, napp

THREADS = 12
TRIALS = 6
TERMS_PER_THREAD = 300


def _make_terms(seed: int):
    rng = random.Random(seed)
    out = []
    for _ in range(TERMS_PER_THREAD):
        n = rng.randrange(0, 40)
        t = Const("O")
        for _ in range(n):
            t = napp("S", t)
        out.append(
            Impl(And(napp("le", t, Var("x")), Var("y")), napp("eq", t, t))
        )
    return out


def test_concurrent_intern_keeps_arrays_aligned():
    errors = []

    def worker(seed: int) -> None:
        try:
            with kernel_cache.pinned():
                a = arena.current()
                # Shared seeds: distinct threads intern identical
                # structures, forcing contention on the same entries.
                for term in _make_terms(seed % 5):
                    tid = a.intern_id(term)
                    rep = a.term_of(tid)
                    assert a.intern_id(rep) == tid
        except Exception as exc:  # propagate to the main thread
            errors.append(f"{type(exc).__name__}: {exc}")

    for trial in range(TRIALS):
        kernel_cache.clear_caches()
        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"trial {trial}: {errors[:3]}"
        a = arena.current()
        lengths = {
            len(a.nodes),
            len(a.terms),
            len(a.hashes),
            len(a.fvs),
            len(a.metas),
            len(a.alpha_fp),
        }
        assert len(lengths) == 1, f"trial {trial}: misaligned {lengths}"
        for key, tid in list(a.table.items()):
            assert tid < len(a.terms), f"trial {trial}: id {tid} OOB"
            assert a._node_key(a.terms[tid]) == key
    kernel_cache.clear_caches()
