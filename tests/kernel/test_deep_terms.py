"""Deep-term regression: hot paths must be recursion-limit-proof.

The FSCQ-style corpus computes on Peano numerals, so ``simpl`` on an
arithmetic goal can materialize terms thousands of constructors deep.
Before the arena refactor every kernel traversal was a recursive
object walk and a ~5k-deep numeral blew ``sys.getrecursionlimit()``;
the iterative worklist machines must handle it in both cache modes.

The recursion limit is *pinned low* for the duration of each test so a
regression back to recursive walks fails loudly here instead of
intermittently in eval sweeps.  Comparisons go through ``as_nat_lit``
(itself a loop) rather than ``==``: uninterned deep equality falls
back to the dataclass field walk, which is exactly the recursion this
test must not depend on.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

import pytest

from repro.kernel import cache
from repro.kernel.reduction import Budget, simpl, whnf
from repro.kernel.subst import alpha_fingerprint, subst_var, subst_vars
from repro.kernel.terms import (
    Const,
    Eq,
    Var,
    as_nat_lit,
    free_var_set,
    intern,
    meta_set,
    napp,
    nat_lit,
    structural_hash,
)

DEPTH = 5_000


@contextmanager
def low_recursion_limit(limit: int = 1000):
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


@pytest.fixture(params=["cached", "pristine"])
def cache_mode(request):
    if request.param == "pristine":
        with cache.disabled():
            yield request.param
    else:
        yield request.param


class TestDeepTerms:
    def test_subst_vars_on_deep_numeral(self, cache_mode):
        deep = nat_lit(DEPTH)
        goal = Eq(None, Var("n"), napp("S", Var("n")))
        with low_recursion_limit():
            result = subst_var(goal, "n", deep)
        assert as_nat_lit(result.lhs) == DEPTH
        assert as_nat_lit(result.rhs) == DEPTH + 1

    def test_subst_vars_identity_on_deep_term(self, cache_mode):
        deep = nat_lit(DEPTH)
        with low_recursion_limit():
            assert subst_vars(deep, {"unused": Const("O")}) is deep

    def test_whnf_reduces_deep_application(self, env, cache_mode):
        # add recurses on its first argument: whnf must expose the head
        # constructor without a Python frame per layer of the deep
        # second argument it matches against a pattern variable.
        term = napp("add", nat_lit(1), nat_lit(DEPTH))
        with low_recursion_limit():
            result = whnf(env, term, Budget(100_000))
        assert result.fn == Const("S")

    def test_simpl_normalizes_deep_sum(self, env, cache_mode):
        term = napp("add", nat_lit(3), nat_lit(DEPTH))
        with low_recursion_limit():
            result = simpl(env, term, Budget(100_000))
        assert as_nat_lit(result) == DEPTH + 3

    def test_derived_data_on_deep_terms(self, cache_mode):
        deep = Eq(None, Var("n"), nat_lit(DEPTH))
        with low_recursion_limit():
            assert free_var_set(deep) == frozenset({"n"})
            assert meta_set(deep) == frozenset()
            assert isinstance(structural_hash(deep), int)
            assert isinstance(alpha_fingerprint(deep), int)

    def test_intern_deep_term(self):
        with low_recursion_limit():
            a = intern(nat_lit(DEPTH))
            b = intern(nat_lit(DEPTH))
        assert a is b
        assert as_nat_lit(a) == DEPTH
