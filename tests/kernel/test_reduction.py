"""Reduction (simpl / whnf / unfold) against executable semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.parser import parse_term
from repro.kernel.reduction import Budget, simpl, unfold, whnf
from repro.kernel.terms import as_nat_lit, nat_lit, napp
from repro.kernel.typecheck import elaborate_term


def _eval_nat(env, text: str):
    """Elaborate and fully simplify a closed nat expression."""
    term = elaborate_term(env, parse_term(text), {})
    return as_nat_lit(simpl(env, term))


class TestArithmetic:
    @given(st.integers(0, 12), st.integers(0, 12))
    def test_add(self, env, a, b):
        assert _eval_nat(env, f"{a} + {b}") == a + b

    @given(st.integers(0, 12), st.integers(0, 12))
    def test_sub_truncated(self, env, a, b):
        assert _eval_nat(env, f"{a} - {b}") == max(0, a - b)

    @given(st.integers(0, 8), st.integers(0, 8))
    def test_mult(self, env, a, b):
        assert _eval_nat(env, f"{a} * {b}") == a * b

    @given(st.integers(0, 10), st.integers(0, 10))
    def test_min_max(self, env, a, b):
        assert _eval_nat(env, f"min {a} {b}") == min(a, b)
        assert _eval_nat(env, f"max {a} {b}") == max(a, b)


def _nat_list(values):
    text = "nil"
    for v in reversed(values):
        text = f"({v} :: {text})"
    return text


class TestLists:
    @given(st.lists(st.integers(0, 5), max_size=5),
           st.lists(st.integers(0, 5), max_size=5))
    def test_app_length(self, env, xs, ys):
        text = f"length ({_nat_list(xs)} ++ {_nat_list(ys)})"
        assert _eval_nat(env, text) == len(xs) + len(ys)

    @given(st.lists(st.integers(0, 5), max_size=5), st.integers(0, 6))
    def test_firstn(self, env, xs, n):
        text = f"length (firstn {n} {_nat_list(xs)})"
        assert _eval_nat(env, text) == min(n, len(xs))

    @given(st.lists(st.integers(0, 5), max_size=5), st.integers(0, 6))
    def test_skipn(self, env, xs, n):
        text = f"length (skipn {n} {_nat_list(xs)})"
        assert _eval_nat(env, text) == max(0, len(xs) - n)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=5),
           st.integers(0, 4), st.integers(0, 5))
    def test_seln_updn(self, env, xs, i, v):
        i = i % len(xs)
        text = f"selN (updN {_nat_list(xs)} {i} {v}) {i} 9"
        assert _eval_nat(env, text) == v

    @given(st.lists(st.integers(0, 9), max_size=6))
    def test_nonzero_addrs(self, env, xs):
        assert _eval_nat(env, f"nonzero_addrs {_nat_list(xs)}") == sum(
            1 for x in xs if x > 0
        )


class TestWhnf:
    def test_head_only(self, env):
        term = elaborate_term(env, parse_term("1 + (1 + 1)"), {})
        result = whnf(env, term)
        # Weak head: outer S exposed, inner addition untouched.
        assert str(result).startswith("S")

    def test_stuck_on_var(self, env):
        from repro.kernel.types import NAT
        term = elaborate_term(env, parse_term("n + 0"), {"n": NAT})
        assert whnf(env, term) == term


class TestUnfold:
    def test_abbreviation(self, env):
        from repro.kernel.types import NAT
        term = elaborate_term(env, parse_term("lt a b"), {"a": NAT, "b": NAT})
        result = unfold(env, term, ["lt"])
        assert str(result) == "S a <= b"

    def test_unfold_missing_name_still_iota_reduces(self, env):
        term = elaborate_term(env, parse_term("0 + 0"), {})
        # unfold normalizes touched positions by beta/iota even when
        # the named constant never occurs.
        assert as_nat_lit(unfold(env, term, ["lt"])) == 0


class TestBudget:
    def test_budget_exhausts_gracefully(self, env):
        term = elaborate_term(env, parse_term("7 * 7"), {})
        result = simpl(env, term, Budget(remaining=5))
        # Partially reduced, but no exception.
        assert result is not None

    def test_roundup2_semantics(self, env):
        for n in range(10):
            term = elaborate_term(env, parse_term(f"roundup2 {n}"), {})
            # roundup2 is an abbreviation: simpl alone keeps it folded
            # (Coq behaviour); delta-unfold first.
            value = as_nat_lit(simpl(env, unfold(env, term, ["roundup2"])))
            assert value == n + (n % 2)
