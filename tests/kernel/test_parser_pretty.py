"""Parser and pretty-printer, including the round-trip property."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.kernel.parser import parse_statement, parse_term, parse_type
from repro.kernel.pretty import pp_term, pp_type
from repro.kernel.subst import alpha_eq
from repro.kernel.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    Forall,
    Impl,
    Or,
    Var,
    app,
    is_neg,
    napp,
    nat_lit,
)
from repro.kernel.types import NAT, PROP, TArrow, TCon, TVar


class TestTermParsing:
    def test_numbers(self):
        assert parse_term("3") == nat_lit(3)

    def test_infix_plus(self):
        assert parse_term("1 + 2") == napp("add", nat_lit(1), nat_lit(2))

    def test_cons_right_assoc(self):
        t = parse_term("a :: b :: l")
        assert t == napp("cons", Var("a"), napp("cons", Var("b"), Var("l")))

    def test_app_binds_tightest(self):
        t = parse_term("f x + g y")
        assert t == napp(
            "add", app(Var("f"), Var("x")), app(Var("g"), Var("y"))
        )

    def test_neg_looser_than_eq(self):
        t = parse_term("~ a = b")
        assert is_neg(t)

    def test_neq_sugar(self):
        assert parse_term("a <> b") == parse_term("~ a = b")

    def test_impl_right_assoc(self):
        t = parse_term("A -> B -> C")
        assert t == Impl(Var("A"), Impl(Var("B"), Var("C")))

    def test_and_tighter_than_or(self):
        t = parse_term("A \\/ B /\\ C")
        assert isinstance(t, Or)
        assert isinstance(t.rhs, And)

    def test_forall_groups(self):
        t = parse_term("forall (x y : nat), x = y")
        assert isinstance(t, Forall)
        assert isinstance(t.body, Forall)
        assert t.ty == NAT

    def test_type_binder_is_type_var(self):
        t = parse_term("forall (T : Type) (x : T), x = x")
        # T produces no term-level binder.
        assert isinstance(t, Forall)
        assert t.var == "x"
        assert t.ty == TVar("T")

    def test_exists(self):
        t = parse_term("exists n, n = 0")
        assert isinstance(t, Exists)

    def test_quantifier_after_connective(self):
        t = parse_term("a = 0 \\/ exists b, a = S b")
        assert isinstance(t, Or)
        assert isinstance(t.rhs, Exists)

    def test_ptsto_tighter_than_star(self):
        t = parse_term("F * a |-> v")
        assert isinstance(t, App)
        assert t.fn == Const("_star")
        assert t.args[1] == napp("ptsto", Var("a"), Var("v"))

    def test_comments_skipped(self):
        assert parse_term("1 (* a (* nested *) comment *) + 2") == parse_term(
            "1 + 2"
        )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("1 + 2 )")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_term("")


class TestTypeParsing:
    def test_arrow(self):
        assert parse_type("nat -> Prop") == TArrow(NAT, PROP)

    def test_applied(self):
        assert parse_type("list nat") == TCon("list", (NAT,))

    def test_nested_parens(self):
        ty = parse_type("list (prod nat nat)")
        assert ty == TCon("list", (TCon("prod", (NAT, NAT)),))

    def test_tvar_resolution(self):
        ty = parse_type("list A", type_vars=("A",))
        assert ty == TCon("list", (TVar("A"),))


class TestRoundTrip:
    STATEMENTS = [
        "forall n, n + 0 = n",
        "forall (T : Type) (l1 l2 : list T) (a : T), "
        "incl l1 (a :: l2) -> ~ In a l1 -> incl l1 l2",
        "forall n m, n <= m \\/ m <= n",
        "forall (l : list nat), nonzero_addrs (l ++ repeat 0 3) = "
        "nonzero_addrs l",
        "forall (p q : pred), p * q =p=> q * p",
        "forall (F : pred) (a : nat) (v : valu), "
        "hoare (F * a |-> v) (PRead a) (F * a |-> v) (F * a |-> v)",
        "exists n, forall m, n <= m",
        "forall a b, a <> b -> (a = b -> False)",
    ]

    @pytest.mark.parametrize("text", STATEMENTS)
    def test_statement_roundtrip(self, env, text):
        term = parse_statement(env, text)
        reparsed = parse_statement(env, pp_term(term))
        assert alpha_eq(term, reparsed)

    def test_type_roundtrip(self):
        for text in ["nat", "list nat", "nat -> nat -> Prop", "(nat -> Prop) -> Prop"]:
            ty = parse_type(text)
            assert parse_type(pp_type(ty)) == ty


@st.composite
def nat_exprs(draw, depth=3):
    if depth == 0:
        return draw(
            st.sampled_from([nat_lit(0), nat_lit(2), Var("x"), Var("y")])
        )
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(nat_exprs(depth=0))
    if kind == 1:
        return napp("S", draw(nat_exprs(depth=depth - 1)))
    op = draw(st.sampled_from(["add", "sub", "mult"]))
    return napp(
        op,
        draw(nat_exprs(depth=depth - 1)),
        draw(nat_exprs(depth=depth - 1)),
    )


@st.composite
def props(draw, depth=2):
    if depth == 0:
        return Eq(None, draw(nat_exprs(1)), draw(nat_exprs(1)))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(props(depth=0))
    if kind == 1:
        return Impl(draw(props(depth - 1)), draw(props(depth - 1)))
    if kind == 2:
        return And(draw(props(depth - 1)), draw(props(depth - 1)))
    if kind == 3:
        return Or(draw(props(depth - 1)), draw(props(depth - 1)))
    return Forall("z", NAT, draw(props(depth - 1)))


_RAW_CONSTS = {"S", "O", "add", "sub", "mult"}


def _resolve_star(term):
    """Raw-parse normalization: resolve ``_star`` and known constants
    (elaboration's job, inlined for the property test)."""
    from repro.kernel.terms import Exists, FalseP, Lam, Meta, TrueP

    if isinstance(term, Const):
        return Const("mult") if term.name == "_star" else term
    if isinstance(term, Var):
        return Const(term.name) if term.name in _RAW_CONSTS else term
    if isinstance(term, (TrueP, FalseP, Meta)):
        return term
    if isinstance(term, App):
        return app(_resolve_star(term.fn), *(map(_resolve_star, term.args)))
    if isinstance(term, (Forall, Exists, Lam)):
        return type(term)(term.var, term.ty, _resolve_star(term.body))
    if isinstance(term, (Impl, And, Or)):
        return type(term)(_resolve_star(term.lhs), _resolve_star(term.rhs))
    if isinstance(term, Eq):
        return Eq(term.ty, _resolve_star(term.lhs), _resolve_star(term.rhs))
    raise AssertionError


class TestRoundTripProperty:
    @given(props())
    def test_pp_parse_alpha_eq(self, term):
        """Printing then parsing is the identity modulo alpha and the
        parser's unresolved ``*`` placeholder."""
        printed = pp_term(term)
        reparsed = _resolve_star(parse_term(printed))
        assert alpha_eq(reparsed, term)
