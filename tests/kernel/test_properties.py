"""Property-based soundness suite for the kernel performance layer.

Random terms exercise the hash-consing, memoization, and fingerprint
machinery against their pristine counterparts: interning preserves
equality, fingerprints agree with the alpha-key oracle, substitution
obeys its composition law, and every memoized function returns the
same value with caches on and off.

Runs in tier-1 with a fixed seed (``derandomize=True``): failures are
reproducible and CI never flakes on an unlucky draw.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.kernel import cache
from repro.kernel.goals import Goal, ProofState, VarDecl
from repro.kernel.subst import (
    alpha_eq,
    alpha_fingerprint,
    alpha_key,
    rename_bound,
    subst_var,
    subst_vars,
)
from repro.kernel.terms import (
    FALSE,
    TRUE,
    And,
    App,
    Const,
    Eq,
    Exists,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Var,
    app,
    free_var_set,
    free_vars,
    intern,
    meta_set,
    metas_of,
    structural_hash,
)
from repro.kernel.types import NAT, TArrow, TVar, fresh_tvar, instantiate_scheme
from repro.kernel.unify import MetaStore

SETTINGS = settings(
    max_examples=60,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

NAMES = ("x", "y", "z", "w")
CONSTS = ("O", "S", "cons", "nil", "f")

_leaves = st.one_of(
    st.sampled_from(NAMES).map(Var),
    st.sampled_from(CONSTS).map(Const),
    st.just(TRUE),
    st.just(FALSE),
    st.integers(min_value=0, max_value=3).map(Meta),
)


def _extend(children):
    binder = st.tuples(st.sampled_from(NAMES), children)
    pair = st.tuples(children, children)
    return st.one_of(
        st.tuples(children, st.lists(children, min_size=1, max_size=2)).map(
            lambda p: app(p[0], *p[1])
        ),
        binder.map(lambda p: Lam(p[0], None, p[1])),
        binder.map(lambda p: Forall(p[0], None, p[1])),
        binder.map(lambda p: Exists(p[0], None, p[1])),
        pair.map(lambda p: Impl(*p)),
        pair.map(lambda p: And(*p)),
        pair.map(lambda p: Or(*p)),
        pair.map(lambda p: Eq(None, *p)),
    )


terms_st = st.recursive(_leaves, _extend, max_leaves=12)
binders_st = terms_st.filter(lambda t: isinstance(t, (Lam, Forall, Exists)))


class TestSubstitution:
    @SETTINGS
    @given(terms_st)
    def test_empty_mapping_is_identity(self, t):
        assert subst_vars(t, {}) is t

    @SETTINGS
    @given(terms_st, st.sampled_from(NAMES))
    def test_self_substitution_is_alpha_identity(self, t, x):
        assert alpha_eq(subst_var(t, x, Var(x)), t)

    @SETTINGS
    @given(terms_st, terms_st, terms_st)
    def test_composition_law(self, t, u, v):
        # t[x:=u][y:=v]  ==  t[x := u[y:=v]]  when y is not free in t
        # besides through x (the standard substitution lemma).
        x, y = "x", "y"
        if y in free_vars(t) - {x}:
            return
        lhs = subst_var(subst_var(t, x, u), y, v)
        rhs = subst_var(t, x, subst_var(u, y, v))
        assert alpha_eq(lhs, rhs)

    @SETTINGS
    @given(terms_st, terms_st)
    def test_same_result_with_caches_off(self, t, u):
        cached = subst_var(t, "x", u)
        with cache.disabled():
            pristine = subst_var(t, "x", u)
        assert cached == pristine


class TestFingerprints:
    @SETTINGS
    @given(terms_st, terms_st)
    def test_fingerprint_agrees_with_alpha_key(self, t1, t2):
        keys_equal = alpha_key(t1) == alpha_key(t2)
        fps_equal = alpha_fingerprint(t1) == alpha_fingerprint(t2)
        assert keys_equal == fps_equal

    @SETTINGS
    @given(binders_st)
    def test_alpha_stability_under_binder_rename(self, t):
        renamed = rename_bound(t, t.var, "fresh_name")
        assert alpha_key(renamed) == alpha_key(t)
        assert alpha_fingerprint(renamed) == alpha_fingerprint(t)

    @SETTINGS
    @given(terms_st)
    def test_same_value_with_caches_off(self, t):
        cached = alpha_fingerprint(t)
        with cache.disabled():
            assert alpha_fingerprint(t) == cached
        assert alpha_key(t) == alpha_key(t)  # memoized path is stable

    @SETTINGS
    @given(terms_st)
    def test_alpha_eq_iff_equal_keys(self, t):
        # Wrapping in two alpha-equivalent binders must not disturb
        # either canonical form (binder names are outside the NAMES
        # pool, so they cannot capture anything free in ``t``).
        a = Forall("b1", None, subst_var(t, "x", Var("b1")))
        b = Forall("b2", None, subst_var(t, "x", Var("b2")))
        assert alpha_eq(a, b)
        assert alpha_key(a) == alpha_key(b)
        assert alpha_fingerprint(a) == alpha_fingerprint(b)


class TestInterning:
    @SETTINGS
    @given(terms_st)
    def test_intern_preserves_equality(self, t):
        assert intern(t) == t
        assert structural_hash(intern(t)) == structural_hash(t)

    @SETTINGS
    @given(terms_st, terms_st)
    def test_intern_identity_iff_structural_equality(self, t1, t2):
        assert (intern(t1) is intern(t2)) == (t1 == t2)

    @SETTINGS
    @given(terms_st)
    def test_derived_sets_match_pristine_walk(self, t):
        assert free_var_set(t) == frozenset(free_vars(t))
        assert meta_set(t) == frozenset(metas_of(t))

    def test_intern_is_identity_when_disabled(self):
        with cache.disabled():
            t = app(Const("f"), Var("x"))
            assert intern(t) is t


class TestArena:
    """The hash-consing arena itself: ids, round-trips, epochs."""

    @SETTINGS
    @given(terms_st)
    def test_intern_extern_round_trip(self, t):
        from repro.kernel.arena import current

        arena = current()
        tid = arena.intern_id(t)
        back = arena.term_of(tid)
        assert back == t
        assert arena.intern_id(back) == tid

    @SETTINGS
    @given(terms_st, terms_st)
    def test_id_equality_iff_structural_equality(self, t1, t2):
        from repro.kernel.arena import current

        arena = current()
        assert (arena.intern_id(t1) == arena.intern_id(t2)) == (t1 == t2)

    @SETTINGS
    @given(terms_st)
    def test_derived_arrays_match_object_walk(self, t):
        from repro.kernel.arena import current

        arena = current()
        tid = arena.intern_id(t)
        assert arena.fvs_of(tid) == free_var_set(t)
        assert arena.metas_of(tid) == meta_set(t)
        assert arena.hash_of(tid) == structural_hash(t)
        assert arena.alpha_fp_of(tid) == alpha_fingerprint(t)

    @SETTINGS
    @given(terms_st)
    def test_fingerprint_stable_across_arena_epochs(self, t):
        from repro.kernel.arena import current

        before = alpha_fingerprint(t)
        cache.clear_caches()  # retire the arena generation
        arena = current()
        assert arena.generation == cache.intern_epoch()
        assert alpha_fingerprint(t) == before

    def test_interning_tracks_the_live_generation(self):
        from repro.kernel.arena import current

        t = app(Const("f"), Var("x"), Var("y"))
        first = intern(t)
        cache.clear_caches()
        second = intern(t)
        # Fresh generation: a fresh canonical object, same structure.
        assert second == first
        assert current().generation == cache.intern_epoch()


class TestStateKeyTVarInvariance:
    """Regression: goal keys must not depend on the global fresh-tvar
    counter (PR 1's ``?A<n>`` load-mode sensitivity)."""

    @staticmethod
    def _make_state():
        # instantiate_scheme allocates ?A<n>/?B<n> names from the
        # global counter; a checked corpus load advances that counter
        # far beyond an unchecked load's position.
        ty = instantiate_scheme(TArrow(TVar("A"), TVar("B")))
        goal = Goal(
            (VarDecl("f", ty), VarDecl("n", NAT)),
            Eq(None, Var("n"), Var("n")),
        )
        return ProofState((goal,), MetaStore())

    def test_keys_invariant_under_counter_offsets(self):
        first = self._make_state()
        for _ in range(100):  # simulate a proof-replaying load
            fresh_tvar()
        second = self._make_state()
        assert first.key() == second.key()
        assert first.fingerprint() == second.fingerprint()

    def test_distinct_tvar_structure_still_distinguishes(self):
        shared = instantiate_scheme(TVar("A"))
        linked = Goal(
            (VarDecl("a", shared), VarDecl("b", shared)), TRUE
        )
        separate = Goal(
            (
                VarDecl("a", instantiate_scheme(TVar("A"))),
                VarDecl("b", instantiate_scheme(TVar("A"))),
            ),
            TRUE,
        )
        store = MetaStore()
        assert linked.key(store) != separate.key(store)
        assert linked.fingerprint(store) != separate.fingerprint(store)

    def test_named_signature_tvars_not_renamed(self):
        # Only inference-generated '?' variables are canonicalized;
        # source-level polymorphic names stay distinguishable.
        g1 = Goal((VarDecl("a", TVar("A")),), TRUE)
        g2 = Goal((VarDecl("a", TVar("B")),), TRUE)
        store = MetaStore()
        assert g1.key(store) != g2.key(store)
        assert g1.fingerprint(store) != g2.fingerprint(store)
