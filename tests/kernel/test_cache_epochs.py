"""Cache pinning: ``clear_caches`` defers while a search holds a pin.

The regression this pins down: under the thread backend (or the
prover service), one task finishing used to call ``clear_caches`` and
bump the intern epoch while another search was mid-flight, evicting
its live memo entries and invalidating every ``_interned`` stamp it
held.  With pinning, the clear is deferred (and coalesced) until the
last concurrent search releases its pin; with no pins the behaviour
is byte-for-byte the old serial one — an immediate clear.
"""

from __future__ import annotations

import threading

from repro.kernel import cache
from repro.kernel.parser import parse_statement
from repro.kernel.terms import intern


class TestSerialSemantics:
    def test_clear_is_immediate_without_pins(self):
        before = cache.intern_epoch()
        cache.clear_caches()
        assert cache.intern_epoch() == before + 1
        assert not cache.clear_pending()

    def test_pin_count_is_zero_at_rest(self):
        assert cache.pin_count() == 0


class TestDeferredClear:
    def test_clear_defers_until_the_pin_releases(self):
        before = cache.intern_epoch()
        with cache.pinned():
            assert cache.pin_count() == 1
            cache.clear_caches()
            # Deferred: the epoch a pinned search relies on is intact.
            assert cache.intern_epoch() == before
            assert cache.clear_pending()
        # The pending clear ran exactly once on release.
        assert cache.intern_epoch() == before + 1
        assert not cache.clear_pending()

    def test_concurrent_clears_coalesce_into_one(self):
        before = cache.intern_epoch()
        with cache.pinned():
            for _ in range(5):
                cache.clear_caches()
        assert cache.intern_epoch() == before + 1

    def test_nested_pins_defer_until_the_last_release(self):
        before = cache.intern_epoch()
        with cache.pinned():
            with cache.pinned():
                cache.clear_caches()
                assert cache.pin_count() == 2
            # Inner released; the outer pin still guards the epoch.
            assert cache.intern_epoch() == before
            assert cache.clear_pending()
        assert cache.intern_epoch() == before + 1

    def test_no_spurious_clear_without_a_request(self):
        before = cache.intern_epoch()
        with cache.pinned():
            pass
        assert cache.intern_epoch() == before


class TestArenaGenerations:
    def test_pinned_clear_cannot_orphan_arena_ids(self, env):
        """A deferred clear must not retire the arena mid-search: ids
        handed out under the pin stay resolvable until release."""
        from repro.kernel import arena
        from repro.kernel.terms import term_of

        cache.clear_caches()
        with cache.pinned():
            live = arena.current()
            term = intern(parse_statement(env, "forall n : nat, n + 0 = n"))
            tid = term.__dict__["_aid"]
            assert term.__dict__["_agen"] == live.generation

            other = threading.Thread(target=cache.clear_caches)
            other.start()
            other.join()

            # The bump is pending, so the arena singleton is unswapped
            # and every id minted above still resolves to its term.
            assert arena.current() is live
            assert term_of(tid) is term
        # Pin released: the generation moves with the epoch and fresh
        # interning mints ids in the new arena.
        fresh = arena.current()
        assert fresh is not live
        assert fresh.generation == cache.intern_epoch()
        again = intern(term)
        assert again == term
        assert again.__dict__["_agen"] == fresh.generation

    def test_generation_follows_epoch_without_pins(self):
        from repro.kernel import arena

        before = arena.current().generation
        cache.clear_caches()
        assert arena.current().generation == before + 1
        assert arena.current().generation == cache.intern_epoch()


class TestInterleavedSearches:
    def test_interned_terms_survive_a_concurrent_tasks_clear(self, env):
        """Two interleaved searches: task B finishing (clear_caches)
        must not invalidate task A's live interned terms."""
        cache.clear_caches()  # fresh epoch for the scenario
        with cache.pinned():  # task A mid-search
            term = intern(parse_statement(env, "forall n : nat, n + 0 = n"))
            epoch = cache.intern_epoch()
            assert term.__dict__.get("_interned") == epoch

            # Task B finishes on another thread and issues its
            # per-task clear.
            other = threading.Thread(target=cache.clear_caches)
            other.start()
            other.join()

            # Task A's world is untouched: same epoch, stamp valid,
            # and re-interning is the identity (no wholesale rebuild).
            assert cache.intern_epoch() == epoch
            assert term.__dict__.get("_interned") == epoch
            assert intern(term) is term
        # Only after A releases does B's deferred clear land.
        assert cache.intern_epoch() == epoch + 1
        assert term.__dict__.get("_interned") != cache.intern_epoch()

    def test_runner_pins_the_whole_task(self, project):
        """The eval runner holds a pin for the duration of a task, so
        a concurrent clear cannot land mid-search."""
        from repro.eval.config import ExperimentConfig
        from repro.eval.runner import Runner
        from repro.eval.tasks import TheoremTask

        pin_seen = []
        original = cache.pinned

        runner = Runner(project, ExperimentConfig())
        task = TheoremTask(
            theorem=min(
                project.theorems, key=lambda t: t.proof_tokens
            ).name,
            model="gpt-4o-mini",
            hinted=False,
            fuel=4,
        )

        class SpyPinned:
            def __enter__(self):
                self._ctx = original()
                self._ctx.__enter__()
                pin_seen.append(cache.pin_count())
                return self

            def __exit__(self, *exc):
                return self._ctx.__exit__(*exc)

        # execute_task imports the cache module locally, so patching
        # the module attribute is seen at call time.
        saved = cache.pinned
        cache.pinned = SpyPinned
        try:
            runner.execute_task(task)
        finally:
            cache.pinned = saved
        assert pin_seen and pin_seen[0] >= 1
