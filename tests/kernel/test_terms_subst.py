"""Terms, substitution, and alpha-equivalence."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.subst import alpha_eq, alpha_key, fresh_name, subst_var
from repro.kernel.terms import (
    And,
    App,
    Const,
    Eq,
    FALSE,
    Forall,
    Impl,
    Or,
    Var,
    app,
    as_nat_lit,
    free_vars,
    head_const,
    impl_chain,
    is_neg,
    nat_lit,
    neg,
    neg_body,
    strip_foralls,
    strip_impls,
    subterms,
)
from repro.kernel.types import NAT


class TestNumerals:
    @given(st.integers(0, 60))
    def test_nat_lit_roundtrip(self, n):
        assert as_nat_lit(nat_lit(n)) == n

    def test_not_a_literal(self):
        assert as_nat_lit(Var("x")) is None
        assert as_nat_lit(app(Const("S"), Var("x"))) is None

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            nat_lit(-1)


class TestNeg:
    def test_roundtrip(self):
        p = Var("P")
        assert is_neg(neg(p))
        assert neg_body(neg(p)) == p

    def test_plain_impl_is_not_neg(self):
        assert not is_neg(Impl(Var("P"), Var("Q")))


class TestChains:
    def test_impl_chain(self):
        t = impl_chain((Var("A"), Var("B")), Var("C"))
        premises, concl = strip_impls(t)
        assert premises == (Var("A"), Var("B"))
        assert concl == Var("C")

    def test_strip_foralls(self):
        t = Forall("x", NAT, Forall("y", NAT, Var("x")))
        binders, body = strip_foralls(t)
        assert [name for name, _ in binders] == ["x", "y"]
        assert body == Var("x")


class TestFreeVars:
    def test_binder_shadows(self):
        t = Forall("x", NAT, app(Const("f"), Var("x"), Var("y")))
        assert free_vars(t) == {"y"}

    def test_app_flattening(self):
        t = app(app(Const("f"), Var("x")), Var("y"))
        assert isinstance(t, App)
        assert t.args == (Var("x"), Var("y"))

    def test_head_const(self):
        assert head_const(app(Const("f"), Var("x"))) == "f"
        assert head_const(Const("c")) == "c"
        assert head_const(Var("x")) is None


class TestSubstitution:
    def test_basic(self):
        t = app(Const("f"), Var("x"))
        assert subst_var(t, "x", nat_lit(0)) == app(Const("f"), nat_lit(0))

    def test_no_capture(self):
        # (forall y, x = y)[x := y]  must rename the binder.
        t = Forall("y", NAT, Eq(NAT, Var("x"), Var("y")))
        result = subst_var(t, "x", Var("y"))
        assert isinstance(result, Forall)
        assert result.var != "y"
        assert free_vars(result) == {"y"}

    def test_shadowed_not_substituted(self):
        t = Forall("x", NAT, Var("x"))
        assert subst_var(t, "x", nat_lit(3)) == t


class TestAlpha:
    def test_alpha_eq_renamed(self):
        t1 = Forall("x", NAT, Eq(NAT, Var("x"), Var("x")))
        t2 = Forall("z", NAT, Eq(NAT, Var("z"), Var("z")))
        assert alpha_eq(t1, t2)
        assert alpha_key(t1) == alpha_key(t2)

    def test_alpha_neq_free(self):
        assert not alpha_eq(Var("x"), Var("y"))

    def test_shadowing_depth(self):
        # forall x, forall x, x  ==  forall a, forall b, b
        t1 = Forall("x", NAT, Forall("x", NAT, Var("x")))
        t2 = Forall("a", NAT, Forall("b", NAT, Var("b")))
        t3 = Forall("a", NAT, Forall("b", NAT, Var("a")))
        assert alpha_eq(t1, t2)
        assert not alpha_eq(t1, t3)
        assert alpha_key(t1) == alpha_key(t2)
        assert alpha_key(t1) != alpha_key(t3)

    def test_connectives_distinguished(self):
        a, b = Var("a"), Var("b")
        assert alpha_key(And(a, b)) != alpha_key(Or(a, b))
        assert alpha_key(And(a, b)) != alpha_key(Impl(a, b))


class TestFreshName:
    def test_not_taken(self):
        assert fresh_name("x", set()) == "x"

    def test_increments(self):
        assert fresh_name("x", {"x"}) == "x0"
        assert fresh_name("x", {"x", "x0"}) == "x1"


class TestSubterms:
    def test_counts(self):
        t = Eq(NAT, app(Const("f"), Var("x")), Var("y"))
        names = [s for s in subterms(t)]
        assert Var("x") in names
        assert Var("y") in names
        assert Const("f") in names
