"""Unit tests for the kernel type language."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnificationError
from repro.kernel.types import (
    NAT,
    PROP,
    TArrow,
    TCon,
    TVar,
    apply_tsubst,
    arrows,
    instantiate_scheme,
    tlist,
    tprod,
    type_vars,
    unify_types,
)


class TestConstruction:
    def test_arrows_right_assoc(self):
        ty = arrows(NAT, NAT, PROP)
        assert ty == TArrow(NAT, TArrow(NAT, PROP))

    def test_arrows_single(self):
        assert arrows(NAT) == NAT

    def test_arrows_empty_rejected(self):
        with pytest.raises(ValueError):
            arrows()

    def test_tlist(self):
        assert tlist(NAT) == TCon("list", (NAT,))

    def test_str_nested(self):
        assert str(tlist(tprod(NAT, NAT))) == "list (prod nat nat)"

    def test_str_arrow_domain_parens(self):
        ty = TArrow(TArrow(TVar("A"), PROP), PROP)
        assert str(ty) == "(A -> Prop) -> Prop"


class TestTypeVars:
    def test_collects_all(self):
        ty = arrows(TVar("A"), tlist(TVar("B")), TVar("A"))
        assert set(type_vars(ty)) == {"A", "B"}

    def test_instantiate_scheme_freshens(self):
        ty = arrows(TVar("A"), TVar("A"))
        inst = instantiate_scheme(ty)
        assert isinstance(inst, TArrow)
        assert inst.dom == inst.cod  # same variable stays shared
        assert inst.dom != TVar("A")  # but is fresh


class TestUnification:
    def test_unify_var(self):
        subst = unify_types(TVar("A"), NAT)
        assert apply_tsubst(subst, TVar("A")) == NAT

    def test_unify_nested(self):
        subst = unify_types(tlist(TVar("A")), tlist(NAT))
        assert apply_tsubst(subst, TVar("A")) == NAT

    def test_unify_arrow(self):
        subst = unify_types(
            TArrow(TVar("A"), TVar("B")), TArrow(NAT, PROP)
        )
        assert apply_tsubst(subst, TVar("A")) == NAT
        assert apply_tsubst(subst, TVar("B")) == PROP

    def test_clash(self):
        with pytest.raises(UnificationError):
            unify_types(NAT, PROP)

    def test_occurs_check(self):
        with pytest.raises(UnificationError):
            unify_types(TVar("A"), tlist(TVar("A")))

    def test_failure_preserves_input_subst(self):
        subst = {"B": NAT}
        with pytest.raises(UnificationError):
            unify_types(NAT, PROP, subst)
        assert subst == {"B": NAT}


@st.composite
def simple_types(draw, depth=2):
    if depth == 0:
        return draw(
            st.sampled_from([NAT, PROP, TCon("bool"), TVar("A"), TVar("B")])
        )
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return draw(simple_types(depth=0))
    if kind == 1:
        return tlist(draw(simple_types(depth=depth - 1)))
    return TArrow(
        draw(simple_types(depth=depth - 1)),
        draw(simple_types(depth=depth - 1)),
    )


class TestProperties:
    @given(simple_types())
    def test_unify_reflexive(self, ty):
        # Any type unifies with itself without constraining anything new
        # beyond identity.
        subst = unify_types(ty, ty)
        assert apply_tsubst(subst, ty) == apply_tsubst(subst, ty)

    @given(simple_types(), simple_types())
    def test_unify_symmetric(self, t1, t2):
        try:
            s1 = unify_types(t1, t2)
        except UnificationError:
            with pytest.raises(UnificationError):
                unify_types(t2, t1)
            return
        s2 = unify_types(t2, t1)
        assert apply_tsubst(s1, t1) == apply_tsubst(s1, t2)
        assert apply_tsubst(s2, t1) == apply_tsubst(s2, t2)
