"""Execution backends: determinism across serial/thread/process."""

import pytest

from repro.eval import (
    ExperimentConfig,
    Metrics,
    ProcessPoolExecutor,
    Runner,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
    sweep_tasks,
)

CONFIG = ExperimentConfig(max_theorems=6, fuel=16)


@pytest.fixture(scope="module")
def runner(project):
    return Runner(project, CONFIG)


@pytest.fixture(scope="module")
def tasks(runner):
    """One hinted sweep (hints exercise the split-dependent prompt path)."""
    theorems = runner.theorems_for("gpt-4o-mini")
    return sweep_tasks(theorems, "gpt-4o-mini", True, CONFIG)


@pytest.fixture(scope="module")
def serial_records(runner, tasks):
    return runner.run_tasks(tasks, executor=SerialExecutor())


class TestDeterminism:
    def test_thread_matches_serial(self, runner, tasks, serial_records):
        threaded = runner.run_tasks(tasks, executor=ThreadPoolExecutor(jobs=4))
        assert threaded == serial_records

    def test_process_matches_serial(self, runner, tasks, serial_records):
        # Workers rebuild Project/Runner once each from CONFIG alone;
        # identical records prove the whole pipeline is a pure function
        # of the task fields (the acceptance criterion).
        processed = runner.run_tasks(
            tasks, executor=ProcessPoolExecutor(CONFIG, jobs=2)
        )
        assert processed == serial_records

    def test_full_run_equivalence(self, project, serial_records):
        # Runner.run over the executor engine == flat record list.
        fresh_runner = Runner(project, CONFIG)
        run = fresh_runner.run("gpt-4o-mini", True)
        from repro.eval import record_from_outcome

        assert [record_from_outcome(o) for o in run.outcomes] == serial_records

    def test_results_arrive_in_task_order(self, runner, tasks):
        records = runner.run_tasks(tasks, executor=ThreadPoolExecutor(jobs=3))
        assert [r.theorem for r in records] == [t.theorem for t in tasks]

    def test_process_workers_mirror_parent_load_mode(self, project):
        # Regression test: proof replay at load advances the kernel's
        # global fresh-tvar counter, so a project loaded with
        # check_proofs=False parses later lemma statements with
        # different ?A<n> names than a checked load.  Those names reach
        # prompts and reseed generation, so these theorems' outcomes
        # differ between the two load modes.  Process workers must
        # therefore reload with the parent's mode — with the old
        # hardcoded check_proofs=False worker load, this test fails
        # (e.g. map_fst_pair_repeat flips stuck/proved).
        sensitive = [
            "Forall_forall_in",
            "NoDup_cons_inv",
            "map_fst_pair_repeat",
            "snd_pair",
        ]
        config = ExperimentConfig(fuel=16, executor="process", jobs=2)
        run_tasks = sweep_tasks(sensitive, "gpt-4o-mini", False, config)
        run_tasks += sweep_tasks(sensitive, "gpt-4o-mini", True, config)
        reference = Runner(project, config).run_tasks(
            run_tasks, executor=SerialExecutor()
        )
        # No explicit executor: run_tasks builds the process backend
        # itself, which must propagate project.check_proofs to workers.
        assert project.check_proofs is True
        processed = Runner(project, config).run_tasks(run_tasks)
        assert processed == reference


class TestMakeExecutor:
    def test_selects_backend_from_config(self):
        assert make_executor(ExperimentConfig()).kind == "serial"
        thread = make_executor(ExperimentConfig(executor="thread", jobs=3))
        assert thread.kind == "thread" and thread.jobs == 3
        process = make_executor(ExperimentConfig(executor="process", jobs=2))
        assert process.kind == "process" and process.jobs == 2

    def test_overrides_win(self):
        ex = make_executor(ExperimentConfig(), backend="thread", jobs=5)
        assert ex.kind == "thread" and ex.jobs == 5

    def test_check_proofs_reaches_process_backend(self):
        fast = make_executor(
            ExperimentConfig(executor="process"), check_proofs=False
        )
        assert fast.check_proofs is False
        checked = make_executor(ExperimentConfig(executor="process"))
        assert checked.check_proofs is True

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor(ExperimentConfig(executor="gpu"))

    def test_empty_task_list_is_a_noop(self):
        assert list(ThreadPoolExecutor(2).map([], lambda t: t)) == []
        assert list(ProcessPoolExecutor(CONFIG, 2).map([])) == []


class TestInstrumentation:
    def test_stages_populated(self, runner, tasks, serial_records):
        # serial_records ran through `runner`; the sweep-level sink
        # holds merged per-task stage timings and verdict counts.
        snapshot = runner.metrics.snapshot()
        assert snapshot["stages"]["generation"]["calls"] > 0
        assert snapshot["stages"]["prompt_build"]["calls"] > 0
        assert snapshot["stages"]["checking"]["calls"] > 0
        histogram = runner.metrics.verdict_histogram()
        assert sum(histogram.values()) == snapshot["stages"]["checking"]["calls"]

    def test_merge_accumulates(self):
        a = Metrics()
        a.incr("verdict.valid", 2)
        a.add_time("generation", 0.5, calls=3)
        b = Metrics()
        b.merge(a.snapshot())
        b.merge(a.snapshot())
        snap = b.snapshot()
        assert snap["counters"]["verdict.valid"] == 4
        assert snap["stages"]["generation"] == {"seconds": 1.0, "calls": 6}
