"""The Figure-2 case-study module and its curated dependencies."""

import pytest

from repro.eval.cases import CASE_DEPENDENCIES, CASE_LEMMAS, render_case
from repro.eval.cases import CaseStudy


class TestCaseConfiguration:
    def test_case_lemmas_exist(self, project):
        for lemma_name, _model in CASE_LEMMAS:
            assert project.theorem(lemma_name) is not None

    def test_dependencies_exist_and_precede(self, project):
        """Every curated dependency is a real, *earlier* declaration."""
        for lemma_name, deps in CASE_DEPENDENCIES.items():
            theorem = project.theorem(lemma_name)
            env = project.env_for(theorem)
            for dep in deps:
                visible = (
                    env.statement_of(dep) is not None
                    or dep in env.signature
                    or dep in env.preds
                    or dep in env.inductives
                    or dep in env.abbreviations
                    or dep in env.fixpoints
                )
                assert visible, f"{lemma_name}: dependency {dep} not visible"

    def test_models_are_paper_models(self):
        from repro.llm import PROFILES

        for _lemma, model in CASE_LEMMAS:
            assert model in PROFILES


class TestRenderCase:
    def test_render_success(self):
        study = CaseStudy(
            lemma="l",
            model="m",
            statement="0 = 0",
            human_proof="reflexivity.",
            human_tokens=3,
            generated_proof="auto.",
            generated_tokens=2,
            similarity=0.5,
            proved=True,
        )
        text = render_case(study)
        assert "human proof (3 tokens)" in text
        assert "generated proof (2 tokens" in text

    def test_render_failure(self):
        study = CaseStudy(
            lemma="l",
            model="m",
            statement="0 = 0",
            human_proof="reflexivity.",
            human_tokens=3,
            generated_proof=None,
            generated_tokens=None,
            similarity=None,
            proved=False,
        )
        assert "search failed" in render_case(study)
