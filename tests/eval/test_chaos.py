"""Chaos acceptance tests: the fault-tolerance layer's contract.

Two load-bearing guarantees (the PR's acceptance criteria):

1. **Transient invisibility** — a sweep whose faults are all transient
   (retryable model errors that resolve within the retry budget)
   produces *byte-identical* store files to a fault-free sweep.  The
   resilient wrapper absorbs the chaos; the science is unchanged.
2. **Crash containment** — a sweep whose fault plan permanently kills
   the workers of specific tasks still *completes*, recording exactly
   those tasks as CRASH and every other task's normal outcome.

These run the real engine end to end (real corpus, real kernel, real
searches) on a small slice, so they also serve as integration tests
for the Runner -> ResilientGenerator -> FaultyGenerator wiring and the
process backend's isolation-retry path.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutorSetupError
from repro.eval import (
    ExperimentConfig,
    ProcessPoolExecutor,
    Runner,
    RunStore,
    SerialExecutor,
    sweep_tasks,
)

# Small but non-trivial slice: a few theorems, enough fuel for real
# searches, every run well under a minute.
N_THEOREMS = 4
FUEL = 8

# Transient-only plan: every fault kind the resilient wrapper must
# absorb, with max_failures (2) strictly below the wrapper's retry
# budget (RetryPolicy.max_attempts = 4) so no prompt can exhaust it.
TRANSIENT_FAULTS = (
    "seed=7,transient=0.15,ratelimit=0.10,malformed=0.10,truncate=0.05,"
    "max_failures=2"
)


def _config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(max_theorems=N_THEOREMS, fuel=FUEL, **overrides)


def _sweep(project, config, store_path, executor=None):
    runner = Runner(project, config)
    theorems = runner.theorems_for("gpt-4o-mini")
    tasks = sweep_tasks(theorems, "gpt-4o-mini", False, config)
    store = RunStore(store_path)
    records = runner.run_tasks(
        tasks, executor=executor or SerialExecutor(), store=store
    )
    return runner, tasks, records


class TestTransientInvisibility:
    def test_transient_fault_sweep_is_byte_identical(self, project, tmp_path):
        _, _, clean_records = _sweep(
            project, _config(), tmp_path / "clean.jsonl"
        )
        chaos_runner, _, chaos_records = _sweep(
            project,
            _config(faults=TRANSIENT_FAULTS),
            tmp_path / "chaos.jsonl",
        )
        # The chaos sweep really did hit injected faults and retried
        # through them — otherwise this test certifies nothing.
        assert chaos_runner.metrics.counter("llm.retries") > 0
        # Same records, and byte-identical store files: same keys,
        # same task payloads, same outcomes, same checksums, same order.
        assert chaos_records == clean_records
        assert (tmp_path / "chaos.jsonl").read_bytes() == (
            tmp_path / "clean.jsonl"
        ).read_bytes()

    def test_resilient_wrapper_off_exposes_faults(self, project, tmp_path):
        # Control experiment: with the retry layer disabled the same
        # injected faults surface as errors, proving invisibility above
        # comes from the wrapper, not from the plan being a no-op.
        from repro.errors import TransientModelError

        with pytest.raises(TransientModelError):
            _sweep(
                project,
                _config(faults=TRANSIENT_FAULTS, resilient=False),
                tmp_path / "bare.jsonl",
            )


class TestCrashContainment:
    @pytest.fixture(scope="class")
    def reference(self, project, tmp_path_factory):
        _, tasks, records = _sweep(
            project,
            _config(),
            tmp_path_factory.mktemp("chaos-ref") / "ref.jsonl",
        )
        return tasks, records

    def test_permanent_kill_yields_exactly_that_crash(
        self, project, tmp_path, reference
    ):
        tasks, clean_records = reference
        victim = tasks[1].theorem
        config = _config(faults=f"kill={victim}", task_retries=1)
        executor = ProcessPoolExecutor(config, jobs=2)
        runner, _, records = _sweep(
            project, config, tmp_path / "kill.jsonl", executor=executor
        )
        # The sweep completed: one record per task, in task order.
        assert [r.theorem for r in records] == [t.theorem for t in tasks]
        # Exactly the killed task is CRASH; everyone else's outcome is
        # untouched by sharing a pool with the killer.
        statuses = {r.theorem: r.status for r in records}
        assert statuses[victim] == "crash"
        for record, clean in zip(records, clean_records):
            if record.theorem == victim:
                assert record.queries == 0
            else:
                assert record == clean
        assert runner.metrics.counter("tasks.crashed") == 1
        assert runner.metrics.counter("executor.worker_deaths") >= 2

    def test_first_attempt_crashes_are_invisible(
        self, project, tmp_path, reference
    ):
        # crash=1.0 kills every task's first attempt; the isolated
        # retry (attempt 1) runs clean, so outcomes match fault-free.
        _, clean_records = reference
        config = _config(faults="crash=1.0", task_retries=2)
        executor = ProcessPoolExecutor(config, jobs=2)
        _, _, records = _sweep(
            project, config, tmp_path / "crashy.jsonl", executor=executor
        )
        assert records == clean_records


class TestWorkerInitFailure:
    def test_init_failure_is_actionable_not_a_hang(self, project):
        config = _config(faults="initfail=1")
        runner = Runner(project, config)
        theorems = runner.theorems_for("gpt-4o-mini")
        tasks = sweep_tasks(theorems, "gpt-4o-mini", False, config)
        executor = ProcessPoolExecutor(config, jobs=2)
        with pytest.raises(ExecutorSetupError, match="--backend thread"):
            list(executor.map(tasks, None))
