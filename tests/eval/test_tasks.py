"""TheoremTask descriptors and cache-key stability."""

import pytest

from repro.eval import ExperimentConfig
from repro.eval.tasks import TheoremTask, sweep_tasks

BASE = dict(
    theorem="plus_0_l",
    model="gpt-4o",
    hinted=True,
    width=8,
    fuel=128,
    tactic_timeout=5.0,
    frontier="best-first",
    dedup_states=True,
    max_depth=64,
    seed=20250514,
    hint_fraction=0.5,
)


class TestCacheKey:
    def test_equal_content_equal_key(self):
        assert TheoremTask(**BASE).cache_key() == TheoremTask(**BASE).cache_key()

    def test_key_is_hex_sha256(self):
        key = TheoremTask(**BASE).cache_key()
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_golden_key(self):
        # Pins the hashed payload's shape: breaking this means old run
        # stores silently stop matching — bump CACHE_KEY_VERSION and
        # update the literal *deliberately*.
        # v3: repair_rounds and attempt joined the payload.
        assert TheoremTask(**BASE).cache_key() == (
            "8c73efca4735ea801f7590204249ce3582923432605d919976c15e895147c416"
        )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("theorem", "plus_0_r"),
            ("model", "gpt-4o-mini"),
            ("hinted", False),
            ("width", 4),
            ("fuel", 64),
            ("tactic_timeout", 2.0),
            ("frontier", "depth-first"),
            ("dedup_states", False),
            ("max_depth", 32),
            ("seed", 7),
            ("hint_fraction", 0.25),
            ("reduced_dependencies", ("In", "in_eq")),
            ("theorem_deadline", 30.0),
            ("repair_rounds", 2),
            ("attempt", 1),
        ],
    )
    def test_every_field_is_outcome_relevant(self, field, value):
        base = TheoremTask(**BASE)
        changed = TheoremTask(**{**BASE, field: value})
        assert base.cache_key() != changed.cache_key()

    def test_key_survives_pickling(self):
        import pickle

        task = TheoremTask(**BASE)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.cache_key() == task.cache_key()


class TestFromConfig:
    def test_mirrors_config(self):
        config = ExperimentConfig(width=4, fuel=32, tactic_timeout=1.5)
        task = TheoremTask.from_config("rev_involutive", "gpt-4o", False, config)
        assert task.width == 4
        assert task.fuel == 32
        assert task.tactic_timeout == 1.5
        assert task.seed == config.seed
        assert task.hint_fraction == config.hint_fraction
        sc = task.search_config()
        assert sc.width == 4 and sc.fuel == 32 and sc.tactic_timeout == 1.5

    def test_reduced_dependencies_normalised_to_tuple(self):
        config = ExperimentConfig()
        task = TheoremTask.from_config(
            "in_cons", "gpt-4o-mini", False, config,
            reduced_dependencies=["In", "in_eq"],
        )
        assert task.reduced_dependencies == ("In", "in_eq")

    def test_sweep_tasks_accepts_theorems_and_names(self, project):
        config = ExperimentConfig()
        theorems = project.theorems[:3]
        from_objects = sweep_tasks(theorems, "gpt-4o", True, config)
        from_names = sweep_tasks(
            [t.name for t in theorems], "gpt-4o", True, config
        )
        assert from_objects == from_names
        assert [t.theorem for t in from_objects] == [t.name for t in theorems]
