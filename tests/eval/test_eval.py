"""The evaluation layer: similarity, coverage, tables, runner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Status
from repro.corpus.model import Theorem
from repro.eval import (
    ExperimentConfig,
    Runner,
    category_table,
    coverage_by_bin,
    coverage_under,
    levenshtein,
    normalized_similarity,
    outcome_row,
    overall_coverage,
    random_pair_baseline,
    render_figure1,
    render_table1,
    render_table2,
    table2_rows,
)
from repro.eval.runner import EvalRun, TheoremOutcome


class TestLevenshtein:
    def test_known_distance(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3

    @given(st.text(max_size=18), st.text(max_size=18))
    @settings(max_examples=60)
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=12), st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=18), st.text(max_size=18))
    @settings(max_examples=60)
    def test_similarity_in_unit_interval(self, a, b):
        sim = normalized_similarity(a, b)
        assert 0.0 <= sim <= 1.0

    def test_exact_match_is_one(self):
        assert normalized_similarity("intros. auto.", "intros.  auto.") == 1.0

    def test_random_baseline_between_0_and_1(self, project):
        proofs = [t.proof_text for t in project.theorems[:40]]
        baseline = random_pair_baseline(proofs, pairs=50)
        assert 0.0 < baseline < 1.0


def _fake_outcome(tokens, category, proved, status=None):
    theorem = Theorem(
        name=f"t{tokens}_{category}_{proved}",
        file="F",
        category=category,
        index=0,
        statement_text="s",
        proof_text="p",
        proof_tokens=tokens,
    )
    return TheoremOutcome(
        theorem=theorem,
        model="m",
        hinted=False,
        status=status or (Status.PROVED if proved else Status.STUCK),
        queries=1,
        revalidated=proved,
        similarity=0.5 if proved else None,
        length_ratio=1.0 if proved else None,
    )


class TestCoverage:
    def test_bins(self):
        outcomes = [
            _fake_outcome(10, "Utilities", True),
            _fake_outcome(10, "Utilities", False),
            _fake_outcome(600, "CHL", False),
        ]
        bins = coverage_by_bin(outcomes)
        assert bins[0].total == 2 and bins[0].proved == 1
        assert bins[6].total == 1 and bins[6].coverage == 0.0
        assert overall_coverage(outcomes) == pytest.approx(1 / 3)
        assert coverage_under(outcomes, 64) == pytest.approx(0.5)

    def test_expected_vs_actual(self):
        outcomes = [
            _fake_outcome(10, "Utilities", True),
            _fake_outcome(10, "Utilities", True),
            _fake_outcome(10, "FileSystem", False),
            _fake_outcome(10, "FileSystem", False),
        ]
        rows = {r.category: r for r in category_table(outcomes)}
        # Same-bin theorems: expected coverage equalizes at 0.5.
        assert rows["Utilities"].actual == 1.0
        assert rows["Utilities"].expected == pytest.approx(0.5)
        assert rows["FileSystem"].actual == 0.0
        assert rows["FileSystem"].expected == pytest.approx(0.5)


class TestTables:
    def test_outcome_row(self):
        run = EvalRun(
            model="m",
            hinted=False,
            outcomes=[
                _fake_outcome(10, "CHL", True),
                _fake_outcome(10, "CHL", False, Status.STUCK),
                _fake_outcome(10, "CHL", False, Status.FUELOUT),
            ],
        )
        row = outcome_row(run)
        assert row.proved == pytest.approx(1 / 3)
        assert row.stuck == pytest.approx(1 / 3)
        assert row.fuelout == pytest.approx(1 / 3)
        assert row.similarity == 0.5

    def test_table2_pairs_runs(self):
        vanilla = EvalRun("m", False, [_fake_outcome(10, "CHL", False)])
        hinted = EvalRun("m", True, [_fake_outcome(10, "CHL", True)])
        rows = table2_rows([vanilla, hinted])
        assert len(rows) == 1
        assert rows[0]["proved"] == (0.0, 1.0)

    def test_renderers_produce_text(self):
        outcomes = [_fake_outcome(10, "Utilities", True)]
        fig = render_figure1({"m": coverage_by_bin(outcomes)})
        assert "<=16" in fig
        t1 = render_table1({"m": category_table(outcomes)})
        assert "Utilities" in t1
        vanilla = EvalRun("m", False, outcomes)
        hinted = EvalRun("m", True, outcomes)
        t2 = render_table2(table2_rows([vanilla, hinted]))
        assert "proved" in t2


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self, project):
        return Runner(project, ExperimentConfig(max_theorems=6, fuel=24))

    def test_run_theorem_revalidates(self, runner, project):
        outcome = runner.run_theorem(
            project.theorem("app_nil_l"), "gpt-4o", hinted=False
        )
        assert outcome.status is Status.PROVED
        assert outcome.revalidated
        assert 0.0 <= outcome.similarity <= 1.0

    def test_large_models_get_subsample(self, runner):
        small = runner.splits.test
        large = runner.splits.test_large
        assert len(large) < len(small)

    def test_run_sweep(self, runner):
        run = runner.run("gemini-1.5-flash", hinted=False)
        assert len(run.outcomes) == 6
        assert 0.0 <= run.proved_fraction() <= 1.0

    def test_reduced_context_probe(self, runner, project):
        outcome = runner.run_reduced_context(
            project.theorem("in_cons"), "gpt-4o-mini", ["In", "in_eq"]
        )
        assert outcome.status in (
            Status.PROVED,
            Status.STUCK,
            Status.FUELOUT,
        )

    def test_whole_proof_probe(self, runner, project):
        report = runner.run_whole_proof(project.theorem("plus_comm"), 4)
        assert report["attempts"] == 4
        assert 0 <= report["successes"] <= 4
