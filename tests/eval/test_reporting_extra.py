"""Transcript, cost metering, and CLI plumbing."""

import pytest

from repro.core.transcript import CandidateEvent, ExpansionEvent, Transcript
from repro.llm.cost import UsageMeter


class TestTranscript:
    def test_summary_renders(self):
        transcript = Transcript("thm", "model")
        event = ExpansionEvent(node_depth=0, node_score=0.0, goal_preview="g")
        event.candidates.append(
            CandidateEvent("intros", -0.5, "valid")
        )
        transcript.record(event)
        text = transcript.summary()
        assert "thm" in text and "intros" in text and "valid" in text


class TestUsageMeter:
    def test_accumulates_and_resets(self):
        meter = UsageMeter()
        meter.record_query("some prompt text", 8)
        meter.record_output("intros")
        snap = meter.snapshot()
        assert snap["queries"] == 1
        assert snap["prompt_tokens"] > 0
        assert snap["output_tokens"] > 0
        meter.reset()
        assert meter.snapshot()["queries"] == 0

    def test_model_meters_usage(self, project):
        from repro.kernel.goals import initial_state
        from repro.llm import get_model
        from repro.prompting import PromptBuilder

        model = get_model("gemini-1.5-flash")
        model.usage.reset()
        theorem = project.theorems[0]
        builder = PromptBuilder(project, theorem)
        state = initial_state(project.env_for(theorem), theorem.statement)
        model.generate(builder.build(state, []), 4)
        assert model.usage.queries == 1
        assert model.usage.prompt_tokens > 100


class TestCli:
    def test_show(self, capsys):
        from repro.cli import main

        assert main(["--fast", "show", "plus_comm"]) == 0
        out = capsys.readouterr().out
        assert "Lemma plus_comm" in out and "Qed." in out

    def test_list_category(self, capsys):
        from repro.cli import main

        assert main(["--fast", "list", "--category", "CHL"]) == 0
        out = capsys.readouterr().out
        assert "pimpl_sep_star_l" in out
        assert "plus_comm" not in out

    def test_prove_trivial(self, capsys):
        from repro.cli import main

        code = main(
            ["--fast", "prove", "app_nil_l", "--model", "gpt-4o",
             "--fuel", "32"]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "queries" in out
