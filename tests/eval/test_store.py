"""Run store: persistence, resume after a kill, --fresh bypass."""

import json

import pytest

from repro.eval import (
    ExperimentConfig,
    OutcomeRecord,
    Runner,
    RunStore,
    sweep_tasks,
)

CONFIG = ExperimentConfig(max_theorems=5, fuel=16)


@pytest.fixture()
def runner(project):
    return Runner(project, CONFIG)


@pytest.fixture()
def tasks(runner):
    theorems = runner.theorems_for("gpt-4o-mini")
    return sweep_tasks(theorems, "gpt-4o-mini", False, CONFIG)


class TestPersistence:
    def test_sweep_writes_one_line_per_cell(self, runner, tasks, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        runner.run_tasks(tasks, store=store)
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(tasks)
        parsed = [json.loads(line) for line in lines]
        assert {obj["key"] for obj in parsed} == {
            t.cache_key() for t in tasks
        }
        # Stored task payloads rehydrate to records byte-for-byte.
        for obj in parsed:
            OutcomeRecord.from_json(obj["record"])

    def test_rerun_hits_store_and_searches_nothing(
        self, project, runner, tasks, tmp_path
    ):
        store = RunStore(tmp_path / "run.jsonl")
        first = runner.run_tasks(tasks, store=store)

        rerun_runner = Runner(project, CONFIG)
        reloaded = RunStore(tmp_path / "run.jsonl")
        second = rerun_runner.run_tasks(tasks, store=reloaded)
        assert second == first
        assert rerun_runner.metrics.counter("tasks.executed") == 0
        assert rerun_runner.metrics.counter("tasks.cached") == len(tasks)
        # Nothing was appended: zero new searches, zero new lines.
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(tasks)

    def test_different_config_misses_store(self, project, runner, tasks, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        runner.run_tasks(tasks, store=store)
        other_config = ExperimentConfig(max_theorems=5, fuel=8)
        other_runner = Runner(project, other_config)
        other_tasks = sweep_tasks(
            [t.theorem for t in tasks], "gpt-4o-mini", False, other_config
        )
        other_runner.run_tasks(other_tasks, store=store)
        assert other_runner.metrics.counter("tasks.cached") == 0
        assert other_runner.metrics.counter("tasks.executed") == len(tasks)


class TestResume:
    def test_kill_midsweep_then_resume(self, project, runner, tasks, tmp_path):
        path = tmp_path / "run.jsonl"
        # Reference: the full sweep, no store involved.
        reference = Runner(project, CONFIG).run_tasks(tasks)

        # "Crash" after 2 cells, mid-append of the 3rd: the tail line
        # is torn JSON, exactly what a killed process leaves behind.
        store = RunStore(path)
        runner.run_tasks(tasks[:2], store=store)
        with path.open("a") as handle:
            handle.write('{"key": "deadbeef", "rec')

        resumed_runner = Runner(project, CONFIG)
        resumed_store = RunStore(path)
        assert len(resumed_store) == 2  # torn line dropped on load
        final = resumed_runner.run_tasks(tasks, store=resumed_store)
        assert resumed_runner.metrics.counter("tasks.cached") == 2
        assert resumed_runner.metrics.counter("tasks.executed") == len(tasks) - 2
        assert final == reference

    def test_fresh_bypasses_but_still_appends(
        self, project, runner, tasks, tmp_path
    ):
        store = RunStore(tmp_path / "run.jsonl")
        first = runner.run_tasks(tasks, store=store)

        fresh_runner = Runner(project, CONFIG)
        again = fresh_runner.run_tasks(tasks, store=store, fresh=True)
        assert fresh_runner.metrics.counter("tasks.executed") == len(tasks)
        assert fresh_runner.metrics.counter("tasks.cached") == 0
        assert again == first  # deterministic, so bypass changes nothing
        # Append-only: both generations are on disk, newest wins on load.
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2 * len(tasks)
        assert len(RunStore(tmp_path / "run.jsonl")) == len(tasks)

    def test_metrics_path_is_a_sibling(self, tmp_path):
        store = RunStore(tmp_path / "sweep.jsonl")
        assert store.metrics_path() == tmp_path / "sweep.metrics.json"


class TestEvalRunIntegration:
    def test_run_with_store_round_trips_outcomes(self, project, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        first = Runner(project, CONFIG).run(
            "gpt-4o-mini", hinted=True, store=store
        )
        resumed = Runner(project, CONFIG)
        second = resumed.run(
            "gpt-4o-mini", hinted=True, store=RunStore(tmp_path / "run.jsonl")
        )
        assert resumed.metrics.counter("tasks.executed") == 0
        assert [o.status for o in second.outcomes] == [
            o.status for o in first.outcomes
        ]
        assert [o.generated_proof for o in second.outcomes] == [
            o.generated_proof for o in first.outcomes
        ]
        assert second.proved_fraction() == first.proved_fraction()
