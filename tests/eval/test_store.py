"""Run store: persistence, resume after a kill, --fresh bypass."""

import json

import pytest

from repro.eval import (
    ExperimentConfig,
    OutcomeRecord,
    Runner,
    RunStore,
    sweep_tasks,
)

CONFIG = ExperimentConfig(max_theorems=5, fuel=16)


@pytest.fixture()
def runner(project):
    return Runner(project, CONFIG)


@pytest.fixture()
def tasks(runner):
    theorems = runner.theorems_for("gpt-4o-mini")
    return sweep_tasks(theorems, "gpt-4o-mini", False, CONFIG)


class TestPersistence:
    def test_sweep_writes_one_line_per_cell(self, runner, tasks, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        runner.run_tasks(tasks, store=store)
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(tasks)
        parsed = [json.loads(line) for line in lines]
        assert {obj["key"] for obj in parsed} == {
            t.cache_key() for t in tasks
        }
        # Stored task payloads rehydrate to records byte-for-byte.
        for obj in parsed:
            OutcomeRecord.from_json(obj["record"])

    def test_rerun_hits_store_and_searches_nothing(
        self, project, runner, tasks, tmp_path
    ):
        store = RunStore(tmp_path / "run.jsonl")
        first = runner.run_tasks(tasks, store=store)

        rerun_runner = Runner(project, CONFIG)
        reloaded = RunStore(tmp_path / "run.jsonl")
        second = rerun_runner.run_tasks(tasks, store=reloaded)
        assert second == first
        assert rerun_runner.metrics.counter("tasks.executed") == 0
        assert rerun_runner.metrics.counter("tasks.cached") == len(tasks)
        # Nothing was appended: zero new searches, zero new lines.
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(tasks)

    def test_different_config_misses_store(self, project, runner, tasks, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        runner.run_tasks(tasks, store=store)
        other_config = ExperimentConfig(max_theorems=5, fuel=8)
        other_runner = Runner(project, other_config)
        other_tasks = sweep_tasks(
            [t.theorem for t in tasks], "gpt-4o-mini", False, other_config
        )
        other_runner.run_tasks(other_tasks, store=store)
        assert other_runner.metrics.counter("tasks.cached") == 0
        assert other_runner.metrics.counter("tasks.executed") == len(tasks)


class TestResume:
    def test_kill_midsweep_then_resume(self, project, runner, tasks, tmp_path):
        path = tmp_path / "run.jsonl"
        # Reference: the full sweep, no store involved.
        reference = Runner(project, CONFIG).run_tasks(tasks)

        # "Crash" after 2 cells, mid-append of the 3rd: the tail line
        # is torn JSON, exactly what a killed process leaves behind.
        store = RunStore(path)
        runner.run_tasks(tasks[:2], store=store)
        with path.open("a") as handle:
            handle.write('{"key": "deadbeef", "rec')

        resumed_runner = Runner(project, CONFIG)
        resumed_store = RunStore(path)
        assert len(resumed_store) == 2  # torn line dropped on load
        final = resumed_runner.run_tasks(tasks, store=resumed_store)
        assert resumed_runner.metrics.counter("tasks.cached") == 2
        assert resumed_runner.metrics.counter("tasks.executed") == len(tasks) - 2
        assert final == reference

    def test_fresh_bypasses_but_still_appends(
        self, project, runner, tasks, tmp_path
    ):
        store = RunStore(tmp_path / "run.jsonl")
        first = runner.run_tasks(tasks, store=store)

        fresh_runner = Runner(project, CONFIG)
        again = fresh_runner.run_tasks(tasks, store=store, fresh=True)
        assert fresh_runner.metrics.counter("tasks.executed") == len(tasks)
        assert fresh_runner.metrics.counter("tasks.cached") == 0
        assert again == first  # deterministic, so bypass changes nothing
        # Append-only: both generations are on disk, newest wins on load.
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2 * len(tasks)
        assert len(RunStore(tmp_path / "run.jsonl")) == len(tasks)

    def test_metrics_path_is_a_sibling(self, tmp_path):
        store = RunStore(tmp_path / "sweep.jsonl")
        assert store.metrics_path() == tmp_path / "sweep.metrics.json"


class TestChecksums:
    def test_lines_carry_checksums(self, runner, tasks, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        runner.run_tasks(tasks[:2], store=store)
        for line in (tmp_path / "run.jsonl").read_text().splitlines():
            obj = json.loads(line)
            assert len(obj["sum"]) == 16
            int(obj["sum"], 16)  # hex

    def test_corrupt_line_is_quarantined_and_reexecuted(
        self, project, runner, tasks, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        reference = Runner(project, CONFIG).run_tasks(tasks)
        store = RunStore(path)
        runner.run_tasks(tasks, store=store)

        # Flip one character inside the *second* line's record payload:
        # the JSON still parses, only the checksum can catch it.
        lines = path.read_text().splitlines()
        assert '"status":"' in lines[1]
        corrupted = lines[1].replace('"status":"', '"status":"X', 1)
        assert corrupted != lines[1]
        lines[1] = corrupted
        path.write_text("\n".join(lines) + "\n")

        reloaded = RunStore(path)
        assert reloaded.quarantined == 1
        assert len(reloaded) == len(tasks) - 1
        # The damaged line moved to the quarantine sibling…
        quarantine = reloaded.quarantine_path().read_text().splitlines()
        assert quarantine == [corrupted]
        # …and was removed from the store file itself.
        assert corrupted not in path.read_text()

        # Resume: only the damaged cell re-executes, and the sweep
        # converges back to the reference outcomes.
        resumed = Runner(project, CONFIG)
        final = resumed.run_tasks(tasks, store=reloaded)
        assert resumed.metrics.counter("tasks.executed") == 1
        assert resumed.metrics.counter("tasks.cached") == len(tasks) - 1
        assert final == reference

    def test_torn_tail_is_quarantined(self, runner, tasks, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(path)
        runner.run_tasks(tasks[:2], store=store)
        with path.open("a") as handle:
            handle.write('{"key": "deadbeef", "rec')
        reloaded = RunStore(path)
        assert len(reloaded) == 2
        assert reloaded.quarantined == 1
        assert '"rec' in reloaded.quarantine_path().read_text()

    def test_legacy_lines_without_checksum_still_load(
        self, runner, tasks, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        store = RunStore(path)
        runner.run_tasks(tasks[:2], store=store)
        # Strip the checksums, as a pre-checksum store would look.
        lines = []
        for line in path.read_text().splitlines():
            obj = json.loads(line)
            del obj["sum"]
            lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))
        path.write_text("\n".join(lines) + "\n")
        reloaded = RunStore(path)
        assert len(reloaded) == 2
        assert reloaded.quarantined == 0

    def test_quarantine_rewrite_is_idempotent(self, runner, tasks, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(path)
        runner.run_tasks(tasks[:2], store=store)
        with path.open("a") as handle:
            handle.write("garbage line\n")
        assert RunStore(path).quarantined == 1
        # The rewrite removed the bad line: a second load is clean and
        # the quarantine file does not grow again.
        assert RunStore(path).quarantined == 0
        assert len(
            RunStore(path).quarantine_path().read_text().splitlines()
        ) == 1

    def test_quarantine_path_is_a_sibling(self, tmp_path):
        store = RunStore(tmp_path / "sweep.jsonl")
        assert store.quarantine_path() == tmp_path / "sweep.jsonl.quarantine"


class TestEvalRunIntegration:
    def test_run_with_store_round_trips_outcomes(self, project, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        first = Runner(project, CONFIG).run(
            "gpt-4o-mini", hinted=True, store=store
        )
        resumed = Runner(project, CONFIG)
        second = resumed.run(
            "gpt-4o-mini", hinted=True, store=RunStore(tmp_path / "run.jsonl")
        )
        assert resumed.metrics.counter("tasks.executed") == 0
        assert [o.status for o in second.outcomes] == [
            o.status for o in first.outcomes
        ]
        assert [o.generated_proof for o in second.outcomes] == [
            o.generated_proof for o in first.outcomes
        ]
        assert second.proved_fraction() == first.proved_fraction()
