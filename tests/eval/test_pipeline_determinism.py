"""Pipelined search determinism against the golden stores.

Two contracts, both riding ``ExperimentConfig.pipeline_depth`` (an
execution knob outside the task cache key, like ``trace``):

* ``pipeline_depth=1`` — the pipelined executor with one slot replays
  the serial loop's event order exactly, so re-running the golden
  sweeps (``tests/eval/golden_run.jsonl``, recorded by the serial
  loop, and ``tests/repair/golden_repair.jsonl``) must produce
  **byte-identical** store files.
* ``pipeline_depth=4`` — overlapped rounds may explore in a different
  order (selection is speculative), but per-theorem *coverage* on the
  golden corpus is unchanged: the same cells prove, with revalidated
  proofs, with kernel caches on and off, and under injected transient
  faults below the retry budget.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval import (
    ExperimentConfig,
    Runner,
    RunStore,
    SerialExecutor,
    sweep_tasks,
)

GOLDEN_RUN = Path(__file__).with_name("golden_run.jsonl")
GOLDEN_REPAIR = (
    Path(__file__).parent.parent / "repair" / "golden_repair.jsonl"
)
REPAIR_MODEL = "gpt-4o"
REPAIR_THEOREMS = ("plus_assoc", "le_trans", "firstn_nil", "rev_involutive")


def _run_cfg(depth: int) -> ExperimentConfig:
    return ExperimentConfig(max_theorems=6, fuel=16, pipeline_depth=depth)


def _repair_cfg(depth: int, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        fuel=64, repair_rounds=2, pipeline_depth=depth, **kwargs
    )


def _mini_sweep(project, store_path, config) -> RunStore:
    runner = Runner(project, config)
    theorems = runner.theorems_for("gpt-4o-mini")
    tasks = sweep_tasks(theorems, "gpt-4o-mini", False, config)
    tasks += sweep_tasks(theorems, "gpt-4o-mini", True, config)
    store = RunStore(store_path)
    runner.run_tasks(tasks, executor=SerialExecutor(), store=store)
    return store


def _repair_sweep(project, store_path, config) -> RunStore:
    runner = Runner(project, config)
    tasks = sweep_tasks(REPAIR_THEOREMS, REPAIR_MODEL, True, config)
    store = RunStore(store_path)
    runner.run_tasks(tasks, executor=SerialExecutor(), store=store)
    return store


def _golden_records(path: Path):
    return [
        json.loads(line)["record"]
        for line in path.read_text(encoding="utf-8").splitlines()
    ]


def _coverage(records):
    """theorem -> (proved?, revalidated?) — order-independent."""
    out = {}
    for r in records:
        r = r if isinstance(r, dict) else r.to_json()
        out[(r["theorem"], r["hinted"])] = (
            r["status"] in ("proved", "repaired"),
            r["revalidated"],
        )
    return out


# ----------------------------------------------------------------------
# depth 1: byte identity with the serial loop
# ----------------------------------------------------------------------


def test_depth1_replays_golden_run_byte_identically(project, tmp_path):
    store = _mini_sweep(project, tmp_path / "replay.jsonl", _run_cfg(1))
    assert len(store) == 12
    assert (tmp_path / "replay.jsonl").read_text(
        encoding="utf-8"
    ) == GOLDEN_RUN.read_text(encoding="utf-8")


def test_depth1_replays_golden_repair_byte_identically(project, tmp_path):
    store = _repair_sweep(
        project, tmp_path / "replay.jsonl", _repair_cfg(1)
    )
    assert len(store) == 4
    assert (tmp_path / "replay.jsonl").read_text(
        encoding="utf-8"
    ) == GOLDEN_REPAIR.read_text(encoding="utf-8")


def test_depth1_uncached_kernel_still_byte_identical(project, tmp_path):
    from repro.kernel import cache

    with cache.disabled():
        _mini_sweep(project, tmp_path / "replay.jsonl", _run_cfg(1))
    assert (tmp_path / "replay.jsonl").read_text(
        encoding="utf-8"
    ) == GOLDEN_RUN.read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# depth 4: identical coverage under reordered exploration
# ----------------------------------------------------------------------


def test_depth4_coverage_matches_golden_run(project, tmp_path):
    store = _mini_sweep(project, tmp_path / "replay.jsonl", _run_cfg(4))
    golden = _coverage(_golden_records(GOLDEN_RUN))
    lines = (tmp_path / "replay.jsonl").read_text(
        encoding="utf-8"
    ).splitlines()
    replayed = _coverage([json.loads(l)["record"] for l in lines])
    assert replayed == golden
    assert len(store) == 12


def test_depth4_coverage_matches_golden_repair(project, tmp_path):
    _repair_sweep(project, tmp_path / "replay.jsonl", _repair_cfg(4))
    golden = _coverage(_golden_records(GOLDEN_REPAIR))
    lines = (tmp_path / "replay.jsonl").read_text(
        encoding="utf-8"
    ).splitlines()
    assert _coverage([json.loads(l)["record"] for l in lines]) == golden


def test_depth4_coverage_stable_with_kernel_caches_off(project, tmp_path):
    from repro.kernel import cache

    with cache.disabled():
        _mini_sweep(project, tmp_path / "uncached.jsonl", _run_cfg(4))
    _mini_sweep(project, tmp_path / "cached.jsonl", _run_cfg(4))
    uncached = _coverage(
        [
            json.loads(l)["record"]
            for l in (tmp_path / "uncached.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        ]
    )
    cached = _coverage(
        [
            json.loads(l)["record"]
            for l in (tmp_path / "cached.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        ]
    )
    assert cached == uncached == _coverage(_golden_records(GOLDEN_RUN))


def test_depth4_coverage_stable_under_transient_faults(project):
    # Transient/malformed faults below the retry budget are keyed on
    # (context, prompt) — call-order independent — so the resilient
    # layer absorbs them even when pipelined threads race: coverage
    # must still match the fault-free golden repair sweep.
    config = _repair_cfg(
        4, faults="seed=7,transient=0.15,malformed=0.10,max_failures=2"
    )
    runner = Runner(project, config)
    tasks = sweep_tasks(REPAIR_THEOREMS, REPAIR_MODEL, True, config)
    records = runner.run_tasks(tasks, executor=SerialExecutor())
    assert _coverage([r.to_json() for r in records]) == _coverage(
        _golden_records(GOLDEN_REPAIR)
    )


def test_pipeline_depth_is_outside_the_cache_key(project):
    # Same cell, different depths -> same task identity: a store
    # recorded serially must serve a pipelined rerun without searching.
    runner0 = Runner(project, _run_cfg(0))
    runner4 = Runner(project, _run_cfg(4))
    theorems = runner0.theorems_for("gpt-4o-mini")[:2]
    t0 = sweep_tasks(theorems, "gpt-4o-mini", False, runner0.config)
    t4 = sweep_tasks(theorems, "gpt-4o-mini", False, runner4.config)
    assert [t.cache_key() for t in t0] == [t.cache_key() for t in t4]
