"""Figure 1b: Gemini 1.5 Pro, 1M vs truncated 128k context window.

Paper finding: truncating the window does *not* hurt coverage — the
useful context sits near the end of the prompt, which keep-the-end
truncation preserves ("simply feeding the model more context is not
necessarily optimal").
"""

from __future__ import annotations

from repro.eval import coverage_by_bin, overall_coverage, render_figure1


def test_fig1b_context_window(benchmark, sweep):
    def run():
        return {
            "gemini-1.5-pro (1M)": sweep("gemini-1.5-pro", True),
            "gemini-1.5-pro (128k)": sweep("gemini-1.5-pro-128k", True),
        }

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {
        name: coverage_by_bin(run_.outcomes) for name, run_ in runs.items()
    }
    print()
    print(render_figure1(series, "Figure 1b — context-window comparison"))

    full = overall_coverage(runs["gemini-1.5-pro (1M)"].outcomes)
    narrow = overall_coverage(runs["gemini-1.5-pro (128k)"].outcomes)
    # The truncated window must be in the same ballpark (paper: it was
    # not worse; allow small sampling noise either way).
    assert abs(full - narrow) <= 0.25, (full, narrow)
