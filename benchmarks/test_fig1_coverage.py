"""Figure 1a: proof coverage by human-proof length bin, per model.

Paper shape to reproduce: hints raise every model's coverage; larger
models dominate smaller ones; coverage decays with proof length; the
>512-token bin is never proved.
"""

from __future__ import annotations

import pytest

from repro.eval import coverage_by_bin, overall_coverage, render_figure1
from repro.eval.config import ALL_MODELS


@pytest.mark.parametrize("hinted", [False, True], ids=["vanilla", "hints"])
def test_fig1_coverage(benchmark, sweep, hinted):
    def run():
        series = {}
        for model in ALL_MODELS:
            run_ = sweep(model, hinted)
            series[model] = coverage_by_bin(run_.outcomes)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    title = f"Figure 1a — proof coverage ({'with' if hinted else 'no'} hints)"
    print()
    print(render_figure1(series, title))

    # Shape assertions (paper §4.1).
    for model, bins in series.items():
        long_bin = bins[-1]
        assert long_bin.proved == 0, f"{model} proved a >512-token theorem"


def test_fig1_hints_help(sweep):
    """Hints improve (or tie) most models' coverage.

    At bench scale (16 theorems per sweep) individual cells can invert
    within noise; the paper's effect is that the majority — and the
    strong models in particular — benefit."""
    improved = 0
    for model in ALL_MODELS:
        vanilla = overall_coverage(sweep(model, False).outcomes)
        hinted = overall_coverage(sweep(model, True).outcomes)
        if hinted >= vanilla:
            improved += 1
    assert improved >= 3
