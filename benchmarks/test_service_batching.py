"""Service-layer micro-benchmarks: micro-batched vs. solo dispatch.

The full closed-loop measurement (HTTP server, concurrent clients,
BENCH_service.json, the 2x throughput gate) lives in
``scripts/service_loadgen.py`` and CI's ``service-smoke`` job; these
benchmarks isolate the dispatch layer itself.  The endpoint model is
:class:`repro.testing.latency.LatencyGenerator` with a *serialized*
per-dispatch overhead — the requests-per-minute rate limit a real
GPT-4o/Gemini deployment enforces, which is exactly the resource
batching amortizes: n concurrent searches pay n overheads solo but
~n/batch_size overheads batched.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro.llm import get_model
from repro.service.batching import BatchingGenerator, BatchPolicy
from repro.testing.latency import LatencyGenerator

OVERHEAD = 0.02  # seconds per dispatch against the rate-limited endpoint
CALLERS = 8
CALLS_PER_CALLER = 3


def _drive(generator):
    """CALLERS concurrent searches, each issuing sequential queries."""
    errors = []

    def search(index):
        try:
            for step in range(CALLS_PER_CALLER):
                generator.generate(f"Goal c{index} s{step} : n = n", 4)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=search, args=(i,)) for i in range(CALLERS)
    ]
    started = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = perf_counter() - started
    assert errors == []
    return elapsed


def test_batched_dispatch_beats_solo_under_rate_limit():
    """Batched wall-clock must beat unbatched on the same workload."""
    model = get_model("gpt-4o-mini")

    solo = BatchingGenerator(
        LatencyGenerator(model, OVERHEAD), BatchPolicy(max_batch_size=1)
    )
    solo_elapsed = _drive(solo)

    batched = BatchingGenerator(
        LatencyGenerator(model, OVERHEAD),
        BatchPolicy(batch_window=OVERHEAD / 2, max_batch_size=CALLERS),
    )
    try:
        batched_elapsed = _drive(batched)
        stats = batched.stats()
    finally:
        batched.close()

    # The batcher found real coalescing opportunities ...
    assert stats["queries"] == CALLERS * CALLS_PER_CALLER
    assert stats["mean_batch_size"] > 1.0
    # ... and converted them into wall-clock: solo pays one serialized
    # overhead per query, batched one per dispatch.
    assert batched_elapsed < solo_elapsed, (
        f"batched {batched_elapsed:.3f}s not faster than "
        f"solo {solo_elapsed:.3f}s (mean batch {stats['mean_batch_size']:.2f})"
    )


def test_batching_overhead_is_negligible_without_contention(benchmark):
    """A lone caller through the batcher: the window flush path."""
    batcher = BatchingGenerator(
        get_model("gpt-4o"), BatchPolicy(batch_window=0.0, max_batch_size=8)
    )
    try:
        benchmark(lambda: batcher.generate("Goal n = n", 4))
    finally:
        batcher.close()


def test_disabled_batching_is_a_passthrough(benchmark):
    """max_batch_size=1: no queue, no thread, raw model latency."""
    batcher = BatchingGenerator(
        get_model("gpt-4o"), BatchPolicy(max_batch_size=1)
    )
    benchmark(lambda: batcher.generate("Goal n = n", 4))
