"""Ablations of the search design choices (DESIGN.md §8).

* frontier discipline: best-first vs depth-first vs breadth-first;
* search width: 1 / 4 / 8;
* duplicate-state pruning on/off.
"""

from __future__ import annotations

import pytest

from repro.corpus.loader import load_project
from repro.eval import ExperimentConfig, Runner, overall_coverage

_N = 10
_FUEL = 48


def _run(project, **overrides):
    config = ExperimentConfig(max_theorems=_N, fuel=_FUEL, **overrides)
    runner = Runner(project, config)
    return runner.run("gpt-4o", hinted=True)


def test_ablation_frontier(benchmark, project):
    def run():
        return {
            kind: overall_coverage(_run(project, frontier=kind).outcomes)
            for kind in ("best-first", "depth-first", "breadth-first")
        }

    coverage = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for kind, value in coverage.items():
        print(f"frontier={kind:14} coverage={value:.1%}")
    assert coverage["best-first"] >= coverage["breadth-first"] - 0.21


def test_ablation_width(benchmark, project):
    def run():
        return {
            width: overall_coverage(_run(project, width=width).outcomes)
            for width in (1, 4, 8)
        }

    coverage = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for width, value in coverage.items():
        print(f"width={width}  coverage={value:.1%}")
    # More candidates per query should never devastate coverage.
    assert coverage[8] >= coverage[1] - 0.11


def test_ablation_dedup(benchmark, project):
    def run():
        return {
            dedup: _run(project, dedup_states=dedup)
            for dedup in (True, False)
        }

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for dedup, sweep in runs.items():
        queries = sum(o.queries for o in sweep.outcomes)
        print(
            f"dedup={str(dedup):5} coverage="
            f"{overall_coverage(sweep.outcomes):.1%} queries={queries}"
        )
    # Pruning duplicates never reduces what gets proved here, and the
    # no-pruning run burns at least as much fuel.
    q_on = sum(o.queries for o in runs[True].outcomes)
    q_off = sum(o.queries for o in runs[False].outcomes)
    assert q_off >= q_on - _FUEL


def test_ablation_engines(benchmark, project):
    """Best-first vs MCTS vs Rango-style linear, equal fuel (paper §5)."""
    import dataclasses

    from repro.core import (
        BestFirstSearch,
        LinearConfig,
        LinearSearch,
        MCTSConfig,
        MCTSSearch,
        SearchConfig,
    )
    from repro.corpus.splits import make_splits
    from repro.llm.models import SimulatedModel, get_model
    from repro.prompting import PromptBuilder
    from repro.serapi import ProofChecker

    splits = make_splits(project)
    theorems = splits.test[:_N]
    model = SimulatedModel(
        dataclasses.replace(get_model("gpt-4o").profile, lucidity=0.6)
    )

    def run():
        scores = {}
        engines = {
            "best-first": lambda c, m: BestFirstSearch(
                c, m, SearchConfig(fuel=_FUEL)
            ),
            "mcts": lambda c, m: MCTSSearch(c, m, MCTSConfig(fuel=_FUEL)),
            "linear": lambda c, m: LinearSearch(
                c, m, LinearConfig(fuel=_FUEL)
            ),
        }
        for name, factory in engines.items():
            proved = 0
            for theorem in theorems:
                checker = ProofChecker(project.env_for(theorem))
                builder = PromptBuilder(
                    project,
                    theorem,
                    hint_names=splits.hint_names,
                    window_tokens=model.context_window,
                )
                result = factory(checker, model).prove(
                    theorem.name, theorem.statement, builder.build
                )
                proved += result.proved
            scores[name] = proved / len(theorems)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, value in scores.items():
        print(f"engine={name:12} coverage={value:.1%}")
    # All three disciplines must be functional; the tree searches
    # should not lose badly to greedy linear search.
    assert max(scores.values()) > 0
    assert scores["best-first"] >= scores["linear"] - 0.21


def test_ablation_hint_fraction(benchmark, project):
    """Hint fraction 0 / 25 / 50 / 100 % (DESIGN.md §8)."""
    from repro.eval import ExperimentConfig, Runner, overall_coverage

    def run():
        out = {}
        for fraction in (0.0, 0.25, 0.5, 1.0):
            runner = Runner(
                project,
                ExperimentConfig(
                    max_theorems=_N, fuel=_FUEL, hint_fraction=fraction
                ),
            )
            sweep = runner.run("gpt-4o", hinted=True)
            out[fraction] = overall_coverage(sweep.outcomes)
        return out

    coverage = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for fraction, value in coverage.items():
        print(f"hint fraction={fraction:4.0%}  coverage={value:.1%}")
    # With no hints available the "hinted" run degenerates to vanilla;
    # some positive fraction should do at least as well as zero.
    assert max(coverage.values()) >= coverage[0.0]
