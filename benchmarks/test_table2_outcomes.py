"""Table 2: proved/stuck/fuelout percentages and qualitative metrics.

Paper shapes: stuck dominates fuelout for every model; hints raise
proved and typically similarity; similarity stays well below 1.0
(generated proofs are not verbatim copies) and above the random-pair
baseline.
"""

from __future__ import annotations

from repro.eval import render_table2, random_pair_baseline, table2_rows
from repro.eval.config import ALL_MODELS


def test_table2_outcomes(benchmark, sweep, project):
    def run():
        runs = []
        for model in ALL_MODELS:
            runs.append(sweep(model, False))
            runs.append(sweep(model, True))
        return table2_rows(runs)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = random_pair_baseline(
        [t.proof_text for t in project.theorems], pairs=100
    )
    print()
    print(render_table2(rows, "Table 2 — outcomes (vanilla -> hints)"))
    print(f"random-pair similarity baseline: {baseline:.3f} (paper: 0.360)")

    for row in rows:
        # Failure-mode shape: stuck >> fuelout in both settings
        # (allow one-sample slack at bench scale: n=16 per sweep).
        for stuck, fuelout in zip(row["stuck"], row["fuelout"]):
            assert stuck + 0.14 >= fuelout, row
        # Generated proofs are never verbatim copies.
        for sim in row["similarity"]:
            if sim is not None:
                assert sim < 0.95, row
