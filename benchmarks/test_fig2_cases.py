"""Figure 2: human-vs-generated case studies.

The three lemmas of the paper's Figure 2, searched with hinted strong
models; generated proofs are machine-checked and compared against the
deliberately redundant human proofs.
"""

from __future__ import annotations

from repro.eval import render_case, run_case_studies


def test_fig2_case_studies(benchmark, runner):
    studies = benchmark.pedantic(
        lambda: run_case_studies(runner), rounds=1, iterations=1
    )
    print()
    for study in studies:
        print(render_case(study))
        print()

    by_name = {s.lemma: s for s in studies}
    assert set(by_name) == {
        "incl_tl_inv",
        "ndata_log_padded_log",
        "tree_name_distinct_head",
    }
    # At least two of the three cases succeed, and at least one does so
    # with a proof no longer than the human one (the paper's headline
    # qualitative claim: LLM proofs can be more concise).
    proved = [s for s in studies if s.proved]
    assert len(proved) >= 2, "case studies regressed"
    concise = [s for s in proved if s.generated_tokens <= s.human_tokens]
    assert concise, "no case study produced a comparable proof"
    for study in studies:
        if study.proved:
            assert study.similarity < 0.95
