"""Shared benchmark fixtures.

Benchmarks regenerate every table and figure of the paper on a reduced
budget (fewer theorems per sweep) so ``pytest benchmarks/
--benchmark-only`` completes in minutes.  The full-budget run lives in
``scripts/run_experiments.py``; EXPERIMENTS.md records its output.

Sweeps are cached per (model, hinted) so Figure 1, Table 1 and Table 2
share one set of searches, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.corpus.loader import load_project
from repro.eval import ExperimentConfig, Runner
from repro.eval.runner import EvalRun

BENCH_THEOREMS = 16  # per sweep
BENCH_FUEL = 64  # paper: 128; halved for bench wall-time


@pytest.fixture(scope="session")
def project():
    return load_project()


@pytest.fixture(scope="session")
def runner(project):
    return Runner(
        project,
        ExperimentConfig(max_theorems=BENCH_THEOREMS, fuel=BENCH_FUEL),
    )


_SWEEPS: Dict[Tuple[str, bool], EvalRun] = {}


@pytest.fixture(scope="session")
def sweep(runner):
    """Memoized (model, hinted) evaluation sweep."""

    def _sweep(model: str, hinted: bool) -> EvalRun:
        key = (model, hinted)
        if key not in _SWEEPS:
            _SWEEPS[key] = runner.run(model, hinted)
        return _SWEEPS[key]

    return _sweep


@pytest.fixture(scope="session")
def env(project):
    return project.env
