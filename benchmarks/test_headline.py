"""The paper's headline numbers.

"The hinted GPT-4o model proves 38% of all FSCQ theorems and 57% of
simpler theorems (those with human proofs under 64 tokens)."

Our corpus is shorter-proofed than FSCQ (see EXPERIMENTS.md), so the
absolute coverage runs higher; the *ordering* — under-64 coverage
exceeding overall coverage, both well above the weak models' — is the
reproduced shape.
"""

from __future__ import annotations

from repro.eval import coverage_under, overall_coverage


def test_headline_hinted_gpt4o(benchmark, sweep):
    run = benchmark.pedantic(
        lambda: sweep("gpt-4o", True), rounds=1, iterations=1
    )
    overall = overall_coverage(run.outcomes)
    simple = coverage_under(run.outcomes, 64)
    print()
    print(f"hinted GPT-4o coverage: overall={overall:.1%} (paper: 38%)")
    print(f"hinted GPT-4o coverage <64 tokens: {simple:.1%} (paper: 57%)")

    assert overall > 0.15
    assert simple >= overall  # short proofs are easier, as in the paper


def test_headline_weak_model_much_lower(sweep):
    strong = overall_coverage(sweep("gpt-4o", True).outcomes)
    weak = overall_coverage(sweep("gpt-4o-mini", True).outcomes)
    assert strong > weak
