"""Table 1: coverage by category, actual vs expected (GPT-4o ± hints).

Paper shape: Utilities and CHL meet or beat expected coverage; the
File System category falls short of expected (deep dependency chains).
"""

from __future__ import annotations

import pytest

from repro.corpus.model import CATEGORIES
from repro.eval import category_table, render_table1
from repro.eval.runner import EvalRun


@pytest.fixture(scope="module")
def stratified(runner):
    """A per-category stratified sample so Table 1 has signal."""
    per_category = 8
    chosen = []
    for category in CATEGORIES:
        pool = [
            t
            for t in runner.splits.test
            if t.category == category
        ]
        chosen.extend(pool[:per_category])
    return chosen


def test_table1_categories(benchmark, runner, stratified):
    def run():
        rows = {}
        for hinted, label in ((False, "gpt-4o"), (True, "gpt-4o (w/ hints)")):
            sweep = runner.run("gpt-4o", hinted, theorems=stratified)
            rows[label] = category_table(sweep.outcomes)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table1(rows, "Table 1 — category coverage (actual/expected)"))

    for label, table in rows.items():
        by_cat = {r.category: r for r in table}
        assert set(by_cat) == set(CATEGORIES)
        for row in table:
            assert row.total > 0
