"""§4.3 probes: reduced context and whole-proof generation.

* Reduced context: theorems the weak model fails with the full prompt
  become provable when the prompt is hand-reduced to just the needed
  dependencies (the paper's context-selection finding).
* Whole proofs: an o1-style model that emits complete scripts without
  assistant interaction mostly fails (and cannot drive best-first
  search at all, lacking log-probs).
"""

from __future__ import annotations

import pytest

from repro.core import Status

# (theorem, model, dependencies to keep) for the reduced-context probe.
# These are lemmas the model fails with the full prompt even at
# best-case attention; the paper's §4.3 finding is that a hand-reduced
# prompt containing only the needed dependencies rescues them.
_REDUCED = [
    (
        "ndata_log_padded_log",
        "gpt-4o",
        [
            "nonzero_addrs", "ndata_log", "padded_log", "pad2", "map_app",
            "repeat_map", "nonzero_addrs_app", "nonzero_addrs_repeat_0",
            "nonzero_addrs_app_zeros", "plus_0_r", "fst_pair",
        ],
    ),
    (
        "tree_name_distinct_head",
        "gemini-1.5-pro",
        [
            "dirtree", "tree_names_distinct", "Forall", "map_cons",
            "Forall_inv", "NoDup_cons_inv",
        ],
    ),
    (
        "sb_alloc_total",
        "gpt-4o-mini",
        ["sb_total", "sb_alloc", "fst", "snd"],
    ),
]


def _focused(model_name):
    import dataclasses

    from repro.llm.models import SimulatedModel, get_model

    return SimulatedModel(
        dataclasses.replace(get_model(model_name).profile, lucidity=1.0)
    )


def test_sec43_reduced_context(benchmark, runner, project):
    def run():
        results = []
        for name, model_name, deps in _REDUCED:
            theorem = project.theorem(name)
            from repro.core import SearchConfig

            model = _focused(model_name)
            wide = SearchConfig(width=16, fuel=256)
            full = runner.run_theorem(
                theorem,
                model_name,
                hinted=False,
                model_override=model,
                search_config=wide,
            )
            reduced = runner.run_theorem(
                theorem,
                model_name,
                hinted=False,
                reduced_dependencies=deps,
                model_override=model,
                search_config=wide,
            )
            results.append((name, full, reduced))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, full, reduced in results:
        print(
            f"{name:24} full-context: {full.status.value:8} "
            f"reduced-context: {reduced.status.value}"
        )
    proved_reduced = sum(1 for _, _, r in results if r.proved)
    assert proved_reduced >= 2, "reduced context should rescue these proofs"


def test_sec43_whole_proof(benchmark, runner, project):
    names = ["plus_comm", "rev_involutive", "incl_tl_inv", "plus_0_l"]

    def run():
        return [
            runner.run_whole_proof(project.theorem(name), attempts=6)
            for name in names
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    total_attempts = sum(r["attempts"] for r in reports)
    total_success = sum(r["successes"] for r in reports)
    for report in reports:
        print(
            f"{report['theorem']:20} whole-proof successes: "
            f"{report['successes']}/{report['attempts']}"
        )
    print(f"overall: {total_success}/{total_attempts}")
    # Whole-proof generation without assistant interaction mostly fails.
    assert total_success <= total_attempts // 2
