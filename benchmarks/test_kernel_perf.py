"""Kernel micro-benchmarks.

These justify the experiment budgets: a tactic executes in well under
the paper's 5-second validity timeout, and one model query plus eight
validations costs milliseconds, so a 128-query search is tractable.
"""

from __future__ import annotations

import pytest

from repro.kernel.goals import initial_state
from repro.kernel.parser import parse_statement, parse_term
from repro.kernel.reduction import simpl
from repro.kernel.typecheck import elaborate_term
from repro.kernel.unify import MetaStore, unify
from repro.serapi import ProofChecker
from repro.tactics import parse_tactic
from repro.tactics.base import run_tactic
from repro.tactics.script import run_script


def test_perf_parse_statement(benchmark, env):
    text = (
        "forall (T : Type) (l1 l2 : list T) (a : T), "
        "incl l1 (a :: l2) -> ~ In a l1 -> incl l1 l2"
    )
    benchmark(lambda: parse_statement(env, text))


def test_perf_simpl_arith(benchmark, env):
    term = elaborate_term(env, parse_term("9 * 9 + 7 * 6"), {})
    benchmark(lambda: simpl(env, term))


def test_perf_unify(benchmark, env):
    lhs = parse_statement(env, "forall n m, n + m = m + n")
    rhs = parse_statement(env, "forall a b, a + b = b + a")

    def run():
        unify(lhs, rhs, MetaStore())

    benchmark(run)


def test_perf_tactic_induction(benchmark, env):
    statement = parse_statement(env, "forall n m, n + m = m + n")
    state = initial_state(env, statement)
    node = parse_tactic("induction n; simpl; intros")
    benchmark(lambda: run_tactic(env, state, node))


def test_perf_auto(benchmark, env):
    statement = parse_statement(env, "forall n, n <= S (S (S n))")
    state = initial_state(env, statement)
    node = parse_tactic("auto")
    benchmark(lambda: run_tactic(env, state, node))


def test_perf_full_script(benchmark, env):
    statement = parse_statement(env, "forall n m, n + m = m + n")
    script = (
        "induction n; simpl; intros.\n"
        "- rewrite plus_0_r. reflexivity.\n"
        "- rewrite IHn. rewrite plus_n_Sm. reflexivity."
    )
    benchmark(lambda: run_script(env, statement, script))


def test_perf_checker_validation(benchmark, env):
    checker = ProofChecker(env)
    state = checker.start_text("forall n m, n + m = m + n")

    def run():
        for tactic in ("intros", "induction n", "lia", "simpl", "auto"):
            checker.check(state, tactic)

    benchmark(run)


def test_perf_model_query(benchmark, project):
    from repro.kernel.goals import initial_state as init
    from repro.llm import get_model
    from repro.prompting import PromptBuilder

    model = get_model("gpt-4o")
    theorem = project.theorem("rev_involutive")
    builder = PromptBuilder(project, theorem)
    state = init(project.env_for(theorem), theorem.statement)
    prompt = builder.build(state, [])
    model.generate(prompt, 8)  # warm the context cache
    benchmark(lambda: model.generate(prompt, 8))
