"""Kernel micro-benchmarks.

These justify the experiment budgets: a tactic executes in well under
the paper's 5-second validity timeout, and one model query plus eight
validations costs milliseconds, so a 128-query search is tractable.

The ``test_cached_*`` benchmarks compare the optimized kernel (arena
interning + memo caches + fingerprint state keys) against the pristine
baseline (``cache.disabled()`` + string keys) on the hottest
search-loop operations — duplicate-state detection, reduction, and
term equality — and *fail* if the cached kernel is not at least 3x
faster.  Their measurements, along with cache hit rates from a replay
workload, are written to ``BENCH_kernel.json`` at the repo root
(uploaded as a CI artifact).
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

import pytest

from repro.kernel import cache
from repro.kernel.goals import initial_state
from repro.kernel.parser import parse_statement, parse_term
from repro.kernel.reduction import simpl, whnf
from repro.kernel.terms import intern, nat_lit
from repro.kernel.typecheck import elaborate_term
from repro.kernel.unify import MetaStore, unify
from repro.serapi import ProofChecker
from repro.tactics import parse_tactic
from repro.tactics.base import run_tactic
from repro.tactics.script import run_script, script_tactics

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
MIN_SPEEDUP = 3.0

# Steady-state floors for the per-node memos on a warm search-like
# workload (a best-first search revisits near-duplicate states
# constantly, so the second replay pass models its cache regime).
MIN_WARM_HIT_RATE = {"subst_vars": 0.5, "simpl": 0.5}

_RESULTS: dict = {"benchmarks": {}, "cache_stats": {}}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write the cached-vs-uncached trajectory file after this module."""
    yield
    if _RESULTS["benchmarks"]:
        with BENCH_JSON.open("w", encoding="utf-8") as handle:
            json.dump(_RESULTS, handle, indent=2, sort_keys=True)
            handle.write("\n")


def _best_of(fn, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def _record_speedup(name: str, cached_s: float, uncached_s: float) -> float:
    speedup = uncached_s / cached_s if cached_s else float("inf")
    _RESULTS["benchmarks"][name] = {
        "cached_seconds": cached_s,
        "uncached_seconds": uncached_s,
        "speedup": speedup,
    }
    return speedup


def _replay_states(project, names):
    """Proof states reached while replaying human proofs (search-like
    workload: many near-duplicate states over a shared context)."""
    states = []
    for name in names:
        theorem = project.theorem(name)
        env = project.env_for(theorem)
        checker = ProofChecker(env)
        state = checker.start(theorem.statement)
        states.append(state)
        for tactic in script_tactics(theorem.proof_text):
            result = checker.check(state, tactic)
            if not result.ok:
                break
            state = result.state
            states.append(state)
    return states


REPLAY_NAMES = (
    "rev_involutive",
    "app_assoc",
    "map_length",
    "rev_app_distr",
)


def test_cached_duplicate_detection_speedup(project):
    states = _replay_states(
        project, [n for n in REPLAY_NAMES if n in project.theorem_cutoff]
    )
    assert len(states) >= 8

    def fingerprint_pass():
        for state in states:
            state.fingerprint()

    def string_key_pass():
        for state in states:
            state.key()

    cache.clear_caches()
    fingerprint_pass()  # warm: stamps + memo fill (first search visit)
    cached_s = _best_of(fingerprint_pass)
    with cache.disabled():
        uncached_s = _best_of(string_key_pass)
    speedup = _record_speedup("duplicate_detection", cached_s, uncached_s)
    assert speedup >= MIN_SPEEDUP, (
        f"fingerprint keys only {speedup:.1f}x faster than string keys"
    )


def test_cached_reduction_speedup(env):
    # Each term normalizes well inside DEFAULT_BUDGET: a fuel-limited
    # run is (correctly) never memoized, so it would benchmark the
    # uncached path twice.
    terms = [
        elaborate_term(env, parse_term(text), {})
        for text in ("6 * 7 + 5 * 4", "7 * 8 + 6 * 5", "4 * 9 * 3")
    ]

    def reduce_all():
        for term in terms:
            simpl(env, term)
            whnf(env, term)

    cache.clear_caches()
    reduce_all()  # warm (a search re-reduces the same goals constantly)
    cached_s = _best_of(reduce_all)
    with cache.disabled():
        uncached_s = _best_of(reduce_all)
    speedup = _record_speedup("reduction_memo", cached_s, uncached_s)
    assert speedup >= MIN_SPEEDUP, (
        f"memoized reduction only {speedup:.1f}x faster than baseline"
    )


def test_arena_vs_object_equality_speedup():
    """Arena-vs-object microbench: interned terms are hash-consed, so
    structural equality degenerates to an id (here: identity) check,
    while pristine objects pay a full structural walk per comparison.
    Search dedup performs exactly this comparison on every queue
    insertion, so the gap is the arena's direct payoff."""
    depth = 2_000
    rounds = 200

    a = intern(nat_lit(depth))
    b = intern(nat_lit(depth))
    assert a is b  # hash-consed: one canonical node per structure

    def id_equality():
        for _ in range(rounds):
            assert a == b

    t = nat_lit(depth)
    u = nat_lit(depth)

    def object_equality():
        for _ in range(rounds):
            assert t == u

    cached_s = _best_of(id_equality)
    with cache.disabled():
        uncached_s = _best_of(object_equality)
    speedup = _record_speedup("arena_equality", cached_s, uncached_s)
    assert speedup >= MIN_SPEEDUP, (
        f"arena id equality only {speedup:.1f}x faster than object walk"
    )


def _hit_rates(delta):
    return {
        name: cell["hits"] / (cell["hits"] + cell["misses"])
        for name, cell in delta.items()
        if cell["hits"] + cell["misses"]
    }


def test_replay_cache_hit_rates(project):
    """A replay workload must actually hit the caches; the per-cache
    rates land in BENCH_kernel.json next to the speedups.

    Two passes: the cold pass populates the arena and the per-node
    id-keyed memos; the warm pass measures the steady-state regime a
    search actually runs in (re-reducing and re-substituting into the
    same goals), where ``subst_vars`` and ``simpl`` must hit their
    floors."""
    names = [n for n in REPLAY_NAMES if n in project.theorem_cutoff]

    cache.clear_caches()
    start = cache.cache_stats()
    _replay_states(project, names)
    cold = cache.stats_delta(start)
    cold_rates = _hit_rates(cold)

    mid = cache.cache_stats()
    _replay_states(project, names)
    warm = cache.stats_delta(mid)
    warm_rates = _hit_rates(warm)

    _RESULTS["cache_stats"] = {
        "deltas": cold,
        "hit_rates": cold_rates,
        "warm_deltas": warm,
        "warm_hit_rates": warm_rates,
        "sizes": {
            name: cell["size"] for name, cell in cache.cache_stats().items()
        },
    }
    assert cold, "replay workload never touched the kernel caches"
    assert any(rate > 0.5 for rate in cold_rates.values()), cold_rates
    for name, floor in MIN_WARM_HIT_RATE.items():
        rate = warm_rates.get(name, 0.0)
        assert rate >= floor, (
            f"{name} warm hit rate {rate:.2f} below its {floor:.0%} floor"
        )


def test_perf_parse_statement(benchmark, env):
    text = (
        "forall (T : Type) (l1 l2 : list T) (a : T), "
        "incl l1 (a :: l2) -> ~ In a l1 -> incl l1 l2"
    )
    benchmark(lambda: parse_statement(env, text))


def test_perf_simpl_arith(benchmark, env):
    term = elaborate_term(env, parse_term("9 * 9 + 7 * 6"), {})
    benchmark(lambda: simpl(env, term))


def test_perf_unify(benchmark, env):
    lhs = parse_statement(env, "forall n m, n + m = m + n")
    rhs = parse_statement(env, "forall a b, a + b = b + a")

    def run():
        unify(lhs, rhs, MetaStore())

    benchmark(run)


def test_perf_tactic_induction(benchmark, env):
    statement = parse_statement(env, "forall n m, n + m = m + n")
    state = initial_state(env, statement)
    node = parse_tactic("induction n; simpl; intros")
    benchmark(lambda: run_tactic(env, state, node))


def test_perf_auto(benchmark, env):
    statement = parse_statement(env, "forall n, n <= S (S (S n))")
    state = initial_state(env, statement)
    node = parse_tactic("auto")
    benchmark(lambda: run_tactic(env, state, node))


def test_perf_full_script(benchmark, env):
    statement = parse_statement(env, "forall n m, n + m = m + n")
    script = (
        "induction n; simpl; intros.\n"
        "- rewrite plus_0_r. reflexivity.\n"
        "- rewrite IHn. rewrite plus_n_Sm. reflexivity."
    )
    benchmark(lambda: run_script(env, statement, script))


def test_perf_checker_validation(benchmark, env):
    checker = ProofChecker(env)
    state = checker.start_text("forall n m, n + m = m + n")

    def run():
        for tactic in ("intros", "induction n", "lia", "simpl", "auto"):
            checker.check(state, tactic)

    benchmark(run)


def test_perf_model_query(benchmark, project):
    from repro.kernel.goals import initial_state as init
    from repro.llm import get_model
    from repro.prompting import PromptBuilder

    model = get_model("gpt-4o")
    theorem = project.theorem("rev_involutive")
    builder = PromptBuilder(project, theorem)
    state = init(project.env_for(theorem), theorem.statement)
    prompt = builder.build(state, [])
    model.generate(prompt, 8)  # warm the context cache
    benchmark(lambda: model.generate(prompt, 8))
