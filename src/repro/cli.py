"""Command-line interface.

Usage::

    python -m repro.cli list [--category CHL]
    python -m repro.cli show tree_name_distinct_head
    python -m repro.cli check
    python -m repro.cli prove rev_involutive --model gpt-4o --hints
    python -m repro.cli prove le_trans --hints --repair-rounds 2
    python -m repro.cli repair le_trans --model gpt-4o --hints
    python -m repro.cli eval --model gpt-4o-mini --n 12
    python -m repro.cli eval --model gpt-4o-mini --n 8 --pass-at-k 4
    python -m repro.cli eval --model gpt-4o-mini --jobs 4 --store runs/eval.jsonl
    python -m repro.cli server --port 8421 --cache runs/service.jsonl
    python -m repro.cli prove rev_involutive --trace runs/trace.jsonl
    python -m repro.cli trace runs/trace.jsonl --summary
    python -m repro.cli serve          # SerAPI-like REPL over stdin
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.corpus.loader import load_project


def _cmd_list(args) -> int:
    project = load_project(check_proofs=not args.fast)
    for theorem in project.theorems:
        if args.category and theorem.category != args.category:
            continue
        print(
            f"{theorem.qualified():45} {theorem.category:12} "
            f"{theorem.proof_tokens:4} tokens"
        )
    return 0


def _cmd_show(args) -> int:
    project = load_project(check_proofs=not args.fast)
    theorem = project.theorem(args.name)
    print(f"Lemma {theorem.name} : {theorem.statement_text}.")
    print("Proof.")
    print(theorem.proof_text)
    print("Qed.")
    print(
        f"\n(file {theorem.file}.v, category {theorem.category}, "
        f"{theorem.proof_tokens} proof tokens)"
    )
    return 0


def _cmd_check(args) -> int:
    # monotonic: a wall-clock (time.time) delta goes negative or wild
    # when NTP steps the clock mid-check.
    started = time.monotonic()
    project = load_project(use_cache=False)
    print(
        f"all {len(project.theorems)} corpus proofs machine-checked in "
        f"{time.monotonic() - started:.1f}s"
    )
    return 0


def _cmd_prove(args) -> int:
    from repro.eval import ExperimentConfig, Runner, render_metrics
    from repro.eval.tasks import TheoremTask

    project = load_project(check_proofs=not args.fast)
    theorem = project.theorem(args.name)
    config = ExperimentConfig(
        width=args.width,
        fuel=args.fuel,
        theorem_deadline=args.theorem_deadline,
        trace=bool(args.trace),
        repair_rounds=args.repair_rounds,
        pipeline_depth=args.pipeline_depth,
    )
    runner = Runner(project, config)
    task = TheoremTask.from_config(args.name, args.model, args.hints, config)
    started = time.monotonic()
    task_result = runner.execute_task(task)
    elapsed = time.monotonic() - started
    record = task_result.record
    if args.trace and task_result.trace:
        from repro.obs import JsonlSink

        written = JsonlSink(args.trace).write(task_result.trace)
        print(f"trace: {written} spans -> {args.trace}")
    runner.metrics.merge(task_result.metrics)
    rejected = runner.metrics.counter("verdict.rejected")
    duplicates = runner.metrics.counter("verdict.duplicate")
    attempt_note = (
        f", {record.attempts} attempts" if record.attempts > 1 else ""
    )
    print(
        f"{record.status} after {record.queries} queries "
        f"({elapsed:.1f}s; rejected {rejected}, duplicates {duplicates}"
        f"{attempt_note})"
    )
    if args.metrics:
        print()
        print(render_metrics(runner.metrics.snapshot()))
    if record.status in ("proved", "repaired") and record.revalidated:
        print(f"generated (re-checked): {record.generated_proof}")
        print(f"human proof was:\n{theorem.proof_text}")
        return 0
    return 1


def _cmd_repair(args) -> int:
    """Show a failed search's failure context, then run the repair loop."""
    from dataclasses import replace

    from repro.eval import ExperimentConfig, Runner
    from repro.eval.tasks import TheoremTask
    from repro.serapi import ProofChecker

    project = load_project(check_proofs=not args.fast)
    theorem = project.theorem(args.name)
    config = ExperimentConfig(
        width=args.width,
        fuel=args.fuel,
        theorem_deadline=args.theorem_deadline,
        pipeline_depth=args.pipeline_depth,
    )
    runner = Runner(project, config)
    base_task = TheoremTask.from_config(
        args.name, args.model, args.hints, config
    )
    base = runner.execute_task(base_task).record
    print(f"initial search: {base.status} after {base.queries} queries")
    if base.status in ("proved", "repaired") and base.revalidated:
        print(f"nothing to repair: {base.generated_proof}")
        return 0
    if base.failure:
        ctx = base.failure
        print(f"failure frontier (depth {ctx['depth']}):")
        for tactic in ctx["prefix"]:
            print(f"    {tactic}.")
        print(f"  rejected: {ctx['failed_tactic']}  [{ctx['verdict']}]")
        print(f"  checker:  {ctx['message']}")
        checker = ProofChecker(project.env_for(theorem))
        state, survived = checker.replay_prefix(
            theorem.statement, ctx["prefix"]
        )
        if len(survived) == len(ctx["prefix"]):
            print("  goal at frontier:")
            for line in state.render().splitlines():
                print(f"    {line}")
    else:
        print("no failure context captured (nothing was ever rejected)")
    record = runner.execute_task(
        replace(base_task, repair_rounds=args.rounds)
    ).record
    print(
        f"repair ({args.rounds} round cap): {record.status}, "
        f"{record.attempts} attempts"
    )
    if record.status == "repaired" and record.revalidated:
        print(f"repaired (re-checked): {record.generated_proof}")
        return 0
    return 1


def _cmd_eval(args) -> int:
    from repro.eval import (
        ExperimentConfig,
        Runner,
        RunStore,
        outcome_row,
        render_metrics,
    )

    backend = args.backend or ("process" if args.jobs > 1 else "serial")
    runner = Runner(
        load_project(check_proofs=not args.fast),
        ExperimentConfig(
            max_theorems=args.n,
            fuel=args.fuel,
            executor=backend,
            jobs=args.jobs,
            theorem_deadline=args.theorem_deadline,
            task_retries=args.task_retries,
            faults=args.faults,
            trace=bool(args.trace),
            repair_rounds=args.repair_rounds,
            pipeline_depth=args.pipeline_depth,
        ),
    )
    if runner.fault_plan is not None:
        print(f"chaos: {runner.fault_plan.describe()}")
    store = RunStore(args.store) if args.store else None
    trace_sink = None
    if args.trace:
        from repro.obs import JsonlSink

        trace_sink = JsonlSink(args.trace)
    for hinted in (False, True):
        row = outcome_row(
            runner.run(
                args.model,
                hinted,
                store=store,
                fresh=args.fresh,
                trace_sink=trace_sink,
            )
        )
        tag = "hints  " if hinted else "vanilla"
        print(
            f"{args.model:20} {tag} proved={row.proved:6.1%} "
            f"stuck={row.stuck:6.1%} fuelout={row.fuelout:6.1%}"
        )
    if args.pass_at_k > 1:
        from repro.eval import coverage_at_k, render_coverage_at_k, sweep_tasks
        from repro.repair.sampling import attempt_tasks

        ks = sorted(
            {1, args.pass_at_k}
            | {2 ** i for i in range(1, 10) if 2 ** i < args.pass_at_k}
        )
        series = {}
        for hinted in (False, True):
            tasks = attempt_tasks(
                sweep_tasks(
                    runner.theorems_for(args.model),
                    args.model,
                    hinted,
                    runner.config,
                ),
                args.pass_at_k,
            )
            records = runner.run_tasks(tasks, store=store, fresh=args.fresh)
            tag = "hints" if hinted else "vanilla"
            series[f"{args.model} {tag}"] = coverage_at_k(records, ks)
        print()
        print(render_coverage_at_k(series))
    cached = runner.metrics.counter("tasks.cached")
    executed = runner.metrics.counter("tasks.executed")
    crashed = runner.metrics.counter("tasks.crashed")
    crash_note = f", {crashed} crashed" if crashed else ""
    print(
        f"[{backend} x{args.jobs}] cells: {executed} searched, "
        f"{cached} served from store{crash_note}"
    )
    if store is not None and store.quarantined:
        print(
            f"warning: {store.quarantined} corrupt store line(s) moved to "
            f"{store.quarantine_path()}"
        )
    if store is not None:
        runner.metrics.dump(store.metrics_path())
        print(f"run store: {store.path} ({len(store)} records); "
              f"metrics: {store.metrics_path()}")
    if trace_sink is not None:
        print(f"trace: {trace_sink.spans_written} spans -> {args.trace}")
    if args.metrics:
        print()
        print(render_metrics(runner.metrics.snapshot()))
    return 0


def _cmd_server(args) -> int:
    if args.cluster:
        from repro.service import ClusterConfig, serve_cluster_forever

        if args.trace:
            print(
                "warning: --trace is per-process; cluster workers do "
                "not trace (run a single-process server to trace jobs)"
            )
        return serve_cluster_forever(
            ClusterConfig(
                host=args.host,
                port=args.port,
                workers=args.cluster,
                threads=args.workers,
                worker_max_queued=args.max_queued,
                batch_window=args.batch_window,
                max_batch_size=args.max_batch_size,
                state_dir=args.state_dir,
                journal_path=args.journal,
                default_deadline=args.deadline,
                fast=args.fast,
                query_overhead=args.query_overhead,
            )
        )
    from repro.service import ServerConfig, serve_forever

    return serve_forever(
        ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queued=args.max_queued,
            batch_window=args.batch_window,
            max_batch_size=args.max_batch_size,
            cache_path=args.cache,
            default_deadline=args.deadline,
            fast=args.fast,
            query_overhead=args.query_overhead,
            trace_path=args.trace,
            pipeline_depth=args.pipeline_depth,
        )
    )


def _cmd_trace(args) -> int:
    from repro.obs import group_traces, load_spans, render_summary, render_trace

    spans = load_spans(args.path)
    if not spans:
        print(f"no spans in {args.path}")
        return 1
    traces = group_traces(spans)
    selected = (
        {t: s for t, s in traces.items() if t.startswith(args.trace_id)}
        if args.trace_id
        else traces
    )
    if not selected:
        known = ", ".join(sorted(traces))
        print(f"no trace matching {args.trace_id!r}; have: {known}")
        return 1
    for trace_id, trace_spans in sorted(selected.items()):
        print(f"trace {trace_id}")
        print(render_trace(trace_spans))
        if args.summary:
            print()
            print(render_summary(trace_spans))
        print()
    return 0


def _cmd_serve(args) -> int:
    from repro.serapi import SerapiServer

    project = load_project(check_proofs=not args.fast)
    server = SerapiServer(project.env)
    print("; repro SerAPI-like server — e.g. (NewDoc \"forall n, n = n\")")
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        if line in ("quit", "exit"):
            break
        try:
            for answer in server.handle_text(line):
                print(answer)
        except Exception as exc:  # REPL robustness
            print(f'(Answer 0 (CoqExn "{exc}"))')
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="trust corpus proofs instead of re-checking them at load",
    )
    parser.add_argument(
        "--no-kernel-cache",
        action="store_true",
        help="disable kernel memo caches (debugging: pristine code paths)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list corpus theorems")
    p_list.add_argument("--category", choices=["Utilities", "CHL", "FileSystem"])
    p_list.set_defaults(fn=_cmd_list)

    p_show = sub.add_parser("show", help="show a theorem and its proof")
    p_show.add_argument("name")
    p_show.set_defaults(fn=_cmd_show)

    p_check = sub.add_parser("check", help="machine-check every corpus proof")
    p_check.set_defaults(fn=_cmd_check)

    p_prove = sub.add_parser("prove", help="search for a proof with a model")
    p_prove.add_argument("name")
    p_prove.add_argument("--model", default="gpt-4o")
    p_prove.add_argument("--hints", action="store_true")
    p_prove.add_argument("--width", type=int, default=8)
    p_prove.add_argument("--fuel", type=int, default=128)
    p_prove.add_argument(
        "--metrics",
        action="store_true",
        help="print per-stage timing and verdict histogram",
    )
    p_prove.add_argument(
        "--theorem-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-theorem wall-clock budget (clean TIMEOUT outcome)",
    )
    p_prove.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record the search as a span-tree JSONL (render: repro trace)",
    )
    p_prove.add_argument(
        "--repair-rounds",
        type=int,
        default=0,
        metavar="N",
        help="checker-error feedback rounds after a failed search "
        "(0 disables the repair loop)",
    )
    p_prove.add_argument(
        "--pipeline-depth",
        type=int,
        default=0,
        metavar="K",
        help="generation calls in flight per search (0 = serial loop; "
        "1 = pipelined, byte-identical to serial; >=2 overlaps "
        "generation with checking)",
    )
    p_prove.set_defaults(fn=_cmd_prove)

    p_repair = sub.add_parser(
        "repair",
        help="run a search, show its failure context, then repair it",
    )
    p_repair.add_argument("name")
    p_repair.add_argument("--model", default="gpt-4o")
    p_repair.add_argument("--hints", action="store_true")
    p_repair.add_argument("--width", type=int, default=8)
    p_repair.add_argument("--fuel", type=int, default=128)
    p_repair.add_argument(
        "--rounds",
        type=int,
        default=2,
        metavar="N",
        help="repair-round cap (default 2)",
    )
    p_repair.add_argument(
        "--theorem-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="shared wall-clock budget across the initial search and "
        "every repair round",
    )
    p_repair.add_argument(
        "--pipeline-depth",
        type=int,
        default=0,
        metavar="K",
        help="generation calls in flight per search (0 = serial loop)",
    )
    p_repair.set_defaults(fn=_cmd_repair)

    p_eval = sub.add_parser("eval", help="mini evaluation sweep")
    p_eval.add_argument("--model", default="gpt-4o")
    p_eval.add_argument("--n", type=int, default=12)
    p_eval.add_argument("--fuel", type=int, default=64)
    p_eval.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel workers (thread/process backends)",
    )
    p_eval.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="execution backend (default: process when --jobs > 1)",
    )
    p_eval.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL run store; completed cells are skipped on rerun",
    )
    p_eval.add_argument(
        "--fresh",
        action="store_true",
        help="re-execute cells even when the run store has them",
    )
    p_eval.add_argument(
        "--metrics",
        action="store_true",
        help="print per-stage timing and verdict histogram",
    )
    p_eval.add_argument(
        "--theorem-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-theorem wall-clock budget (clean TIMEOUT outcome)",
    )
    p_eval.add_argument(
        "--task-retries",
        type=int,
        default=2,
        metavar="N",
        help="isolated re-runs of a task whose worker died, before CRASH",
    )
    p_eval.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="chaos fault-injection spec, e.g. "
        "'seed=7,transient=0.2,ratelimit=0.1' (env: REPRO_FAULTS)",
    )
    p_eval.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record every searched cell as span-tree JSONL "
        "(outcome records are unaffected; render: repro trace)",
    )
    p_eval.add_argument(
        "--repair-rounds",
        type=int,
        default=0,
        metavar="N",
        help="checker-error feedback rounds per failed cell "
        "(0 disables the repair loop)",
    )
    p_eval.add_argument(
        "--pipeline-depth",
        type=int,
        default=0,
        metavar="K",
        help="generation calls in flight per search (0 = serial loop; "
        "1 = pipelined, byte-identical to serial; >=2 overlaps "
        "generation with checking; outcome records are unaffected)",
    )
    p_eval.add_argument(
        "--pass-at-k",
        type=int,
        default=1,
        metavar="K",
        help="also run K independently-seeded attempts per cell and "
        "report unbiased coverage@k",
    )
    p_eval.set_defaults(fn=_cmd_eval)

    p_server = sub.add_parser(
        "server",
        help="HTTP prover service: concurrent jobs, micro-batched "
        "dispatch, shared proof cache (POST /prove)",
    )
    p_server.add_argument("--host", default="127.0.0.1")
    p_server.add_argument("--port", type=int, default=8421)
    p_server.add_argument(
        "--workers", type=int, default=4, help="concurrent proof searches"
    )
    p_server.add_argument(
        "--max-queued",
        type=int,
        default=32,
        help="admission bound beyond in-flight jobs (429 on overflow)",
    )
    p_server.add_argument(
        "--batch-window",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="micro-batch collection window for model dispatch",
    )
    p_server.add_argument(
        "--max-batch-size",
        type=int,
        default=8,
        help="model queries per dispatched batch (1 disables batching)",
    )
    p_server.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="JSONL proof cache (RunStore format; warm-starts from "
        "prior sweeps and serves repeats without a search)",
    )
    p_server.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock budget (clean TIMEOUT)",
    )
    p_server.add_argument(
        "--query-overhead",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="simulated per-dispatch endpoint latency (benchmarking)",
    )
    p_server.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record every job's search as span-tree JSONL "
        "(render: repro trace)",
    )
    p_server.add_argument(
        "--pipeline-depth",
        type=int,
        default=0,
        metavar="K",
        help="generation calls in flight per proof job (0 = serial "
        "search loop)",
    )
    p_server.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="N",
        help="serve as a supervised N-process cluster (consistent-hash "
        "router, crash recovery, job journal); --workers then sets "
        "threads per worker process",
    )
    p_server.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="cluster durability root: job journal, router proof "
        "cache, and one proof-cache shard per worker (absent = "
        "in-memory, no crash recovery)",
    )
    p_server.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="cluster job journal path (overrides the --state-dir "
        "default <dir>/journal.jsonl)",
    )
    p_server.set_defaults(fn=_cmd_server)

    p_trace = sub.add_parser(
        "trace",
        help="render a recorded span-tree JSONL as an annotated tree",
    )
    p_trace.add_argument("path", help="JSONL written by --trace")
    p_trace.add_argument(
        "--trace-id",
        default=None,
        metavar="PREFIX",
        help="only render traces whose id starts with PREFIX",
    )
    p_trace.add_argument(
        "--summary",
        action="store_true",
        help="append a per-stage self-time table to each trace",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_serve = sub.add_parser(
        "serve",
        help="SerAPI-like REPL on stdin (machine protocol; for the "
        "HTTP prover service see 'server')",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    if args.no_kernel_cache:
        import os

        from repro.kernel import cache as kernel_cache

        # The env var makes process-pool workers inherit the setting.
        os.environ["REPRO_KERNEL_CACHE"] = "0"
        kernel_cache.configure(False)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
