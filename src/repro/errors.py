"""Exception hierarchy shared across the repro packages.

Every error raised by the proof kernel, the tactic interpreter, the
SerAPI-like session layer, and the corpus loader derives from
:class:`ReproError`, so callers can catch one base class at API
boundaries (e.g. the proof-search engine treats any ``ReproError``
raised while executing a tactic as "tactic rejected by the checker").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KernelError(ReproError):
    """An error inside the proof kernel (terms, types, environment)."""


class ParseError(KernelError):
    """The concrete-syntax parser rejected its input."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class TypeError_(KernelError):
    """A term failed type inference / elaboration.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class UnificationError(KernelError):
    """Two terms (or types) could not be unified."""


class ReductionError(KernelError):
    """Evaluation/normalization failed or exceeded its step budget."""


class EnvironmentError_(KernelError):
    """A name was missing from or duplicated in a global environment."""


class TacticError(ReproError):
    """A tactic could not be applied to the current proof state.

    This is the "rejected by Coq" outcome in the paper's validity
    criterion for LLM-generated tactics.
    """


class TacticTimeout(TacticError):
    """A tactic exceeded the checker's wall-clock budget (paper: 5 s)."""


class ScriptError(ReproError):
    """A whole proof script failed (bad bullet structure, early Qed...)."""


class SessionError(ReproError):
    """Protocol misuse in the SerAPI-like session layer."""


class CorpusError(ReproError):
    """The benchmark corpus is malformed (bad imports, unproved lemma)."""


class GenerationError(ReproError):
    """The (simulated) LLM failed to produce candidates."""


class TransientModelError(GenerationError):
    """A retryable model failure (the API analogue of an HTTP 5xx).

    :class:`repro.llm.resilient.ResilientGenerator` retries these with
    backoff; anything else raised by a generator is treated as
    permanent.
    """


class RateLimitError(TransientModelError):
    """The model endpoint rate-limited the query (HTTP 429): retryable,
    but with a longer backoff floor than a plain transient error."""


class GenerationTimeout(TransientModelError):
    """A model query exceeded its per-query time budget: retryable."""


class MalformedResponseError(TransientModelError):
    """The model returned a malformed or truncated payload that could
    not be decoded into candidates: retryable (re-querying a
    deterministic endpoint after a transport-level corruption yields
    the intact response)."""


class ModelExhaustedError(GenerationError):
    """The primary model failed every retry (or its circuit breaker is
    open) and no fallback generator is configured.  The eval layer
    converts this into a ``CRASH`` outcome for the task instead of
    aborting the sweep."""


class ExecutorSetupError(ReproError):
    """An execution backend could not start its workers at all (as
    opposed to a worker dying mid-sweep, which is retried)."""
