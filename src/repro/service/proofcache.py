"""The service's shared, persistent proof cache.

One search result is worth caching forever: a task's outcome is a pure
function of its :meth:`~repro.eval.tasks.TheoremTask.cache_key`
(content hash over theorem, model, and every search knob, versioned by
``CACHE_KEY_VERSION``), so the service can serve any repeat request —
from any client, across restarts — without a single model query.

Two layers:

* **Result cache** — backed by the evaluation layer's JSONL
  :class:`~repro.eval.store.RunStore`, the *same file format* sweeps
  write.  Point the server at an old sweep's store and it boots warm;
  conversely a server's cache file resumes an offline ``eval`` run.
  With no path, a **bounded** in-memory table serves the process
  lifetime: a store-less server is exactly the long-running deployment
  where an unbounded dict of OutcomeRecords (each carrying a generated
  proof) is a slow memory leak, so the fallback reuses the kernel's
  FIFO :class:`~repro.kernel.cache.BoundedCache` (unregistered — the
  per-task kernel-cache clear must never wipe proof results) and
  surfaces its eviction count in :meth:`ProofCache.stats`.
* **Single-flight admission** — identical requests that arrive while
  the first is still searching must not each burn a 128-query fuel
  budget.  :meth:`ProofCache.admit` hands the first caller a freshly
  created entry (the *leader*, who runs the search) and every
  concurrent duplicate the same entry (*followers*, who just wait on
  the leader's job).  The key leaves the in-flight table only via
  :meth:`release`, after the result has been published.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple, TypeVar

from repro.eval.store import OutcomeRecord, RunStore
from repro.eval.tasks import TheoremTask
from repro.kernel.cache import BoundedCache

__all__ = ["ProofCache", "DEFAULT_MEMORY_CAPACITY"]

T = TypeVar("T")

# Store-less fallback bound: at ~1 KiB per record this caps the
# in-memory table around a few MiB while still covering far more
# distinct (theorem, model, knobs) cells than any benchmark sweep.
DEFAULT_MEMORY_CAPACITY = 4096


class ProofCache:
    """Cross-request result cache + single-flight deduplication."""

    def __init__(
        self,
        path=None,
        metrics=None,
        memory_capacity: int = DEFAULT_MEMORY_CAPACITY,
    ) -> None:
        self.store: Optional[RunStore] = (
            RunStore(path) if path is not None else None
        )
        self.metrics = metrics
        self._lock = threading.Lock()
        # Store-less fallback (a read-through layer over the store is
        # unnecessary: RunStore keeps its own in-memory index).  FIFO-
        # bounded so a long-lived server cannot grow without limit;
        # register=False keeps it out of the kernel-cache registry,
        # whose per-task clear would otherwise wipe proof results.
        self._memory = BoundedCache(
            "service.proofcache", memory_capacity, register=False
        )
        # key -> whatever object admit()'s factory produced (a Job, in
        # the scheduler's case), while that work is in flight.
        self._inflight: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[OutcomeRecord]:
        """The cached record for ``key``, or None."""
        if self.store is not None and key in self.store:
            self._incr("service.cache.hits")
            return self.store.get(key)
        record = self._memory.get(key)
        if record is not None:
            self._incr("service.cache.hits")
            return record
        self._incr("service.cache.misses")
        return None

    def put(self, task: TheoremTask, record: OutcomeRecord) -> None:
        """Publish one completed search (persisted when backed by a file)."""
        if self.store is not None:
            self.store.put(task, record)  # RunStore.put is thread-safe
        else:
            before = self._memory.evictions
            self._memory.put(task.cache_key(), record)
            if self._memory.evictions > before:
                self._incr("service.cache.evictions")

    # ------------------------------------------------------------------
    # Single-flight admission
    # ------------------------------------------------------------------

    def admit(
        self, key: str, factory: Callable[[], T]
    ) -> Tuple[T, bool]:
        """Admit work for ``key``: ``(entry, created)``.

        The first caller for an in-flight key gets ``factory()``'s
        fresh entry and ``created=True`` (it owns running the work and
        must call :meth:`release` when the result is published).
        Concurrent duplicates get the *same* entry with
        ``created=False`` — one search, many waiters.  The factory runs
        under the admission lock, so it must be cheap (constructing a
        job record, not performing work).
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._incr("service.singleflight.hits")
                return existing, False  # type: ignore[return-value]
            entry = factory()
            self._inflight[key] = entry
            return entry, True

    def release(self, key: str) -> None:
        """Retire an in-flight key (call after :meth:`put`).

        Publish-then-release ordering means a request arriving in
        between sees either the in-flight entry or the cached record —
        never a gap that would start a second search.
        """
        with self._lock:
            self._inflight.pop(key, None)

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Cache gauges for ``/metrics``."""
        stats = {
            "persistent": self.store is not None,
            "records": (
                len(self.store)
                if self.store is not None
                else len(self._memory.data)
            ),
            "inflight": self.inflight_count(),
            "path": str(self.store.path) if self.store is not None else None,
        }
        if self.store is None:
            stats["capacity"] = self._memory.capacity
            stats["evictions"] = self._memory.evictions
        return stats

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)
