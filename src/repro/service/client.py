"""A stdlib HTTP client for the prover service.

Thin and dependency-free (``urllib``): the loadgen, the smoke tests,
the cluster router, and any external tool drive the service through
this.  One instance is safe to share across threads — each call opens
its own connection.

Transport resilience: a worker restart (or any network blip) surfaces
as ``ECONNREFUSED``/``ECONNRESET``/read timeouts mid-call.  Those are
safe to retry — ``POST /prove`` is idempotent (the service
single-flights on :meth:`~repro.eval.tasks.TheoremTask.cache_key`, so
a duplicate submit joins the in-flight job instead of starting a
second search) and every ``GET`` is read-only — so :meth:`_request`
retries transient transport errors with bounded, deterministic
seeded backoff (:func:`~repro.llm.resilient.stable_jitter`).  HTTP
*error responses* (4xx/5xx) are answers, not transport faults, and
are never retried.  Exhaustion raises :class:`ProverTransportError`;
``client.transport_retries`` counts retries for observability.

Usage::

    client = ProverClient("http://127.0.0.1:8421")
    job = client.prove(theorem="rev_involutive", model="gpt-4o")
    record = client.wait(job["job"], timeout=120.0)
    if record["record"]["status"] == "proved":
        print(record["record"]["generated_proof"])
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Callable, Optional

from repro.errors import ReproError
from repro.llm.resilient import stable_jitter

__all__ = [
    "ProverClient",
    "ProverServiceError",
    "ProverTransportError",
    "JobTimeout",
]


class ProverServiceError(ReproError):
    """An HTTP error from the service, with its status and payload."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )


class ProverTransportError(ReproError):
    """The service could not be reached within the retry budget."""


class JobTimeout(ReproError):
    """A job did not finish within the caller's wait budget."""


class ProverClient:
    """Blocking JSON client over the service's HTTP routes."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 3,
        retry_base_delay: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_base_delay = retry_base_delay
        self.sleep = sleep
        #: Transport retries performed over this client's lifetime.
        self.transport_retries = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _open(self, request) -> dict:
        with urllib.request.urlopen(
            request, timeout=self.timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.transport_retries += 1
                delay = self.retry_base_delay * 2 ** (attempt - 1)
                self.sleep(
                    delay * (1.0 + stable_jitter(path, attempt))
                )
            try:
                return self._open(request)
            except urllib.error.HTTPError as exc:
                # A status line came back: this is a response, not a
                # transport fault — surface it without retrying.
                try:
                    payload = json.loads(exc.read().decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    payload = {"error": str(exc)}
                raise ProverServiceError(exc.code, payload) from exc
            except (OSError, http.client.HTTPException) as exc:
                # ECONNREFUSED/ECONNRESET/timeouts/torn responses — the
                # shapes a restarting worker produces.  URLError is an
                # OSError subclass, so this covers urlopen's wrapping.
                last = exc
        raise ProverTransportError(
            f"{method} {path} failed after {self.retries + 1} attempts: "
            f"{type(last).__name__}: {last}"
        ) from last

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def prove(self, **task_fields) -> dict:
        """``POST /prove``; returns the admission payload (job id).

        Keyword arguments are the task fields (``theorem``/``goal``,
        ``model``, ``hinted``, ``width``, ``fuel``, …).
        """
        return self._request("POST", "/prove", task_fields)

    def job(self, job_id: str, wait: Optional[float] = None) -> dict:
        """``GET /jobs/<id>``; ``wait`` long-polls server-side."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 5.0,
    ) -> dict:
        """Block until the job finishes; returns the final status JSON.

        Uses server-side long-polling (bounded by ``poll`` per round
        trip) so the job usually returns on the first response after it
        completes rather than on the next poll tick.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise JobTimeout(
                    f"job {job_id} still unfinished after {timeout:g}s"
                )
            status = self.job(job_id, wait=min(poll, max(remaining, 0.0)))
            if status.get("state") in ("done", "failed"):
                return status

    def prove_and_wait(
        self, timeout: float = 300.0, poll: float = 5.0, **task_fields
    ) -> dict:
        """Submit and block for the result in one call."""
        admitted = self.prove(**task_fields)
        if admitted.get("state") in ("done", "failed"):
            return admitted  # warm cache hit answered inline
        return self.wait(admitted["job"], timeout=timeout, poll=poll)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """``GET /metrics`` in Prometheus text exposition format."""
        request = urllib.request.Request(
            self.base_url + "/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ProverServiceError(
                exc.code, {"error": str(exc)}
            ) from exc
