"""A stdlib HTTP client for the prover service.

Thin and dependency-free (``urllib``): the loadgen, the smoke tests,
and any external tool drive the service through this.  One instance is
safe to share across threads — each call opens its own connection.

Usage::

    client = ProverClient("http://127.0.0.1:8421")
    job = client.prove(theorem="rev_involutive", model="gpt-4o")
    record = client.wait(job["job"], timeout=120.0)
    if record["record"]["status"] == "proved":
        print(record["record"]["generated_proof"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.errors import ReproError

__all__ = ["ProverClient", "ProverServiceError", "JobTimeout"]


class ProverServiceError(ReproError):
    """An HTTP error from the service, with its status and payload."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )


class JobTimeout(ReproError):
    """A job did not finish within the caller's wait budget."""


class ProverClient:
    """Blocking JSON client over the service's HTTP routes."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": str(exc)}
            raise ProverServiceError(exc.code, payload) from exc

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def prove(self, **task_fields) -> dict:
        """``POST /prove``; returns the admission payload (job id).

        Keyword arguments are the task fields (``theorem``/``goal``,
        ``model``, ``hinted``, ``width``, ``fuel``, …).
        """
        return self._request("POST", "/prove", task_fields)

    def job(self, job_id: str, wait: Optional[float] = None) -> dict:
        """``GET /jobs/<id>``; ``wait`` long-polls server-side."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 5.0,
    ) -> dict:
        """Block until the job finishes; returns the final status JSON.

        Uses server-side long-polling (bounded by ``poll`` per round
        trip) so the job usually returns on the first response after it
        completes rather than on the next poll tick.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise JobTimeout(
                    f"job {job_id} still unfinished after {timeout:g}s"
                )
            status = self.job(job_id, wait=min(poll, max(remaining, 0.0)))
            if status.get("state") in ("done", "failed"):
                return status

    def prove_and_wait(
        self, timeout: float = 300.0, poll: float = 5.0, **task_fields
    ) -> dict:
        """Submit and block for the result in one call."""
        admitted = self.prove(**task_fields)
        if admitted.get("state") in ("done", "failed"):
            return admitted  # warm cache hit answered inline
        return self.wait(admitted["job"], timeout=timeout, poll=poll)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """``GET /metrics`` in Prometheus text exposition format."""
        request = urllib.request.Request(
            self.base_url + "/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ProverServiceError(
                exc.code, {"error": str(exc)}
            ) from exc
