"""The supervised multi-process prover cluster.

A thin **router** in front of N forked worker processes (each a full
single-process :class:`~repro.service.server.ProverService` — own
kernel arena, micro-batcher, scheduler, proof-cache shard), under a
:class:`~repro.service.supervisor.Supervisor` that health-probes,
restarts, and circuit-breaks them.  This is the client/server/executor
tier split of CodeV-SVA applied to the prover: the router owns
admission, placement, and durability; the workers own execution.

**Placement** is consistent hashing: a job's routing key (the task's
:meth:`~repro.eval.tasks.TheoremTask.cache_key`, or a content hash of
a raw-``goal`` body) lands on a hash ring with virtual nodes, so each
worker's proof-cache shard sees a stable key range, and an unroutable
worker's range flows to the next healthy sibling instead of
rehashing the world.

**Durability** is a write-ahead job journal
(:mod:`repro.service.journal`): ``admitted`` before the caller sees
202, ``dispatched`` per placement, ``done``/``failed`` terminally.  A
crashed worker re-dispatches; a full router restart replays every
unfinished job; and because a task's outcome is a pure function of
its cache key, the replayed records are byte-identical to a
fault-free run — the same determinism contract the golden stores
enforce.

**Graceful degradation** is a ladder driven by supervisor health::

    0 healthy     all routes normal
    1 shed_adhoc  some workers down -> raw-`goal` requests shed (429)
    2 cache_only  no routable workers -> proof-cache hits only (503 else)
    3 draining    SIGTERM/close -> refuse all new work (503)

``/healthz`` carries an explicit ``degraded`` marker + ladder name;
``/metrics`` exports ``repro_cluster_degraded`` and the supervision
counters (``repro_cluster_worker_restarts_total``, journal replay and
quarantine tallies).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.eval.instrumentation import Metrics
from repro.eval.store import OutcomeRecord
from repro.eval.tasks import CACHE_KEY_VERSION, task_from_json
from repro.llm import get_model
from repro.errors import GenerationError
from repro.obs.prometheus import render_prometheus
from repro.service.client import (
    ProverClient,
    ProverServiceError,
    ProverTransportError,
)
from repro.service.journal import JobJournal
from repro.service.proofcache import ProofCache
from repro.service.server import build_http_server, install_sigterm_drain
from repro.service.supervisor import (
    Supervisor,
    SupervisorConfig,
    WorkerSpec,
)

__all__ = [
    "ClusterConfig",
    "ClusterJob",
    "HashRing",
    "ProverCluster",
    "DEGRADATION_LADDER",
    "serve_cluster_forever",
]

DEGRADATION_LADDER = ("healthy", "shed_adhoc", "cache_only", "draining")


@dataclass(frozen=True)
class ClusterConfig:
    """Router + fleet knobs (worker knobs fan out into WorkerSpecs)."""

    host: str = "127.0.0.1"
    port: int = 8421
    workers: int = 2  # worker *processes*
    threads: int = 4  # concurrent searches per worker
    worker_max_queued: int = 64
    batch_window: float = 0.01
    max_batch_size: int = 8
    # Durability roots.  ``state_dir`` holds the journal, the router
    # proof cache, and one proof-cache shard per worker; explicit
    # paths override the derived ones.
    state_dir: Optional[str] = None
    journal_path: Optional[str] = None
    default_deadline: Optional[float] = None
    fast: bool = True
    query_overhead: float = 0.0
    # Placement / admission.
    vnodes: int = 64  # ring points per worker
    max_inflight: int = 256  # unfinished router jobs before 429
    redispatch_limit: int = 5  # per-job placement attempts after loss
    dispatch_wait: float = 30.0  # seconds to wait for a routable worker
    poll: float = 2.0  # router->worker long-poll per round
    # Chaos (see testing/faults.ClusterFaultPlan).
    cluster_faults: Optional[str] = None
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("cluster needs at least 1 worker process")


class HashRing:
    """Consistent hashing with virtual nodes over worker indices."""

    def __init__(self, size: int, vnodes: int = 64) -> None:
        self.size = size
        points: List[Tuple[int, int]] = []
        for index in range(size):
            for v in range(vnodes):
                digest = hashlib.sha256(
                    f"worker-{index}#{v}".encode("utf-8")
                ).hexdigest()
                points.append((int(digest[:16], 16), index))
        points.sort()
        self._points = points

    @staticmethod
    def point_for(key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return int(digest[:16], 16)

    def lookup(self, key: str, routable) -> Optional[int]:
        """The first routable worker clockwise of ``key``'s point.

        Skipping unroutable workers is what reroutes a tripped shard's
        key range to its ring sibling — no table rebuild, no rehash.
        """
        if not self._points:
            return None
        start = bisect.bisect_left(self._points, (self.point_for(key), -1))
        seen: set = set()
        for step in range(len(self._points)):
            _, index = self._points[(start + step) % len(self._points)]
            if index in seen:
                continue
            seen.add(index)
            if routable(index):
                return index
            if len(seen) == self.size:
                break
        return None

    def owner(self, key: str) -> Optional[int]:
        """The key's home shard, ignoring health (stable placement)."""
        return self.lookup(key, lambda index: True)


class ClusterJob:
    """One admitted request and its routed lifecycle."""

    def __init__(self, job_id: str, body: dict, key: str, task=None) -> None:
        self.id = job_id
        self.body = body
        self.key = key
        self.task = task  # None for raw-`goal` bodies
        self.state = "admitted"  # admitted -> dispatched -> done|failed
        self.worker: Optional[int] = None
        self.worker_job: Optional[str] = None
        self.record: Optional[dict] = None
        self.error: Optional[str] = None
        self.cached = False
        self.replayed = False
        self.dedup_hits = 0
        self.redispatches = 0
        self.created_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self.done = threading.Event()

    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def to_json(self) -> dict:
        now = time.monotonic()
        out = {
            "id": self.id,
            "state": self.state,
            "key": self.key,
            "worker": self.worker,
            "cached": self.cached,
            "replayed": self.replayed,
            "dedup_hits": self.dedup_hits,
            "redispatches": self.redispatches,
            "elapsed": (self.finished_at or now) - self.created_at,
        }
        if self.record is not None:
            out["record"] = self.record
        if self.error is not None:
            out["error"] = self.error
        return out


class _ClusterUnavailable(Exception):
    """No routable worker inside the dispatch budget."""


class ProverCluster:
    """Composition root: supervisor + ring + journal + router cache."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.metrics = Metrics()
        self.started_at = time.monotonic()
        state_dir = (
            Path(self.config.state_dir)
            if self.config.state_dir is not None
            else None
        )
        if state_dir is not None:
            state_dir.mkdir(parents=True, exist_ok=True)
        self._state_dir = state_dir
        journal_path = self.config.journal_path or (
            str(state_dir / "journal.jsonl") if state_dir else None
        )
        self.journal: Optional[JobJournal] = (
            JobJournal(journal_path) if journal_path else None
        )
        self.cache = ProofCache(
            str(state_dir / "router-cache.jsonl") if state_dir else None,
            metrics=self.metrics,
        )
        specs = [
            WorkerSpec(
                index=index,
                host=self.config.host,
                threads=self.config.threads,
                max_queued=self.config.worker_max_queued,
                batch_window=self.config.batch_window,
                max_batch_size=self.config.max_batch_size,
                cache_path=(
                    str(state_dir / f"shard-{index}.jsonl")
                    if state_dir
                    else None
                ),
                default_deadline=self.config.default_deadline,
                query_overhead=self.config.query_overhead,
                fast=self.config.fast,
                cluster_faults=self.config.cluster_faults,
                state_dir=(
                    str(state_dir / "faults") if state_dir else None
                ),
            )
            for index in range(self.config.workers)
        ]
        self.supervisor = Supervisor(
            specs, self.config.supervisor, metrics=self.metrics
        )
        self.ring = HashRing(self.config.workers, self.config.vnodes)
        self._lock = threading.RLock()
        self._jobs: Dict[str, ClusterJob] = {}
        self._by_key: Dict[str, ClusterJob] = {}  # unfinished only
        self._seq = 0
        self._draining = False
        self._aborted = False
        self._started = False
        self.replayed_jobs = 0
        # Seed the supervision counters so /metrics always exposes the
        # families (a scrape of a healthy cluster must show zeroes, not
        # absent series).
        for name in (
            "cluster.worker_restarts",
            "cluster.worker_deaths",
            "cluster.breaker_opens",
            "cluster.jobs.redispatched",
            "cluster.journal.replayed",
        ):
            self.metrics.incr(name, 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Boot the fleet, then replay unfinished journaled jobs."""
        if self._started:
            return
        self._started = True
        self.supervisor.start()
        if self.journal is not None:
            self.metrics.incr(
                "cluster.journal.quarantined", self.journal.quarantined
            )
            self._replay()

    def _replay(self) -> None:
        """Rebuild router state from the journal after a restart.

        Finished jobs come back queryable (and re-warm the router
        cache); unfinished jobs — admitted or dispatched when the
        previous router died — are re-dispatched through the normal
        placement path.  Execution is the source of truth: a job that
        a worker actually finished but the router never journaled as
        ``done`` re-executes to the byte-identical record (or hits the
        worker's shard cache).
        """
        assert self.journal is not None
        for entry in self.journal.entries.values():
            number = _job_number(entry.job)
            if number is not None:
                self._seq = max(self._seq, number)
        for entry in self.journal.finished():
            if entry.body is None:
                continue
            job = ClusterJob(
                entry.job, entry.body, entry.key, _task_of(entry.body)
            )
            job.replayed = True
            if entry.record is not None:
                job.record = entry.record
                job.state = "done"
                if job.task is not None:
                    self.cache.put(
                        job.task, OutcomeRecord.from_json(entry.record)
                    )
            else:
                job.error = entry.error
                job.state = "failed"
            job.finished_at = job.created_at
            job.done.set()
            self._jobs[job.id] = job
        for entry in self.journal.pending():
            job = ClusterJob(
                entry.job, entry.body, entry.key, _task_of(entry.body)
            )
            job.replayed = True
            self._jobs[job.id] = job
            self._by_key[job.key] = job
            self.replayed_jobs += 1
            self.metrics.incr("cluster.journal.replayed")
            self._spawn_watcher(job)

    def close(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful drain: finish admitted jobs, then stop the fleet."""
        with self._lock:
            self._draining = True
            unfinished = [
                job for job in self._jobs.values() if not job.finished()
            ]
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        for job in unfinished:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not job.done.wait(remaining):
                drained = False
                break
        fleet_clean = self.supervisor.stop(
            timeout=None
            if deadline is None
            else max(1.0, deadline - time.monotonic())
        )
        return drained and fleet_clean

    def abort(self) -> None:
        """Crash-stop (chaos harness): SIGKILL the fleet, no drain.

        Leaves the journal with unfinished entries — exactly the state
        a power loss would — so a fresh cluster on the same state dir
        exercises full replay.  The abort flag freezes every watcher
        thread's journaling first: a zombie watcher of the dead router
        must never append terminal events to a journal a successor is
        about to replay.
        """
        with self._lock:
            self._draining = True
            self._aborted = True
        for index in range(self.supervisor.size()):
            self.supervisor.kill_worker(index)
        self.supervisor.stop(timeout=1.0)

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------

    def degradation_level(self) -> int:
        if self._draining:
            return 3
        healthy = self.supervisor.healthy_count()
        if healthy == 0:
            return 2
        if healthy < self.supervisor.size():
            return 1
        return 0

    # ------------------------------------------------------------------
    # Request handling (same transport-independent surface as
    # ProverService — build_http_server serves either)
    # ------------------------------------------------------------------

    def submit(self, body: dict) -> Tuple[int, dict]:
        """Handle a ``POST /prove`` body: ``(http_status, payload)``."""
        if not self._started:
            self.start()
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        level = self.degradation_level()
        if level >= 3:
            return 503, {
                "error": "cluster is draining; not accepting work",
                "degraded": DEGRADATION_LADDER[level],
            }
        body = dict(body)
        is_goal = "goal" in body
        if is_goal and level >= 1:
            # First rung of the ladder: ad-hoc goals re-elaborate on
            # every replay and cannot be cache-served, so they are the
            # first load shed when capacity degrades.
            self.metrics.incr("cluster.jobs.shed")
            return 429, {
                "error": "cluster degraded: raw-goal requests are "
                "shed until the fleet recovers; retry later",
                "degraded": DEGRADATION_LADDER[level],
            }
        task = None
        if is_goal:
            goal = body.get("goal")
            if not isinstance(goal, str) or not goal.strip():
                return 400, {"error": "'goal' must be a statement string"}
            key = "goal:" + hashlib.sha256(
                json.dumps(
                    body, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            ).hexdigest()
        else:
            if (
                self.config.default_deadline is not None
                and body.get("theorem_deadline") is None
            ):
                # Fold the cluster deadline in *before* keying (and
                # before the body ships to a worker) so a bounded cell
                # never aliases an unbounded one — same rule as the
                # scheduler's.
                body["theorem_deadline"] = self.config.default_deadline
            try:
                task = task_from_json(body)
            except ValueError as exc:
                return 400, {"error": str(exc)}
            try:
                get_model(task.model)
            except GenerationError as exc:
                return 400, {"error": str(exc)}
            key = task.cache_key()
            record = self.cache.get(key)
            if record is not None:
                job = self._make_job(body, key, task)
                job.cached = True
                job.record = record.to_json()
                job.state = "done"
                job.finished_at = time.monotonic()
                job.done.set()
                with self._lock:
                    self._jobs[job.id] = job
                self.metrics.incr("cluster.jobs.cache_hits")
                payload = {"job": job.id, "state": "done", "key": key,
                           "cached": True}
                payload.update(job.to_json())
                return 200, payload
        if level >= 2:
            return 503, {
                "error": "cluster degraded: no routable workers; "
                "serving proof-cache hits only",
                "degraded": DEGRADATION_LADDER[level],
            }
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None:
                existing.dedup_hits += 1
                self.metrics.incr("cluster.jobs.deduped")
                return 202, {
                    "job": existing.id,
                    "state": existing.state,
                    "key": key,
                    "cached": False,
                    "dedup_hits": existing.dedup_hits,
                }
            unfinished = sum(
                1 for job in self._jobs.values() if not job.finished()
            )
            if unfinished >= self.config.max_inflight:
                self.metrics.incr("cluster.jobs.rejected")
                return 429, {
                    "error": f"cluster at capacity "
                    f"({unfinished} jobs in flight); retry later"
                }
            job = self._make_job(body, key, task)
            self._jobs[job.id] = job
            self._by_key[key] = job
        # WAL ordering: the journal line lands before the caller ever
        # sees the job id — an admitted job can always be replayed.
        if self.journal is not None:
            self.journal.admitted(job.id, key, body)
        self.metrics.incr("cluster.jobs.admitted")
        self._spawn_watcher(job)
        return 202, {
            "job": job.id,
            "state": job.state,
            "key": key,
            "cached": False,
        }

    def _make_job(self, body, key, task) -> ClusterJob:
        with self._lock:  # RLock: submit's admission block holds it too
            self._seq += 1
            return ClusterJob(f"cj-{self._seq}", body, key, task)

    def job_status(
        self, job_id: str, wait: Optional[float] = None
    ) -> Tuple[int, dict]:
        job = self._jobs.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        if wait is not None and not job.finished():
            if not math.isfinite(wait):
                wait = 0.0
            job.done.wait(min(max(wait, 0.0), 60.0))
        return 200, job.to_json()

    def health(self) -> Tuple[int, dict]:
        level = self.degradation_level()
        status = (
            "ok"
            if level == 0
            else ("draining" if level >= 3 else "degraded")
        )
        return 200, {
            "status": status,
            "degraded": level > 0,
            "level": level,
            "ladder": DEGRADATION_LADDER[level],
            "uptime": time.monotonic() - self.started_at,
            "cache_key_version": CACHE_KEY_VERSION,
            "workers": {
                "total": self.supervisor.size(),
                "healthy": self.supervisor.healthy_count(),
                "states": self.supervisor.states(),
            },
        }

    def metrics_snapshot(self) -> Tuple[int, dict]:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            inflight = sum(
                1 for job in self._jobs.values() if not job.finished()
            )
        cluster = {
            "degraded": self.degradation_level(),
            "ladder": DEGRADATION_LADDER[self.degradation_level()],
            "supervisor": self.supervisor.stats(),
            "journal": (
                self.journal.stats() if self.journal is not None else None
            ),
            "replayed_jobs": self.replayed_jobs,
            "jobs": states,
            "inflight": inflight,
            "max_inflight": self.config.max_inflight,
        }
        return 200, {
            "service": {
                "uptime": time.monotonic() - self.started_at,
                "cluster": cluster,
                "proof_cache": self.cache.stats(),
            },
            "metrics": self.metrics.snapshot(),
        }

    def metrics_text(self) -> Tuple[int, str]:
        _, snapshot = self.metrics_snapshot()
        return 200, render_prometheus(
            snapshot["metrics"], service=snapshot["service"]
        )

    # ------------------------------------------------------------------
    # Placement + completion watching
    # ------------------------------------------------------------------

    def _spawn_watcher(self, job: ClusterJob) -> None:
        thread = threading.Thread(
            target=self._run_job,
            args=(job,),
            name=f"cluster-watch-{job.id}",
            daemon=True,
        )
        thread.start()

    def _run_job(self, job: ClusterJob) -> None:
        """Drive one job to a terminal state, re-dispatching on loss."""
        try:
            while True:
                if self._aborted:
                    return  # crash-stop: freeze the job as-is
                if job.worker_job is None:
                    try:
                        finished_inline = self._dispatch(job)
                    except _ClusterUnavailable as exc:
                        self._fail(job, str(exc))
                        return
                    except ProverServiceError as exc:
                        # A worker *rejected* the job (bad goal, unknown
                        # theorem, …): terminal, not a fault.
                        self._fail(
                            job,
                            f"worker rejected job "
                            f"(HTTP {exc.status}): "
                            f"{exc.payload.get('error', exc.payload)}",
                        )
                        return
                    if finished_inline:
                        return
                assert job.worker is not None
                client = self.supervisor.client_for(job.worker)
                try:
                    status = client.job(
                        job.worker_job, wait=self.config.poll
                    )
                except (ProverTransportError, ProverServiceError) as exc:
                    lost = isinstance(exc, ProverTransportError) or (
                        isinstance(exc, ProverServiceError)
                        and exc.status == 404
                    )
                    if not lost:
                        self._fail(
                            job, f"worker status error: {exc}"
                        )
                        return
                    # The worker died (or restarted and forgot the
                    # job): report for the breaker, then re-place.
                    if isinstance(exc, ProverTransportError):
                        self.supervisor.report_failure(job.worker)
                    if not self._note_loss(job):
                        return
                    continue
                state = status.get("state")
                if state == "done":
                    self._finish(job, status.get("record"))
                    return
                if state == "failed":
                    self._fail(
                        job,
                        f"worker search failed: "
                        f"{status.get('error', 'unknown')}",
                    )
                    return
        except Exception as exc:  # noqa: BLE001 - watcher must not die
            self._fail(job, f"{type(exc).__name__}: {exc}")

    def _note_loss(self, job: ClusterJob) -> bool:
        """Account one lost placement; False = give the job up."""
        job.worker_job = None
        job.redispatches += 1
        self.metrics.incr("cluster.jobs.redispatched")
        if job.redispatches > self.config.redispatch_limit:
            self._fail(
                job,
                f"gave up after {job.redispatches} placements "
                f"(workers kept dying)",
            )
            return False
        return True

    def _dispatch(self, job: ClusterJob) -> bool:
        """Place ``job`` on a routable worker; True = finished inline.

        Waits (bounded) for a routable worker — a restarting fleet is
        a transient condition, not a failure — then submits.  Worker
        warm-cache hits complete the job without a watch loop.
        """
        deadline = time.monotonic() + self.config.dispatch_wait
        while True:
            if self._aborted:
                raise _ClusterUnavailable("cluster aborted")
            index = self.ring.lookup(job.key, self.supervisor.routable)
            if index is None:
                if time.monotonic() >= deadline:
                    raise _ClusterUnavailable(
                        "no routable worker within "
                        f"{self.config.dispatch_wait:g}s"
                    )
                time.sleep(0.1)
                continue
            client = self.supervisor.client_for(index)
            try:
                response = client.prove(**job.body)
            except ProverTransportError:
                self.supervisor.report_failure(index)
                if time.monotonic() >= deadline:
                    raise _ClusterUnavailable(
                        "every dispatch attempt failed at transport"
                    )
                continue
            except ProverServiceError as exc:
                if exc.status in (429, 503):
                    # Worker admission shed us: transient back-pressure.
                    if time.monotonic() >= deadline:
                        raise _ClusterUnavailable(
                            f"workers refusing work (HTTP {exc.status})"
                        )
                    time.sleep(0.1)
                    continue
                raise  # 400/404: terminal client error
            self.supervisor.report_success(index)
            job.worker = index
            job.worker_job = response.get("job")
            job.state = "dispatched"
            if self.journal is not None:
                self.journal.dispatched(job.id, index)
            if response.get("state") in ("done", "failed"):
                if response.get("state") == "done":
                    self._finish(job, response.get("record"))
                else:
                    self._fail(
                        job,
                        f"worker search failed: "
                        f"{response.get('error', 'unknown')}",
                    )
                return True
            return False

    def _finish(self, job: ClusterJob, record: Optional[dict]) -> None:
        if self._aborted:
            return
        if record is None:
            self._fail(job, "worker reported done without a record")
            return
        job.record = record
        job.state = "done"
        job.finished_at = time.monotonic()
        if self.journal is not None:
            self.journal.done(job.id, job.key, record)
        if job.task is not None:
            self.cache.put(job.task, OutcomeRecord.from_json(record))
        with self._lock:
            self._by_key.pop(job.key, None)
        self.metrics.incr("cluster.jobs.completed")
        job.done.set()

    def _fail(self, job: ClusterJob, error: str) -> None:
        if self._aborted or job.finished():
            return
        job.error = error
        job.state = "failed"
        job.finished_at = time.monotonic()
        if self.journal is not None:
            self.journal.failed(job.id, error)
        with self._lock:
            self._by_key.pop(job.key, None)
        self.metrics.incr("cluster.jobs.failed")
        job.done.set()

    # ------------------------------------------------------------------
    # HTTP transport
    # ------------------------------------------------------------------

    def make_http_server(self):
        return build_http_server(self, self.config.host, self.config.port)


def _job_number(job_id: str) -> Optional[int]:
    if job_id.startswith("cj-"):
        try:
            return int(job_id[3:])
        except ValueError:
            return None
    return None


def _task_of(body: dict):
    """The body's TheoremTask, or None for raw-`goal` bodies."""
    if "goal" in body:
        return None
    try:
        return task_from_json(body)
    except ValueError:
        return None


def serve_cluster_forever(config: ClusterConfig) -> int:
    """Boot the cluster and serve until SIGTERM/Ctrl-C (CLI entry)."""
    cluster = ProverCluster(config)
    cluster.start()
    server = cluster.make_http_server()
    host, port = server.server_address[:2]
    print(
        f"prover cluster on http://{host}:{port} "
        f"(workers={config.workers} x {config.threads} threads, "
        f"journal={cluster.journal.path if cluster.journal else 'none'}, "
        f"state={config.state_dir or 'memory'})"
    )
    if cluster.replayed_jobs:
        print(f"replayed {cluster.replayed_jobs} unfinished job(s) "
              f"from the journal")
    install_sigterm_drain()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining cluster...")
    finally:
        server.shutdown()
        server.server_close()
        cluster.close()
    return 0
