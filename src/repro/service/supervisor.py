"""Worker-process supervision for the prover cluster.

A :class:`Supervisor` owns N forked worker processes, each a complete
single-process :class:`~repro.service.server.ProverService` (its own
kernel arena and caches, :class:`~repro.service.batching.BatchingGenerator`,
scheduler, and proof-cache shard) serving HTTP on an ephemeral
localhost port.  The supervisor:

* **boots** workers and collects their ports over a pipe handshake;
* **health-probes** them (``GET /healthz`` with a short timeout) on a
  background loop, and watches for process death between probes;
* **restarts** crashed workers with bounded exponential backoff and
  deterministic seeded jitter
  (:func:`~repro.llm.resilient.stable_jitter` — the same discipline
  :class:`~repro.llm.resilient.ResilientGenerator` applies to model
  endpoints, applied to whole processes);
* trips a **per-worker circuit breaker**: after
  ``breaker_threshold`` consecutive probe/transport failures the
  worker is marked unroutable for ``breaker_cooldown`` seconds, so the
  router's hash ring forwards its key ranges to the next healthy
  sibling shard until a half-open probe succeeds.

Worker processes install a SIGTERM handler that runs the same
graceful drain as Ctrl-C (finish admitted jobs, flush the shard
store), so :meth:`Supervisor.stop` is a clean cluster-wide drain;
:meth:`Supervisor.kill_worker` (SIGKILL) exists for the chaos
harness.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.llm.resilient import stable_jitter
from repro.service.client import ProverClient
from repro.service.server import (
    ProverService,
    ServerConfig,
    install_sigterm_drain,
)

__all__ = [
    "Supervisor",
    "SupervisorConfig",
    "WorkerSpec",
    "WorkerState",
    "worker_main",
]


# Worker lifecycle states.  Only HEALTHY workers are routable.
class WorkerState:
    STARTING = "starting"
    HEALTHY = "healthy"
    SUSPECT = "suspect"  # breaker open: unroutable until half-open probe
    DOWN = "down"  # process dead: restart scheduled
    DISABLED = "disabled"  # administratively off (chaos/maintenance)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to boot (picklable)."""

    index: int
    host: str = "127.0.0.1"
    threads: int = 4  # concurrent searches inside the worker
    max_queued: int = 64
    batch_window: float = 0.01
    max_batch_size: int = 8
    cache_path: Optional[str] = None  # this worker's proof-cache shard
    default_deadline: Optional[float] = None
    query_overhead: float = 0.0
    fast: bool = True
    # Chaos: a ClusterFaultPlan spec string + the shared marker dir for
    # cross-process death counting (see testing/faults.py).
    cluster_faults: Optional[str] = None
    state_dir: Optional[str] = None

    def server_config(self) -> ServerConfig:
        return ServerConfig(
            host=self.host,
            port=0,  # ephemeral; reported back over the handshake pipe
            workers=self.threads,
            max_queued=self.max_queued,
            batch_window=self.batch_window,
            max_batch_size=self.max_batch_size,
            cache_path=self.cache_path,
            default_deadline=self.default_deadline,
            fast=self.fast,
            query_overhead=self.query_overhead,
        )


class ClusterWorkerService(ProverService):
    """A worker-side service that honours cluster fault plans."""

    def __init__(self, spec: WorkerSpec, project=None) -> None:
        super().__init__(spec.server_config(), project=project)
        from repro.testing.faults import ClusterFaultPlan

        self.spec = spec
        self.cluster_faults = ClusterFaultPlan.from_spec(
            spec.cluster_faults
        )

    def _execute(self, task, generator):
        plan = self.cluster_faults
        if plan is not None and self.spec.state_dir:
            if plan.should_die(task.theorem, self.spec.state_dir):
                # A crash is not an exception: the whole process dies
                # mid-job, exactly like an OOM kill.  The supervisor
                # must restart us and the router must re-dispatch.
                os._exit(23)
            stall = plan.stall_for(task.theorem)
            if stall > 0:
                time.sleep(stall)
        return super()._execute(task, generator)


def worker_main(spec: WorkerSpec, conn) -> None:
    """Entry point of one worker process.

    Boots the service, reports the bound port through ``conn``, then
    serves until SIGTERM/SIGINT — both of which drain gracefully
    (finish admitted jobs, flush the shard store).
    """
    # The worker must not react to the router's Ctrl-C propagation
    # before its own drain handler is in place.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    service = ClusterWorkerService(spec)
    httpd = service.make_http_server()
    conn.send(httpd.server_address[1])
    conn.close()
    install_sigterm_drain()
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.close(timeout=30.0)


@dataclass(frozen=True)
class SupervisorConfig:
    """Probe cadence, breaker, and restart-backoff knobs."""

    probe_interval: float = 0.25  # seconds between health sweeps
    probe_timeout: float = 2.0  # per-probe HTTP budget
    boot_timeout: float = 30.0  # port-handshake budget per boot
    breaker_threshold: int = 3  # consecutive failures that open it
    breaker_cooldown: float = 1.0  # seconds unroutable before half-open
    restart_base_delay: float = 0.05  # first restart backoff
    restart_max_delay: float = 2.0  # cap on any restart backoff
    restart_jitter: float = 0.25  # extra delay fraction (seeded)
    seed: int = 0  # jitter seed (deterministic chaos runs)


class _Worker:
    """One supervised worker process and its live state."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.process: Optional[multiprocessing.Process] = None
        self.port: Optional[int] = None
        self.client: Optional[ProverClient] = None
        self.state = WorkerState.STARTING
        self.failures = 0  # consecutive probe/transport failures
        self.restarts = 0  # lifetime restarts of this slot
        self.restart_at: Optional[float] = None
        self.suspect_until: Optional[float] = None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class Supervisor:
    """Boots, probes, restarts, and drains the worker fleet."""

    def __init__(
        self,
        specs: List[WorkerSpec],
        config: Optional[SupervisorConfig] = None,
        metrics=None,
        on_worker_lost: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.metrics = metrics
        self.on_worker_lost = on_worker_lost
        self._workers = [_Worker(spec) for spec in specs]
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None
        self.restarts_total = 0
        # Prefer fork: workers inherit the warm interpreter; spawn is
        # the portable fallback (WorkerSpec is picklable either way).
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        for worker in self._workers:
            self._boot(worker)
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="cluster-supervisor", daemon=True
        )
        self._probe_thread.start()

    def _boot(self, worker: _Worker) -> None:
        """Fork one worker and handshake its port (synchronous)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker.spec, child_conn),
            name=f"prover-worker-{worker.spec.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.config.boot_timeout):
            process.terminate()
            raise RuntimeError(
                f"worker {worker.spec.index} did not report a port "
                f"within {self.config.boot_timeout:g}s"
            )
        port = parent_conn.recv()
        parent_conn.close()
        with self._lock:
            worker.process = process
            worker.port = port
            worker.client = ProverClient(
                f"http://{worker.spec.host}:{port}",
                timeout=self.config.probe_timeout,
                retries=2,
            )
            worker.state = WorkerState.HEALTHY
            worker.failures = 0
            worker.restart_at = None
            worker.suspect_until = None

    def stop(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful fleet drain: SIGTERM, join, SIGKILL stragglers."""
        self._stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        clean = True
        for worker in self._workers:
            if worker.process is None or not worker.process.is_alive():
                continue
            worker.process.terminate()  # SIGTERM -> worker drain path
        for worker in self._workers:
            if worker.process is None:
                continue
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            worker.process.join(remaining)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
                clean = False
            worker.state = WorkerState.DOWN
        return clean

    # ------------------------------------------------------------------
    # Probe / restart loop
    # ------------------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.config.probe_interval):
            for worker in self._workers:
                try:
                    self._tend(worker)
                except Exception:  # noqa: BLE001 - keep the loop alive
                    pass

    def _tend(self, worker: _Worker) -> None:
        now = time.monotonic()
        if worker.state == WorkerState.DISABLED:
            return
        if not worker.alive():
            if worker.state != WorkerState.DOWN:
                self._mark_down(worker, now)
            if worker.restart_at is not None and now >= worker.restart_at:
                self._restart(worker)
            return
        if (
            worker.state == WorkerState.SUSPECT
            and worker.suspect_until is not None
            and now < worker.suspect_until
        ):
            return  # breaker open: wait out the cooldown
        # Healthy or half-open: probe.
        try:
            health = worker.client.healthz()
            ok = health.get("status") in ("ok", "draining")
        except Exception:  # noqa: BLE001 - any failure counts
            ok = False
        with self._lock:
            if ok:
                worker.failures = 0
                if worker.state in (
                    WorkerState.SUSPECT,
                    WorkerState.STARTING,
                ):
                    worker.state = WorkerState.HEALTHY
                    worker.suspect_until = None
            else:
                self._note_failure(worker)

    def _mark_down(self, worker: _Worker, now: float) -> None:
        """Process death detected: schedule a backed-off restart."""
        with self._lock:
            worker.state = WorkerState.DOWN
            delay = min(
                self.config.restart_max_delay,
                self.config.restart_base_delay * 2**worker.restarts,
            )
            delay *= 1.0 + self.config.restart_jitter * stable_jitter(
                self.config.seed, worker.spec.index, worker.restarts
            )
            worker.restart_at = now + delay
        self._incr("cluster.worker_deaths")
        if self.on_worker_lost is not None:
            try:
                self.on_worker_lost(worker.spec.index)
            except Exception:  # noqa: BLE001
                pass

    def _restart(self, worker: _Worker) -> None:
        with self._lock:
            worker.restarts += 1
            self.restarts_total += 1
        self._incr("cluster.worker_restarts")
        try:
            self._boot(worker)
        except Exception:  # noqa: BLE001 - reschedule with more backoff
            self._mark_down(worker, time.monotonic())

    def _note_failure(self, worker: _Worker) -> None:
        """One probe/transport failure (lock held by callers or here)."""
        worker.failures += 1
        if worker.failures >= self.config.breaker_threshold:
            if worker.state == WorkerState.HEALTHY:
                self._incr("cluster.breaker_opens")
            worker.state = WorkerState.SUSPECT
            worker.suspect_until = (
                time.monotonic() + self.config.breaker_cooldown
            )

    # ------------------------------------------------------------------
    # Router-facing API
    # ------------------------------------------------------------------

    def report_failure(self, index: int) -> None:
        """The router saw a transport failure against worker ``index``."""
        worker = self._workers[index]
        with self._lock:
            self._note_failure(worker)

    def report_success(self, index: int) -> None:
        worker = self._workers[index]
        with self._lock:
            worker.failures = 0
            if worker.state == WorkerState.SUSPECT and worker.alive():
                worker.state = WorkerState.HEALTHY
                worker.suspect_until = None

    def routable(self, index: int) -> bool:
        worker = self._workers[index]
        return worker.state == WorkerState.HEALTHY and worker.alive()

    def client_for(self, index: int) -> Optional[ProverClient]:
        return self._workers[index].client

    def healthy_count(self) -> int:
        return sum(
            1 for w in self._workers
            if w.state == WorkerState.HEALTHY and w.alive()
        )

    def size(self) -> int:
        return len(self._workers)

    def states(self) -> List[str]:
        return [w.state for w in self._workers]

    # ------------------------------------------------------------------
    # Chaos / maintenance hooks
    # ------------------------------------------------------------------

    def kill_worker(self, index: int) -> None:
        """SIGKILL a worker (chaos harness; the probe loop restarts it)."""
        worker = self._workers[index]
        if worker.process is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(5.0)

    def disable_worker(self, index: int) -> None:
        """Administratively stop a worker slot (no restart)."""
        worker = self._workers[index]
        with self._lock:
            worker.state = WorkerState.DISABLED
        if worker.process is not None and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(5.0)

    def enable_worker(self, index: int) -> None:
        """Re-enable a disabled slot (the probe loop reboots it)."""
        worker = self._workers[index]
        with self._lock:
            if worker.state == WorkerState.DISABLED:
                worker.state = WorkerState.DOWN
                worker.restart_at = time.monotonic()

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Supervisor gauges for ``/metrics``."""
        with self._lock:
            return {
                "workers": len(self._workers),
                "healthy": self.healthy_count(),
                "restarts": self.restarts_total,
                "states": {
                    str(w.spec.index): {
                        "state": w.state,
                        "port": w.port,
                        "restarts": w.restarts,
                        "failures": w.failures,
                    }
                    for w in self._workers
                },
            }

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)
