"""Admission-controlled job scheduling for the prover service.

A :class:`Scheduler` owns a bounded queue of proof jobs and a fixed
pool of search worker threads.  The front end (:mod:`.server`) submits
:class:`~repro.eval.tasks.TheoremTask` descriptors; each becomes a
:class:`Job` that moves ``QUEUED → RUNNING → DONE`` (or ``FAILED``),
with the search outcome recorded as the evaluation layer's
deterministic :class:`~repro.eval.store.OutcomeRecord`.

Admission control: at most ``workers`` jobs run concurrently and at
most ``max_queued`` wait behind them; a submit beyond that raises
:class:`QueueFullError`, which the HTTP layer maps to **429** — the
service sheds load instead of stacking unbounded latency.

Before a task ever queues, two short-circuits (both via the shared
:class:`~repro.service.proofcache.ProofCache`):

1. **warm hit** — the task's cache key is already in the store: the
   job completes instantly from the cached record, no queue slot used;
2. **single-flight** — an identical task is queued or running: the
   caller is handed *that* job (``created=False``), so concurrent
   duplicates share one search.

Per-job deadlines reuse the cooperative :mod:`repro.deadline`
machinery: a scheduler-level ``default_deadline`` is folded into the
task's ``theorem_deadline`` *before* keying (the deadline is
outcome-relevant — a search can end TIMEOUT — so it must participate
in the cache key), and the search itself yields the clean ``TIMEOUT``
record.

Shutdown is a graceful drain: new submits are refused, every admitted
job still completes (the queue is bounded, so drain time is bounded),
then the workers exit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import ReproError
from repro.eval.store import OutcomeRecord
from repro.eval.tasks import TheoremTask
from repro.service.proofcache import ProofCache

__all__ = [
    "Job",
    "JobState",
    "QueueFullError",
    "Scheduler",
    "SchedulerConfig",
    "ShuttingDownError",
]


class QueueFullError(ReproError):
    """Admission refused: queue at capacity (HTTP 429)."""


class ShuttingDownError(ReproError):
    """Admission refused: the scheduler is draining (HTTP 503)."""


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class SchedulerConfig:
    """Concurrency and admission knobs."""

    workers: int = 4  # max in-flight searches
    max_queued: int = 32  # waiting jobs beyond the in-flight ones
    # Folded into tasks that carry no deadline of their own (None =
    # unbounded, the paper's setting).  Participates in cache keys.
    default_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")


class Job:
    """One admitted proof request and its lifecycle."""

    def __init__(self, job_id: str, task: TheoremTask) -> None:
        self.id = job_id
        self.task = task
        self.key = task.cache_key()
        self.state = JobState.QUEUED
        self.record: Optional[OutcomeRecord] = None
        self.error: Optional[str] = None
        self.metrics: Optional[dict] = None
        #: Served straight from the proof cache (no search ran).
        self.cached = False
        #: Concurrent identical submits coalesced onto this job.
        self.dedup_hits = 0
        self.created_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done = threading.Event()

    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    def to_json(self) -> dict:
        """The ``GET /jobs/<id>`` payload."""
        now = time.monotonic()
        out = {
            "id": self.id,
            "state": self.state.value,
            "key": self.key,
            "task": {
                "theorem": self.task.theorem,
                "model": self.task.model,
                "hinted": self.task.hinted,
                "repair_rounds": self.task.repair_rounds,
                "attempt": self.task.attempt,
            },
            "cached": self.cached,
            "dedup_hits": self.dedup_hits,
            "elapsed": (self.finished_at or now) - self.created_at,
        }
        if self.record is not None:
            out["record"] = self.record.to_json()
        if self.error is not None:
            out["error"] = self.error
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out


#: How a worker runs one task: ``execute(task, generator_override)``.
#: The server wires this to ``Runner.execute_task``; tests inject
#: stubs.  Must return an object with ``record`` and ``metrics``
#: attributes (:class:`repro.eval.executor.TaskResult`).
ExecuteFn = Callable[[TheoremTask, object], object]

#: Resolves a model name to the generator handle searches should use —
#: the server returns its shared per-model micro-batcher here.
GeneratorFor = Callable[[str], object]


class Scheduler:
    """Bounded job queue + search worker pool."""

    def __init__(
        self,
        execute: ExecuteFn,
        generator_for: GeneratorFor,
        cache: Optional[ProofCache] = None,
        config: Optional[SchedulerConfig] = None,
        metrics=None,
    ) -> None:
        self.execute = execute
        self.generator_for = generator_for
        self.cache = cache or ProofCache()
        self.config = config or SchedulerConfig()
        self.metrics = metrics
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._running = 0
        self._seq = 0
        self._draining = False
        self._workers: List[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker,
                    name=f"prover-worker-{index}",
                    daemon=True,
                )
                self._workers.append(thread)
                thread.start()

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain: refuse new work, finish admitted jobs.

        Returns True when every admitted job finished (and the workers
        exited) within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._draining = True
            self._cond.notify_all()
        for job in list(self._jobs.values()):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not job.done.wait(remaining):
                return False
        for thread in self._workers:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)
            if thread.is_alive():
                return False
        return True

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, task: TheoremTask) -> Job:
        """Admit ``task``: a (possibly shared, possibly pre-completed) job.

        Raises :class:`QueueFullError` on overflow and
        :class:`ShuttingDownError` while draining.
        """
        if not self._started:
            self.start()
        if self.config.default_deadline is not None and (
            task.theorem_deadline is None
        ):
            # Outcome-relevant, so folded in *before* the cache key is
            # computed: a deadline-bounded cell must never alias an
            # unbounded one.
            task = replace(
                task, theorem_deadline=self.config.default_deadline
            )
        key = task.cache_key()

        # Warm hit: answer from the shared cache, no queue slot burned.
        record = self.cache.get(key)
        if record is not None:
            job = self._make_job(task)
            job.cached = True
            self._finish(job, record=record, metrics=None, publish=False)
            with self._lock:
                self._jobs[job.id] = job
            self._incr("service.jobs.cache_hits")
            return job

        job, created = self.cache.admit(key, lambda: self._make_job(task))
        if not created:
            # Single-flight: ride the identical in-flight job.
            job.dedup_hits += 1
            self._incr("service.jobs.deduped")
            return job

        try:
            with self._cond:
                if self._draining:
                    raise ShuttingDownError(
                        "prover service is draining; not accepting work"
                    )
                if len(self._queue) >= self.config.max_queued:
                    self._incr("service.jobs.rejected")
                    raise QueueFullError(
                        f"queue full ({self.config.max_queued} waiting, "
                        f"{self._running} in flight); retry later"
                    )
                self._jobs[job.id] = job
                self._queue.append(job)
                self._cond.notify()
        except Exception:
            # Never leave a refused job in the single-flight table — it
            # would absorb (and starve) every future identical request.
            self.cache.release(key)
            raise
        self._incr("service.jobs.admitted")
        return job

    def _make_job(self, task: TheoremTask) -> Job:
        with self._lock:
            self._seq += 1
            return Job(f"job-{self._seq}", task)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def in_flight(self) -> int:
        with self._lock:
            return self._running

    def stats(self) -> dict:
        """Scheduler gauges for ``/metrics``."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "queue_depth": len(self._queue),
                "in_flight": self._running,
                "max_queued": self.config.max_queued,
                "workers": self.config.workers,
                "draining": self._draining,
                "jobs": states,
            }

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue:
                    if self._draining:
                        return
                    self._cond.wait(0.1)
                job = self._queue.popleft()
                self._running += 1
                job.state = JobState.RUNNING
                job.started_at = time.monotonic()
            # Queue-wait time (admission -> worker pickup): the latency
            # the admission bound trades throughput against, exported
            # as a stage timer so /metrics shows it per scrape.
            if self.metrics is not None:
                self.metrics.add_time(
                    "service.queue_wait", job.started_at - job.created_at
                )
            try:
                self._run_job(job)
            finally:
                with self._cond:
                    self._running -= 1
                    self._cond.notify_all()

    def _run_job(self, job: Job) -> None:
        try:
            generator = self.generator_for(job.task.model)
            result = self.execute(job.task, generator)
            self._finish(
                job,
                record=result.record,
                metrics=getattr(result, "metrics", None),
                publish=True,
            )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = JobState.FAILED
            job.finished_at = time.monotonic()
            self._incr("service.jobs.failed")
            self.cache.release(job.key)
            job.done.set()

    def _finish(
        self,
        job: Job,
        record: OutcomeRecord,
        metrics: Optional[dict],
        publish: bool,
    ) -> None:
        job.record = record
        job.metrics = metrics
        job.state = JobState.DONE
        job.finished_at = time.monotonic()
        if publish:
            # Publish BEFORE releasing the single-flight key: a request
            # landing in between sees the cached record, never a gap.
            self.cache.put(job.task, record)
            self.cache.release(job.key)
            self._incr("service.jobs.completed")
        job.done.set()

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)
