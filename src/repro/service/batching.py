"""Micro-batched LLM dispatch for concurrent proof searches.

Every best-first expansion is one independent ``generate(prompt, k)``
call; a server running many searches at once therefore has many such
calls in flight against one model backend.  Real endpoints price and
rate-limit *per request*, and batch completion APIs amortize the
round-trip — so the service funnels all generation through one
:class:`BatchingGenerator` per model, which collects concurrent calls
into micro-batches and dispatches them via the optional
``generate_batch`` protocol method (falling back to element-wise solo
calls when the model has none).

Batching policy (:class:`BatchPolicy`): a batch is dispatched when it
reaches ``max_batch_size`` elements, or when ``batch_window`` seconds
have passed since its *oldest* element arrived — bounded added latency,
opportunistic amortization.  ``max_batch_size=1`` disables batching
entirely (every call goes straight through, no queue, no thread).

Determinism contract (hard): each batched element's candidates are
byte-identical to a solo ``generate`` call.  The batcher never splits,
reorders, merges, or edits element results; the underlying model's
``generate_batch`` is itself element-wise pure (see
:meth:`repro.llm.models.SimulatedModel.generate_batch`).  Batch
*composition* — which requests share a dispatch — depends on arrival
timing and may vary run to run; by the contract, it is unobservable in
the results.  ``tests/service/test_batching.py`` pins this.

Structure: the window/size policy lives in :class:`BatchPlanner`, a
pure, lock-free, fake-clock-testable state machine; the thread-safe
:class:`BatchingGenerator` wraps it with a condition variable and a
single dispatcher thread.

Two entry points share the machinery: the blocking ``generate`` (one
caller, parks until its element returns) and the asynchronous
``submit`` (returns a :class:`Submission` handle whose ``result()``
parks instead) — the latter is what the intra-search pipeline
(:mod:`repro.core.pipeline`) plugs in as ``submit_fn``, and
:meth:`BatchingGenerator.for_search` builds an instance sized for one
pipelined search: the co-travelling rounds of a fill phase arrive
within microseconds, so a short window coalesces them into a single
``generate_batch`` round-trip.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.llm.interface import (
    Candidate,
    GenerationRequest,
    TacticGenerator,
    generate_batch,
)

__all__ = ["BatchPolicy", "BatchPlanner", "BatchingGenerator", "Submission"]


@dataclass(frozen=True)
class BatchPolicy:
    """When to close and dispatch a micro-batch."""

    #: Seconds a batch may wait for co-travellers after its first
    #: element arrives.  0 disables the wait: every dispatch takes
    #: whatever is queued at that instant.
    batch_window: float = 0.01
    #: Elements that force an immediate dispatch.  1 disables batching.
    max_batch_size: int = 8

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")


class _Pending:
    """One caller's request, parked until its batch returns."""

    __slots__ = ("prompt", "k", "arrived", "event", "result", "error")

    def __init__(self, prompt: str, k: int, arrived: float) -> None:
        self.prompt = prompt
        self.k = k
        self.arrived = arrived
        self.event = threading.Event()
        self.result: Optional[List[Candidate]] = None
        self.error: Optional[BaseException] = None


class Submission:
    """A parked request's caller-side handle (see ``submit``).

    ``result()`` blocks until the dispatcher (or the inline solo path)
    fills the element, then returns the candidates or re-raises the
    element's own error — semantically identical to a blocking
    ``generate`` call split at the park point.  Duck-type-compatible
    with ``concurrent.futures.Future.result`` as far as
    :class:`repro.core.pipeline.GenerationHandle` requires.
    """

    __slots__ = ("_pending",)

    def __init__(self, pending: _Pending) -> None:
        self._pending = pending

    def result(self) -> List[Candidate]:
        pending = self._pending
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result


class BatchPlanner:
    """The pure batching policy: a queue of pending requests + a clock.

    Not thread-safe — callers synchronise externally.  All timing
    comes in through method arguments, so tests drive the window logic
    with a fake clock and no sleeps.
    """

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self.queue: List[_Pending] = []

    def add(self, pending: _Pending) -> None:
        self.queue.append(pending)

    def __len__(self) -> int:
        return len(self.queue)

    def ready(self, now: float) -> bool:
        """True when the head batch should dispatch at time ``now``."""
        if not self.queue:
            return False
        if len(self.queue) >= self.policy.max_batch_size:
            return True
        return now - self.queue[0].arrived >= self.policy.batch_window

    def wait_budget(self, now: float) -> Optional[float]:
        """Seconds until the head batch becomes due (None = no queue)."""
        if not self.queue:
            return None
        if len(self.queue) >= self.policy.max_batch_size:
            return 0.0
        due_at = self.queue[0].arrived + self.policy.batch_window
        return max(0.0, due_at - now)

    def take(self) -> List[_Pending]:
        """Remove and return the head batch (up to ``max_batch_size``)."""
        size = self.policy.max_batch_size
        batch, self.queue = self.queue[:size], self.queue[size:]
        return batch


class BatchingGenerator:
    """A :class:`TacticGenerator` that micro-batches concurrent calls.

    One instance is shared by every search using the same model; each
    caller's ``generate`` blocks until the dispatcher returns its
    element.  Sits *below* the per-job
    :class:`~repro.llm.resilient.ResilientGenerator`, so retries re-
    enqueue individual elements rather than whole batches.
    """

    def __init__(
        self,
        inner: TacticGenerator,
        policy: Optional[BatchPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        self.inner = inner
        self.policy = policy or BatchPolicy()
        self.clock = clock
        self.metrics = metrics
        # TacticGenerator surface, delegated.
        self.name = inner.name
        self.context_window = inner.context_window
        self.provides_log_probs = getattr(inner, "provides_log_probs", False)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._planner = BatchPlanner(self.policy)
        self._closed = False
        self._dispatcher: Optional[threading.Thread] = None
        # Dispatch statistics (under _lock).
        self._batches = 0
        self._batched_queries = 0
        self._max_batch = 0

    # ------------------------------------------------------------------
    # TacticGenerator surface
    # ------------------------------------------------------------------

    def generate(self, prompt: str, k: int) -> List[Candidate]:
        if self.policy.max_batch_size <= 1:
            # Batching disabled: the undecorated solo path.
            return self.inner.generate(prompt, k)
        return self.submit(prompt, k).result()

    def submit(self, prompt: str, k: int) -> Submission:
        """Asynchronous ``generate``: enqueue, return a result handle.

        The request joins the same micro-batch queue as blocking
        callers; the caller parks at ``Submission.result()`` instead
        of here.  With batching disabled (``max_batch_size=1``) the
        call executes inline and the returned handle is already
        resolved, so errors still surface only at ``result()`` — the
        deterministic commit point of the pipelined search.
        """
        pending = _Pending(prompt, k, self.clock())
        if self.policy.max_batch_size <= 1:
            try:
                pending.result = self.inner.generate(prompt, k)
            except BaseException as exc:
                pending.error = exc
            pending.event.set()
            return Submission(pending)
        with self._cond:
            if self._closed:
                raise RuntimeError(
                    f"BatchingGenerator for {self.name} is closed"
                )
            self._ensure_dispatcher()
            self._planner.add(pending)
            self._cond.notify_all()
        return Submission(pending)

    def generate_batch(
        self, requests: Sequence[GenerationRequest]
    ) -> List[List[Candidate]]:
        """Pre-formed batches skip the window and dispatch directly."""
        return generate_batch(self.inner, requests)

    # ------------------------------------------------------------------
    # Intra-search coalescing
    # ------------------------------------------------------------------

    @classmethod
    def for_search(
        cls,
        inner: TacticGenerator,
        depth: int,
        batch_window: float = 0.01,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> "BatchingGenerator":
        """A coalescer sized for one pipelined search.

        ``max_batch_size`` equals the pipeline depth: a fill phase
        submits at most ``depth`` rounds back-to-back, so a full fill
        dispatches immediately while stragglers (steady-state single
        refills) wait at most ``batch_window`` for co-travellers.
        The window should stay small relative to the backend's
        per-request latency — it is pure added latency when nothing
        coalesces.
        """
        policy = BatchPolicy(
            batch_window=batch_window, max_batch_size=max(1, depth)
        )
        return cls(inner, policy, clock=clock, metrics=metrics)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def _ensure_dispatcher(self) -> None:
        # Started lazily so idle/batching-disabled instances cost no
        # thread; restarted if a previous close() tore it down.
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._run,
                name=f"batcher:{self.name}",
                daemon=True,
            )
            self._dispatcher.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._closed and not self._planner.queue:
                        return
                    budget = self._planner.wait_budget(self.clock())
                    if budget is None:
                        # Idle: sleep until a request or close() wakes us.
                        self._cond.wait()
                        continue
                    if self._closed or self._planner.ready(self.clock()):
                        break
                    # Wait out the remaining window (new arrivals that
                    # fill the batch notify and re-evaluate early).
                    self._cond.wait(budget)
                batch = self._planner.take()
            self._dispatch(batch)

    def _dispatch(self, batch: List[_Pending]) -> None:
        requests = [(p.prompt, p.k) for p in batch]
        self._note_dispatch(len(batch))
        try:
            results = generate_batch(self.inner, requests)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"generate_batch returned {len(results)} results for "
                    f"{len(batch)} requests"
                )
        except BaseException:
            # A failed batch call must not fail innocent co-travellers:
            # fall back to solo calls so each element succeeds or fails
            # on its own (the solo path is the determinism reference,
            # so results are unchanged for the survivors).
            self._incr("service.batch.fallbacks")
            for pending in batch:
                try:
                    pending.result = self.inner.generate(
                        pending.prompt, pending.k
                    )
                except BaseException as exc:
                    pending.error = exc
                pending.event.set()
            return
        for pending, result in zip(batch, results):
            pending.result = result
            pending.event.set()

    # ------------------------------------------------------------------
    # Lifecycle / statistics
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting requests; flush what is queued, then stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)

    def _note_dispatch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_queries += size
            self._max_batch = max(self._max_batch, size)
        self._incr("service.batch.dispatches")
        self._incr("service.batch.queries", size)

    def _incr(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, n)

    def stats(self) -> dict:
        """Dispatch statistics for ``/metrics``."""
        with self._lock:
            batches = self._batches
            queries = self._batched_queries
            return {
                "model": self.name,
                "batches": batches,
                "queries": queries,
                "mean_batch_size": (queries / batches) if batches else 0.0,
                "max_batch_size": self._max_batch,
                "queue_depth": len(self._planner.queue),
            }
