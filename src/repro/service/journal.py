"""Write-ahead job journal for the prover cluster.

The cluster router (:mod:`repro.service.cluster`) journals every job's
lifecycle to an append-only JSONL file *before* acting on it, so the
jobs — not the process — are the source of truth.  A crashed worker, a
killed router, or a full-service restart replays unfinished jobs from
the journal and, by the determinism contract (a task's outcome is a
pure function of its :meth:`~repro.eval.tasks.TheoremTask.cache_key`),
produces byte-identical records to a fault-free run.

Line format is the evaluation store's checksummed convention
(:func:`repro.eval.store.checksum_payload`): every line carries a
``sum`` over its canonical payload, and lines that fail to parse or
verify are **quarantined** to a ``.quarantine`` sibling on load (the
journal is atomically rewritten without them), exactly like
:class:`~repro.eval.store.RunStore`.

Events per job (``job`` is the router's job id)::

    {"event": "admitted",   "job": J, "key": K, "body": {...}, "sum": S}
    {"event": "dispatched", "job": J, "worker": W,             "sum": S}
    {"event": "done",       "job": J, "key": K, "record": {...}, "sum": S}
    {"event": "failed",     "job": J, "error": "...",          "sum": S}

``admitted`` is written before the client sees the 202; ``dispatched``
after the task is handed to a worker (re-dispatches append another
``dispatched`` line — the journal is a log, not a table); ``done`` /
``failed`` are terminal.  A job with no terminal event is *pending*
and must be replayed on restart.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.eval.store import checksum_payload, quarantine_lines

__all__ = ["JobJournal", "JournalEntry"]

_EVENTS = ("admitted", "dispatched", "done", "failed")


@dataclass
class JournalEntry:
    """The replayed state of one journaled job."""

    job: str
    key: str = ""
    body: Optional[dict] = None
    workers: List[int] = field(default_factory=list)  # dispatch history
    record: Optional[dict] = None  # set by a ``done`` event
    error: Optional[str] = None  # set by a ``failed`` event

    def finished(self) -> bool:
        return self.record is not None or self.error is not None

    def pending(self) -> bool:
        """Admitted with a body but no terminal event: must replay."""
        return self.body is not None and not self.finished()


class JobJournal:
    """Append-only, checksummed, replayable job log."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._write_lock = threading.Lock()
        #: Jobs in admission order (dict preserves insertion order).
        self.entries: Dict[str, JournalEntry] = {}
        #: Lines rejected on load (torn writes, checksum mismatches).
        self.quarantined = 0
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Load / replay
    # ------------------------------------------------------------------

    def _load(self) -> None:
        good: List[str] = []
        bad: List[str] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if self._ingest(line):
                    good.append(line)
                else:
                    bad.append(line)
        if bad:
            self.quarantined = len(bad)
            quarantine_lines(self.path, good, bad)

    def _ingest(self, line: str) -> bool:
        """Apply one journal line; False = corrupt, quarantine it."""
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            return False
        if not isinstance(obj, dict):
            return False
        stored_sum = obj.pop("sum", None)
        if stored_sum != checksum_payload(obj):
            # Unlike the run store, journal lines are never legacy —
            # a missing or wrong checksum is always corruption.
            return False
        event = obj.get("event")
        job = obj.get("job")
        if event not in _EVENTS or not isinstance(job, str):
            return False
        entry = self.entries.get(job)
        if entry is None:
            entry = self.entries[job] = JournalEntry(job)
        if event == "admitted":
            entry.key = obj.get("key", "")
            entry.body = obj.get("body")
        elif event == "dispatched":
            entry.workers.append(obj.get("worker", -1))
        elif event == "done":
            entry.record = obj.get("record")
            entry.key = obj.get("key", entry.key)
        elif event == "failed":
            entry.error = obj.get("error", "unknown failure")
        return True

    def pending(self) -> List[JournalEntry]:
        """Jobs admitted but not finished, in admission order."""
        return [e for e in self.entries.values() if e.pending()]

    def finished(self) -> List[JournalEntry]:
        return [e for e in self.entries.values() if e.finished()]

    # ------------------------------------------------------------------
    # Appends (each one durable before the caller proceeds)
    # ------------------------------------------------------------------

    def admitted(self, job: str, key: str, body: dict) -> None:
        self._append({"event": "admitted", "job": job, "key": key,
                      "body": body})

    def dispatched(self, job: str, worker: int) -> None:
        self._append({"event": "dispatched", "job": job, "worker": worker})

    def done(self, job: str, key: str, record: dict) -> None:
        self._append({"event": "done", "job": job, "key": key,
                      "record": record})

    def failed(self, job: str, error: str) -> None:
        self._append({"event": "failed", "job": job, "error": error})

    def _append(self, payload: dict) -> None:
        payload = dict(payload)
        payload["sum"] = checksum_payload(
            {k: v for k, v in payload.items() if k != "sum"}
        )
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._write_lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            # Keep the in-memory view current so stats()/pending() on a
            # live journal agree with what a reload would see.
            self._ingest(line)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Journal gauges for ``/metrics``."""
        entries = list(self.entries.values())
        return {
            "path": str(self.path),
            "jobs": len(entries),
            "pending": sum(1 for e in entries if e.pending()),
            "done": sum(1 for e in entries if e.record is not None),
            "failed": sum(1 for e in entries if e.error is not None),
            "quarantined": self.quarantined,
        }

    def quarantine_path(self) -> Path:
        return self.path.with_name(self.path.name + ".quarantine")
