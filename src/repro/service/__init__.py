"""Prover-as-a-service: the long-lived concurrent proof server.

The evaluation engine (:mod:`repro.eval`) runs *sweeps* — a finite
task list, then exit.  This package runs the same searches as a
*service*: a bounded-admission scheduler multiplexes concurrent proof
jobs over shared per-model micro-batchers and a persistent proof
cache, behind a stdlib HTTP front end.  DESIGN.md §6.

* :mod:`repro.service.batching` — cross-search micro-batched dispatch;
* :mod:`repro.service.proofcache` — shared result cache + single-flight;
* :mod:`repro.service.scheduler` — bounded queue, worker pool, drain;
* :mod:`repro.service.server` — HTTP routes / composition root;
* :mod:`repro.service.client` — stdlib client (loadgen, tools, tests).
"""

from repro.service.batching import BatchingGenerator, BatchPlanner, BatchPolicy
from repro.service.client import JobTimeout, ProverClient, ProverServiceError
from repro.service.proofcache import ProofCache
from repro.service.scheduler import (
    Job,
    JobState,
    QueueFullError,
    Scheduler,
    SchedulerConfig,
    ShuttingDownError,
)
from repro.service.server import ProverService, ServerConfig, serve_forever

__all__ = [
    "BatchPolicy",
    "BatchPlanner",
    "BatchingGenerator",
    "ProofCache",
    "Job",
    "JobState",
    "QueueFullError",
    "Scheduler",
    "SchedulerConfig",
    "ShuttingDownError",
    "ProverService",
    "ServerConfig",
    "serve_forever",
    "ProverClient",
    "ProverServiceError",
    "JobTimeout",
]
