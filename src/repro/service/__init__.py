"""Prover-as-a-service: the long-lived concurrent proof server.

The evaluation engine (:mod:`repro.eval`) runs *sweeps* — a finite
task list, then exit.  This package runs the same searches as a
*service*: a bounded-admission scheduler multiplexes concurrent proof
jobs over shared per-model micro-batchers and a persistent proof
cache, behind a stdlib HTTP front end.  Above the single process sits
the supervised multi-process cluster.  DESIGN.md §6 and §8.

* :mod:`repro.service.batching` — cross-search micro-batched dispatch;
* :mod:`repro.service.proofcache` — shared result cache + single-flight;
* :mod:`repro.service.scheduler` — bounded queue, worker pool, drain;
* :mod:`repro.service.server` — HTTP routes / composition root;
* :mod:`repro.service.client` — stdlib client (loadgen, tools, tests);
* :mod:`repro.service.journal` — write-ahead job journal (replayable);
* :mod:`repro.service.supervisor` — forked workers, probes, restarts;
* :mod:`repro.service.cluster` — consistent-hash router + degradation.
"""

from repro.service.batching import BatchingGenerator, BatchPlanner, BatchPolicy
from repro.service.client import (
    JobTimeout,
    ProverClient,
    ProverServiceError,
    ProverTransportError,
)
from repro.service.cluster import (
    ClusterConfig,
    HashRing,
    ProverCluster,
    serve_cluster_forever,
)
from repro.service.journal import JobJournal, JournalEntry
from repro.service.proofcache import ProofCache
from repro.service.scheduler import (
    Job,
    JobState,
    QueueFullError,
    Scheduler,
    SchedulerConfig,
    ShuttingDownError,
)
from repro.service.server import (
    ProverService,
    ServerConfig,
    build_http_server,
    install_sigterm_drain,
    serve_forever,
)
from repro.service.supervisor import (
    Supervisor,
    SupervisorConfig,
    WorkerSpec,
    WorkerState,
)

__all__ = [
    "BatchPolicy",
    "BatchPlanner",
    "BatchingGenerator",
    "ProofCache",
    "Job",
    "JobState",
    "QueueFullError",
    "Scheduler",
    "SchedulerConfig",
    "ShuttingDownError",
    "ProverService",
    "ServerConfig",
    "build_http_server",
    "install_sigterm_drain",
    "serve_forever",
    "ProverClient",
    "ProverServiceError",
    "ProverTransportError",
    "JobTimeout",
    "JobJournal",
    "JournalEntry",
    "Supervisor",
    "SupervisorConfig",
    "WorkerSpec",
    "WorkerState",
    "ClusterConfig",
    "HashRing",
    "ProverCluster",
    "serve_cluster_forever",
]
