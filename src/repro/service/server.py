"""The prover service HTTP front end.

A stdlib-only (``http.server.ThreadingHTTPServer``) long-lived server
that multiplexes many concurrent proof searches over one model
backend — the deployment shape the ROADMAP's "heavy traffic" north
star implies, and the interface CoqPilot-style tooling would integrate
against.

Routes::

    POST /prove            admit a proof job (theorem id or raw goal)
    GET  /jobs/<id>        job status + result (+ ?wait=SECONDS long-poll)
    GET  /healthz          liveness + uptime
    GET  /metrics          eval Metrics + service gauges; JSON by default,
                           Prometheus text exposition via
                           ``?format=prometheus`` or ``Accept: text/plain``

``POST /prove`` accepts every :class:`~repro.eval.tasks.TheoremTask`
field (``theorem`` + ``model`` required, the rest default to the sweep
defaults) or ``goal`` — a raw statement string registered as an ad-hoc
theorem via :meth:`~repro.corpus.loader.Project.adhoc_theorem`.
Responses: **202** with a job id (search admitted), **200** when the
job completed instantly from the warm proof cache, **400** on a
malformed request, **404** for an unknown theorem, **429** when
admission control sheds the request, **503** while draining.

The composition root is :class:`ProverService`: one
:class:`~repro.eval.runner.Runner` shared by all worker threads, one
:class:`~repro.service.batching.BatchingGenerator` per model (shared
across jobs — that is where cross-search micro-batching happens), one
:class:`~repro.service.proofcache.ProofCache`, one
:class:`~repro.service.scheduler.Scheduler`.  Per-job, the runner
still wraps the shared batcher in a fresh
:class:`~repro.llm.resilient.ResilientGenerator`, so retries/breaker
state stay task-local while dispatch is globally batched.
"""

from __future__ import annotations

import json
import math
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from dataclasses import dataclass
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import CorpusError, GenerationError
from repro.eval.config import ExperimentConfig
from repro.eval.instrumentation import Metrics
from repro.eval.runner import Runner
from repro.eval.tasks import CACHE_KEY_VERSION, task_from_json
from repro.llm import get_model
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import JsonlSink, Tracer
from repro.service.batching import BatchingGenerator, BatchPolicy
from repro.service.proofcache import ProofCache
from repro.service.scheduler import (
    QueueFullError,
    Scheduler,
    SchedulerConfig,
    ShuttingDownError,
)

__all__ = [
    "ServerConfig",
    "ProverService",
    "build_http_server",
    "install_sigterm_drain",
    "serve_forever",
]


def build_http_server(api, host: str, port: int) -> ThreadingHTTPServer:
    """Bind (but do not serve) the HTTP front end for ``api``.

    ``api`` is anything exposing the transport-independent handlers
    ``submit(body)``, ``job_status(id, wait=)``, ``health()``,
    ``metrics_snapshot()``, and ``metrics_text()`` — both
    :class:`ProverService` (single process) and
    :class:`~repro.service.cluster.ProverCluster` (the router) do, so
    they share one route table and wire format.  ``port=0`` binds an
    ephemeral port — read it back from ``server.server_address``.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: N802
            pass  # quiet; service metrics carry the signal

        def _send(self, status: int, payload: dict) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _send_text(self, status: int, text: str) -> None:
            data = text.encode("utf-8")
            self.send_response(status)
            self.send_header(
                "Content-Type",
                "text/plain; version=0.0.4; charset=utf-8",
            )
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _wants_prometheus(self, query: dict) -> bool:
            # JSON stays the default (ProverClient, the loadgen, and
            # older scrapers all consume it); Prometheus is opt-in
            # by query param or Accept header.
            fmt = query.get("format", [""])[0].lower()
            if fmt in ("prometheus", "prom", "text"):
                return True
            if fmt:  # explicit ?format= wins over Accept
                return False
            accept = (self.headers.get("Accept") or "").lower()
            return "text/plain" in accept or "openmetrics" in accept

        def do_GET(self):  # noqa: N802
            parsed = urlparse(self.path)
            path = parsed.path.rstrip("/") or "/"
            if path == "/healthz":
                self._send(*api.health())
                return
            if path == "/metrics":
                query = parse_qs(parsed.query)
                if self._wants_prometheus(query):
                    self._send_text(*api.metrics_text())
                else:
                    self._send(*api.metrics_snapshot())
                return
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                query = parse_qs(parsed.query)
                wait = None
                if "wait" in query:
                    try:
                        wait = float(query["wait"][0])
                    except ValueError:
                        self._send(
                            400, {"error": "wait must be a number"}
                        )
                        return
                    if not math.isfinite(wait):
                        # float() happily parses "nan"/"inf", which
                        # would sail through the long-poll clamp
                        # (NaN fails every comparison) into
                        # Event.wait(nan).
                        self._send(
                            400,
                            {"error": "wait must be a finite number"},
                        )
                        return
                self._send(*api.job_status(job_id, wait=wait))
                return
            self._send(404, {"error": f"no route {path!r}"})

        def do_POST(self):  # noqa: N802
            path = urlparse(self.path).path.rstrip("/")
            if path != "/prove":
                self._send(404, {"error": f"no route {path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(
                    self.rfile.read(length).decode("utf-8") or "{}"
                )
            except (ValueError, UnicodeDecodeError) as exc:
                self._send(400, {"error": f"bad JSON body: {exc}"})
                return
            self._send(*api.submit(body))

    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    return server


def install_sigterm_drain():
    """Route ``SIGTERM`` through the ``KeyboardInterrupt`` drain path.

    Containerized and CI runs stop processes with SIGTERM, whose
    default disposition is immediate death — admitted jobs and
    unflushed journal/store lines would be lost.  Re-raising it as
    ``KeyboardInterrupt`` funnels both signals into the one graceful
    path: stop accepting, finish admitted jobs, flush stores.  Only
    the main thread can install handlers; elsewhere (tests driving a
    server from a worker thread) this is a no-op.  Returns the
    previous handler, or None when nothing was installed.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    def _drain(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    return signal.signal(signal.SIGTERM, _drain)


@dataclass(frozen=True)
class ServerConfig:
    """Everything the composition root needs."""

    host: str = "127.0.0.1"
    port: int = 8421
    workers: int = 4  # concurrent searches
    max_queued: int = 32  # admission bound beyond in-flight
    batch_window: float = 0.01  # seconds a micro-batch may collect
    max_batch_size: int = 8  # 1 disables batching
    cache_path: Optional[str] = None  # JSONL proof cache (warm restart)
    default_deadline: Optional[float] = None  # per-job wall clock
    fast: bool = True  # trust corpus proofs at load (faster boot)
    # Simulated per-dispatch endpoint overhead (seconds) — models the
    # network round-trip a real API charges per request; batching
    # amortizes it.  0 for pure in-process serving.
    query_overhead: float = 0.0
    # Span-tree JSONL for every executed job (repro.obs); None = no
    # tracing, and job execution pays no tracing cost at all.
    trace_path: Optional[str] = None
    # Intra-search pipelining per job (repro.core.pipeline): generation
    # calls in flight within one search.  0 = serial loop.  Composes
    # with the cross-search micro-batcher: pipelined rounds from one
    # job coalesce intra-search first, and the resulting dispatches
    # still share the per-model batcher with other jobs.
    pipeline_depth: int = 0


class ProverService:
    """Composition root: runner + batchers + cache + scheduler."""

    def __init__(
        self, config: Optional[ServerConfig] = None, project=None
    ) -> None:
        from repro.corpus.loader import load_project

        self.config = config or ServerConfig()
        self.metrics = Metrics()
        self.started_at = time.monotonic()
        if project is None:
            project = load_project(check_proofs=not self.config.fast)
        self.runner = Runner(
            project,
            ExperimentConfig(
                pipeline_depth=self.config.pipeline_depth,
            ),
        )
        self.cache = ProofCache(self.config.cache_path, metrics=self.metrics)
        self.scheduler = Scheduler(
            execute=self._execute,
            generator_for=self.generator_for,
            cache=self.cache,
            config=SchedulerConfig(
                workers=self.config.workers,
                max_queued=self.config.max_queued,
                default_deadline=self.config.default_deadline,
            ),
            metrics=self.metrics,
        )
        self._batchers: Dict[str, BatchingGenerator] = {}
        self._batcher_lock = threading.Lock()
        self.trace_sink: Optional[JsonlSink] = (
            JsonlSink(self.config.trace_path)
            if self.config.trace_path
            else None
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _execute(self, task, generator):
        tracer = None
        if self.trace_sink is not None:
            # One trace per executed job, rooted at a "job" span so the
            # rendered tree shows queueing context above the search.
            tracer = Tracer(trace_id=task.cache_key()[:16])
            with tracer.span("job", theorem=task.theorem, model=task.model):
                result = self.runner.execute_task(
                    task, model_override=generator, tracer=tracer
                )
            self.trace_sink.write(tracer.export())
        else:
            result = self.runner.execute_task(task, model_override=generator)
        self.metrics.merge(result.metrics)
        return result

    def generator_for(self, model_name: str) -> BatchingGenerator:
        """The shared micro-batcher for ``model_name`` (built lazily)."""
        with self._batcher_lock:
            batcher = self._batchers.get(model_name)
            if batcher is None:
                base = get_model(model_name)
                if self.config.query_overhead > 0:
                    from repro.testing.latency import LatencyGenerator

                    base = LatencyGenerator(
                        base, self.config.query_overhead
                    )
                batcher = BatchingGenerator(
                    base,
                    BatchPolicy(
                        batch_window=self.config.batch_window,
                        max_batch_size=self.config.max_batch_size,
                    ),
                    metrics=self.metrics,
                )
                self._batchers[model_name] = batcher
            return batcher

    # ------------------------------------------------------------------
    # Request handling (transport-independent; the HTTP handler and the
    # in-process tests/loadgen call these directly)
    # ------------------------------------------------------------------

    def submit(self, body: dict) -> Tuple[int, dict]:
        """Handle a ``POST /prove`` body: ``(http_status, payload)``."""
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        body = dict(body)
        goal = body.pop("goal", None)
        if goal is not None:
            if "theorem" in body:
                return 400, {"error": "pass either 'theorem' or 'goal'"}
            if not isinstance(goal, str) or not goal.strip():
                return 400, {"error": "'goal' must be a statement string"}
            try:
                theorem = self.runner.project.adhoc_theorem(goal)
            except Exception as exc:  # parse/elaboration errors
                return 400, {
                    "error": f"goal does not parse: {exc}",
                }
            body["theorem"] = theorem.name
        try:
            task = task_from_json(body)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        try:
            get_model(task.model)
        except GenerationError as exc:
            return 400, {"error": str(exc)}
        try:
            self.runner.project.theorem(task.theorem)
        except CorpusError as exc:
            return 404, {"error": str(exc)}
        try:
            job = self.scheduler.submit(task)
        except QueueFullError as exc:
            return 429, {"error": str(exc)}
        except ShuttingDownError as exc:
            return 503, {"error": str(exc)}
        payload = {
            "job": job.id,
            "state": job.state.value,
            "key": job.key,
            "cached": job.cached,
        }
        if job.finished():
            payload.update(job.to_json())
            return 200, payload
        return 202, payload

    def job_status(
        self, job_id: str, wait: Optional[float] = None
    ) -> Tuple[int, dict]:
        """Handle ``GET /jobs/<id>`` (``wait`` = long-poll seconds)."""
        job = self.scheduler.job(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        if wait is not None and not job.finished():
            # Bounded long-poll: callers get an answer within the wait
            # budget either way and poll again if still running.  The
            # clamp rejects NaN/inf defensively: min/max pass NaN
            # through untouched (every comparison is False), and
            # Event.wait(nan) raises deep inside threading.  The HTTP
            # layer already 400s non-finite values; this guards direct
            # (in-process) callers.
            if not math.isfinite(wait):
                wait = 0.0
            job.done.wait(min(max(wait, 0.0), 60.0))
        return 200, job.to_json()

    def health(self) -> Tuple[int, dict]:
        return 200, {
            "status": "draining" if self.scheduler.stats()["draining"]
            else "ok",
            "uptime": time.monotonic() - self.started_at,
            "cache_key_version": CACHE_KEY_VERSION,
        }

    def metrics_snapshot(self) -> Tuple[int, dict]:
        """``GET /metrics``: eval metrics + service-level gauges."""
        from repro.kernel import cache as kernel_cache

        return 200, {
            "service": {
                "uptime": time.monotonic() - self.started_at,
                "scheduler": self.scheduler.stats(),
                "batchers": [
                    b.stats() for b in self._batchers.values()
                ],
                "proof_cache": self.cache.stats(),
                "kernel_cache_pins": kernel_cache.pin_count(),
                "kernel_cache": kernel_cache.cache_stats(),
            },
            "metrics": self.metrics.snapshot(),
        }

    def metrics_text(self) -> Tuple[int, str]:
        """``GET /metrics`` in Prometheus text exposition format."""
        _, snapshot = self.metrics_snapshot()
        return 200, render_prometheus(
            snapshot["metrics"], service=snapshot["service"]
        )

    def close(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful drain: finish admitted jobs, stop dispatchers."""
        drained = self.scheduler.shutdown(timeout=timeout)
        with self._batcher_lock:
            for batcher in self._batchers.values():
                batcher.close()
        return drained

    # ------------------------------------------------------------------
    # HTTP transport
    # ------------------------------------------------------------------

    def make_http_server(self) -> ThreadingHTTPServer:
        """Bind (but do not serve) the HTTP front end.

        ``config.port=0`` binds an ephemeral port — read it back from
        ``server.server_address`` (tests and the loadgen do).
        """
        return build_http_server(self, self.config.host, self.config.port)


def serve_forever(config: ServerConfig) -> int:
    """Boot the service and serve until interrupted (the CLI entry).

    Both ``Ctrl-C`` and ``SIGTERM`` (what containers and CI send) end
    in the same graceful drain: refuse new work, finish admitted jobs,
    flush the proof cache, exit 0.
    """
    service = ProverService(config)
    server = service.make_http_server()
    from repro.llm import available_models

    host, port = server.server_address[:2]
    models = ", ".join(available_models())
    print(
        f"prover service on http://{host}:{port} "
        f"(workers={config.workers}, batch_window={config.batch_window}s, "
        f"max_batch={config.max_batch_size}, "
        f"cache={config.cache_path or 'memory'})"
    )
    print(f"models: {models}")
    if config.trace_path:
        print(f"tracing job searches to {config.trace_path}")
    install_sigterm_drain()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining...")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0
