"""PaddedLog.v — log padding (FileSystem).

The DFSCQ log pads entry lists to a block boundary with (0, v0)
entries; padding must not change the live-entry count.  Contains the
paper's Figure 2 Case B lemma ``ndata_log_padded_log`` with its
rewrite-heavy human proof.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "PaddedLog",
        "FileSystem",
        imports=("Prelude", "ListUtils", "Rounding", "Pred", "AddrLog"),
    )

    f.definition(
        "padded_log",
        "(l : list (prod nat valu))",
        "list (prod nat valu)",
        "l ++ repeat (pair 0 v0) (pad2 (length l))",
    )

    # Figure 2, Case B.
    f.lemma(
        "ndata_log_padded_log",
        "forall (a : list (prod nat valu)), "
        "ndata_log (padded_log a) = ndata_log a",
        "unfold ndata_log, padded_log. intros.\n"
        "rewrite map_app. rewrite repeat_map. simpl.\n"
        "rewrite nonzero_addrs_app.\n"
        "rewrite nonzero_addrs_repeat_0. apply plus_0_r.",
    )
    f.lemma(
        "padded_log_length",
        "forall (l : list (prod nat valu)), "
        "length (padded_log l) = roundup2 (length l)",
        "intros. unfold padded_log, roundup2. rewrite app_length. "
        "rewrite repeat_length. reflexivity.",
    )
    f.lemma(
        "padded_log_even",
        "forall (l : list (prod nat valu)), "
        "even (length (padded_log l)) = true",
        "intros. rewrite padded_log_length. apply even_roundup2.",
    )
    f.lemma(
        "padded_log_nil",
        "padded_log nil = nil",
        "unfold padded_log. simpl. reflexivity.",
    )
    f.lemma(
        "padded_log_oob",
        "forall (l : list (prod nat valu)), "
        "pad2 (length l) = 0 -> padded_log l = l",
        "intros. unfold padded_log. rewrite H. simpl. "
        "apply app_nil_r.",
    )
    f.lemma(
        "padded_log_idem",
        "forall (l : list (prod nat valu)), "
        "padded_log (padded_log l) = padded_log l",
        "intros. apply padded_log_oob. rewrite padded_log_length. "
        "apply pad2_roundup2.",
    )
    f.lemma(
        "padded_log_ge",
        "forall (l : list (prod nat valu)), "
        "length l <= length (padded_log l)",
        "intros. rewrite padded_log_length. apply roundup2_ge.",
    )
    f.lemma(
        "firstn_padded_log",
        "forall (l : list (prod nat valu)), "
        "firstn (length l) (padded_log l) = l",
        "intros. unfold padded_log. apply firstn_app.",
    )
    f.lemma(
        "padded_log_app_ndata",
        "forall (l1 l2 : list (prod nat valu)), "
        "ndata_log (padded_log l1 ++ l2) = ndata_log l1 + ndata_log l2",
        "intros. rewrite ndata_log_app. "
        "rewrite ndata_log_padded_log. reflexivity.",
    )
    f.hint_resolve("ndata_log_padded_log", "padded_log_length")

    return f.build()
