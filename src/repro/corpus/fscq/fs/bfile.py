"""BFile.v — block-level file operations and their CHL specs
(FileSystem).

A file is a list of block values; reads and writes are the CHL
programs from Hoare.v.  These are the first lemmas that combine the
separation algebra, the hoare rules, and the list substrate — the
"dependent theorems" flavour the paper blames for the File System
category's difficulty.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "BFile",
        "FileSystem",
        imports=("Prelude", "ListUtils", "Pred", "SepStar", "Hoare", "Crash"),
    )

    f.definition(
        "bupd",
        "(data : list valu) (i : nat) (v : valu)",
        "list valu",
        "updN data i v",
    )

    f.lemma(
        "bupd_length",
        "forall (data : list valu) (i : nat) (v : valu), "
        "length (bupd data i v) = length data",
        "intros. unfold bupd. apply length_updN.",
    )
    f.lemma(
        "bupd_sel_eq",
        "forall (data : list valu) (i : nat) (v def : valu), "
        "i < length data -> selN (bupd data i v) i def = v",
        "intros. unfold bupd. apply selN_updN_eq. assumption.",
    )
    f.lemma(
        "bupd_sel_ne",
        "forall (data : list valu) (i j : nat) (v def : valu), "
        "i <> j -> selN (bupd data i v) j def = selN data j def",
        "intros. unfold bupd. apply selN_updN_ne. assumption.",
    )
    f.lemma(
        "bfile_read_ok",
        "forall (F : pred) (a : nat) (v : valu), "
        "hoare (F * a |-> v) (PRead a) (F * a |-> v) (F * a |-> v)",
        "intros. apply hoare_read. apply pimpl_refl.",
    )
    f.lemma(
        "bfile_write_ok",
        "forall (F : pred) (a : nat) (v0 v : valu), "
        "hoare (F * a |-> v0) (PWrite a v) (F * a |-> v) "
        "(por (F * a |-> v0) (F * a |-> v))",
        "intros. apply hoare_write.\n"
        "- apply pimpl_or_intro_l.\n"
        "- apply pimpl_or_intro_r.",
    )
    f.lemma(
        "bfile_write_then_read",
        "forall (F : pred) (a : nat) (v0 v : valu), "
        "hoare (F * a |-> v0) (PSeq (PWrite a v) (PRead a)) "
        "(F * a |-> v) (por (F * a |-> v0) (F * a |-> v))",
        "intros. eapply hoare_seq.\n"
        "- apply bfile_write_ok.\n"
        "- apply hoare_read. apply pimpl_or_intro_r.",
    )
    f.lemma(
        "bfile_write_crash_xform",
        "forall (F : pred) (a : nat) (v0 v : valu) (c : pred), "
        "(F * a |-> v0 =p=> c) -> (F * a |-> v =p=> c) -> "
        "hoare (F * a |-> v0) (PWrite a v) (F * a |-> v) "
        "(por c (crash_xform c))",
        "intros. eapply hoare_weaken_crash.\n"
        "- eapply hoare_write.\n"
        "  + apply H.\n"
        "  + apply H0.\n"
        "- apply pimpl_or_intro_l.",
    )
    f.lemma(
        "bfile_read_pre_weak",
        "forall (F G : pred) (a : nat) (v : valu), "
        "(G =p=> F * a |-> v) -> "
        "hoare G (PRead a) (F * a |-> v) (F * a |-> v)",
        "intros. eapply hoare_weaken_pre.\n"
        "- apply bfile_read_ok.\n"
        "- assumption.",
    )
    f.lemma(
        "bfile_two_writes",
        "forall (F : pred) (a : nat) (v0 v1 v2 : valu) (c : pred), "
        "(F * a |-> v0 =p=> c) -> (F * a |-> v1 =p=> c) -> "
        "(F * a |-> v2 =p=> c) -> "
        "hoare (F * a |-> v0) (PSeq (PWrite a v1) (PWrite a v2)) "
        "(F * a |-> v2) c",
        "intros. eapply hoare_seq.\n"
        "- apply hoare_write.\n"
        "  + apply H.\n"
        "  + apply H0.\n"
        "- apply hoare_write.\n"
        "  + apply H0.\n"
        "  + apply H1.",
    )
    f.lemma(
        "bfile_read_frame",
        "forall (F G : pred) (a : nat) (v : valu), "
        "hoare ((F * a |-> v) * G) (PRead a) "
        "((F * a |-> v) * G) ((F * a |-> v) * G)",
        "intros. eapply hoare_conseq.\n"
        "- eapply hoare_read. eapply sep_star_assoc_swap.\n"
        "- apply sep_star_assoc_swap.\n"
        "- apply sep_star_assoc_swap.\n"
        "- apply pimpl_refl.",
    )

    return f.build()
