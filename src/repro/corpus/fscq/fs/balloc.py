"""Balloc.v — bitmap block allocator (FileSystem).

A block bitmap is a ``list bool`` (true = used).  ``count_free`` and
``find_free`` mirror FSCQ's allocator queries; the lemmas relate
allocation to the free count.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "Balloc",
        "FileSystem",
        imports=("Prelude", "ArithUtils", "ListUtils", "WordUtils"),
    )

    f.fixpoint(
        "count_free",
        "list bool -> nat",
        [
            "count_free nil = 0",
            "count_free (true :: l) = count_free l",
            "count_free (false :: l) = S (count_free l)",
        ],
    )
    f.fixpoint(
        "opt_succ",
        "option nat -> option nat",
        [
            "opt_succ None = None",
            "opt_succ (Some n) = Some (S n)",
        ],
    )
    f.fixpoint(
        "find_free",
        "list bool -> option nat",
        [
            "find_free nil = None",
            "find_free (false :: l) = Some 0",
            "find_free (true :: l) = opt_succ (find_free l)",
        ],
    )
    f.definition(
        "alloc",
        "(bm : list bool) (i : nat)",
        "list bool",
        "updN bm i true",
    )
    f.definition(
        "free",
        "(bm : list bool) (i : nat)",
        "list bool",
        "updN bm i false",
    )

    f.lemma(
        "opt_succ_none",
        "forall (o : option nat), opt_succ o = None -> o = None",
        "destruct o; simpl; intros.\n"
        "- discriminate H.\n"
        "- reflexivity.",
    )
    f.lemma(
        "count_free_bound",
        "forall (bm : list bool), count_free bm <= length bm",
        "induction bm; simpl; auto.\n"
        "destruct a; simpl; lia.",
    )
    f.lemma(
        "count_free_repeat_false",
        "forall n, count_free (repeat false n) = n",
        "induction n; simpl; auto.\nf_equal. apply IHn.",
    )
    f.lemma(
        "count_free_repeat_true",
        "forall n, count_free (repeat true n) = 0",
        "induction n; simpl; auto.",
    )
    f.lemma(
        "count_free_app",
        "forall (b1 b2 : list bool), "
        "count_free (b1 ++ b2) = count_free b1 + count_free b2",
        "induction b1; simpl; intros.\n"
        "- reflexivity.\n"
        "- destruct a; simpl.\n"
        "  + apply IHb1.\n"
        "  + f_equal. apply IHb1.",
    )
    f.lemma(
        "alloc_length",
        "forall (bm : list bool) (i : nat), "
        "length (alloc bm i) = length bm",
        "intros. unfold alloc. apply length_updN.",
    )
    f.lemma(
        "free_length",
        "forall (bm : list bool) (i : nat), "
        "length (free bm i) = length bm",
        "intros. unfold free. apply length_updN.",
    )
    f.lemma(
        "alloc_le_count_free",
        "forall (bm : list bool) (i : nat), "
        "count_free (alloc bm i) <= count_free bm",
        "unfold alloc. induction bm; destruct i; simpl; intros; auto.\n"
        "- destruct a; simpl; lia.\n"
        "- destruct a; simpl.\n"
        "  + apply IHbm.\n"
        "  + pose proof (IHbm n). lia.",
    )
    f.lemma(
        "free_ge_count_free",
        "forall (bm : list bool) (i : nat), "
        "count_free bm <= count_free (free bm i)",
        "unfold free. induction bm; destruct i; simpl; intros; auto.\n"
        "- destruct a; simpl; lia.\n"
        "- destruct a; simpl.\n"
        "  + apply IHbm.\n"
        "  + pose proof (IHbm n). lia.",
    )
    f.lemma(
        "find_free_none_full",
        "forall (bm : list bool), "
        "find_free bm = None -> count_free bm = 0",
        "induction bm; simpl; intros.\n"
        "- reflexivity.\n"
        "- destruct a; simpl in *.\n"
        "  + apply IHbm. apply opt_succ_none. assumption.\n"
        "  + discriminate H.",
    )
    f.lemma(
        "find_free_in_range",
        "forall (bm : list bool) (i : nat), "
        "find_free bm = Some i -> i < length bm",
        "induction bm; simpl; intros.\n"
        "- discriminate H.\n"
        "- destruct a; simpl in *.\n"
        "  + destruct (find_free l) eqn:E; simpl in H.\n"
        "    * inversion H. assert (a < length l) as Hlt.\n"
        "      { apply IHbm. assumption. }\n"
        "      unfold lt in *. lia.\n"
        "    * discriminate H.\n"
        "  + inversion H. unfold lt. apply le_n_S. apply le_0_n.",
    )
    f.lemma(
        "find_free_is_free",
        "forall (bm : list bool) (i : nat), "
        "find_free bm = Some i -> selN bm i true = false",
        "induction bm; simpl; intros.\n"
        "- discriminate H.\n"
        "- destruct a; simpl in *.\n"
        "  + destruct (find_free l) eqn:E; simpl in H.\n"
        "    * inversion H. apply IHbm. assumption.\n"
        "    * discriminate H.\n"
        "  + inversion H. reflexivity.",
    )

    return f.build()
