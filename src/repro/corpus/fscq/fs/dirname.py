"""DirName.v — directory-name bookkeeping (FileSystem).

Lemmas about the name column (``map fst ents``) of directory entry
lists: distinctness through updates and concatenation, lookups by
position.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "DirName",
        "FileSystem",
        imports=("Prelude", "ListUtils", "WordUtils", "DirTree"),
    )

    f.definition(
        "ent_names",
        "(ents : list (prod string dirtree))",
        "list string",
        "map fst ents",
    )

    f.lemma(
        "ent_names_nil",
        "ent_names nil = nil",
        "reflexivity.",
    )
    f.lemma(
        "ent_names_cons",
        "forall (e : prod string dirtree) "
        "(ents : list (prod string dirtree)), "
        "ent_names (e :: ents) = fst e :: ent_names ents",
        "intros. unfold ent_names. apply map_cons.",
    )
    f.lemma(
        "ent_names_app",
        "forall (e1 e2 : list (prod string dirtree)), "
        "ent_names (e1 ++ e2) = ent_names e1 ++ ent_names e2",
        "intros. unfold ent_names. apply map_app.",
    )
    f.lemma(
        "ent_names_length",
        "forall (ents : list (prod string dirtree)), "
        "length (ent_names ents) = length ents",
        "intros. unfold ent_names. apply map_length.",
    )
    f.lemma(
        "dir_names_head_not_in",
        "forall (n : string) (t : dirtree) "
        "(ents : list (prod string dirtree)), "
        "NoDup (ent_names (pair n t :: ents)) -> "
        "~ In n (ent_names ents)",
        "intros. unfold ent_names in *. simpl in H. "
        "apply NoDup_cons_not_in in H. assumption.",
    )
    f.lemma(
        "dir_names_rest_distinct",
        "forall (e : prod string dirtree) "
        "(ents : list (prod string dirtree)), "
        "NoDup (ent_names (e :: ents)) -> NoDup (ent_names ents)",
        "intros. unfold ent_names in *. rewrite map_cons in H. "
        "apply NoDup_cons_inv in H. assumption.",
    )
    f.lemma(
        "dir_names_app_l",
        "forall (e1 e2 : list (prod string dirtree)), "
        "NoDup (ent_names (e1 ++ e2)) -> NoDup (ent_names e1)",
        "intros. rewrite ent_names_app in H. "
        "eapply NoDup_app_l. eauto.",
    )
    f.lemma(
        "ent_names_upd_same",
        "forall (ents : list (prod string dirtree)) (i : nat) "
        "(n : string) (t t' : dirtree), "
        "selN (ent_names ents) i n = n -> "
        "ent_names (updN ents i (pair n t')) = "
        "updN (ent_names ents) i n",
        "intros. unfold ent_names. rewrite map_updN. "
        "simpl. reflexivity.",
    )
    f.lemma(
        "dir_names_distinct_head_neq",
        "forall (n1 n2 : string) (t1 t2 : dirtree) "
        "(ents : list (prod string dirtree)), "
        "NoDup (ent_names (pair n1 t1 :: pair n2 t2 :: ents)) -> "
        "n1 <> n2",
        "intros. unfold ent_names in H. simpl in H. "
        "apply NoDup_cons_not_in in H. intro Heq. apply H. "
        "rewrite Heq. left. reflexivity.",
    )

    return f.build()
