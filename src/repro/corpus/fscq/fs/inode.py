"""Inode.v — inode representation invariants (FileSystem).

An inode is a (length, block-list) pair; ``inode_ok`` is the
representation invariant tying the recorded length to the block list,
preserved by the grow/shrink/update operations.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "Inode",
        "FileSystem",
        imports=("Prelude", "ArithUtils", "ListUtils", "Balloc"),
    )

    f.definition("ilen", "(i : prod nat (list nat))", "nat", "fst i")
    f.definition(
        "iblocks", "(i : prod nat (list nat))", "list nat", "snd i"
    )
    f.definition(
        "inode_ok",
        "(i : prod nat (list nat))",
        "Prop",
        "length (snd i) = fst i",
    )
    f.definition(
        "igrow",
        "(i : prod nat (list nat)) (b : nat)",
        "prod nat (list nat)",
        "pair (S (fst i)) (b :: snd i)",
    )
    f.definition(
        "iupd",
        "(i : prod nat (list nat)) (k b : nat)",
        "prod nat (list nat)",
        "pair (fst i) (updN (snd i) k b)",
    )

    f.lemma(
        "inode_ok_empty",
        "inode_ok (pair 0 nil)",
        "unfold inode_ok. simpl. reflexivity.",
    )
    f.lemma(
        "inode_ok_grow",
        "forall (i : prod nat (list nat)) (b : nat), "
        "inode_ok i -> inode_ok (igrow i b)",
        "unfold inode_ok, igrow. intros. simpl. "
        "f_equal. assumption.",
    )
    f.lemma(
        "inode_ok_upd",
        "forall (i : prod nat (list nat)) (k b : nat), "
        "inode_ok i -> inode_ok (iupd i k b)",
        "unfold inode_ok, iupd. intros. simpl. "
        "rewrite length_updN. assumption.",
    )
    f.lemma(
        "igrow_len",
        "forall (i : prod nat (list nat)) (b : nat), "
        "ilen (igrow i b) = S (ilen i)",
        "intros. unfold ilen, igrow. simpl. reflexivity.",
    )
    f.lemma(
        "iupd_len",
        "forall (i : prod nat (list nat)) (k b : nat), "
        "ilen (iupd i k b) = ilen i",
        "intros. unfold ilen, iupd. simpl. reflexivity.",
    )
    f.lemma(
        "igrow_blocks_head",
        "forall (i : prod nat (list nat)) (b : nat), "
        "selN (iblocks (igrow i b)) 0 0 = b",
        "intros. unfold iblocks, igrow. simpl. reflexivity.",
    )
    f.lemma(
        "inode_ok_shrink",
        "forall (n b : nat) (bl : list nat), "
        "inode_ok (pair (S n) (b :: bl)) -> inode_ok (pair n bl)",
        "unfold inode_ok. simpl. intros. inversion H. reflexivity.",
    )
    f.lemma(
        "inode_ok_len_blocks",
        "forall (i : prod nat (list nat)), "
        "inode_ok i -> length (iblocks i) = ilen i",
        "unfold inode_ok, iblocks, ilen. intros. assumption.",
    )
    f.lemma(
        "inode_ok_zero_nil",
        "forall (bl : list nat), inode_ok (pair 0 bl) -> bl = nil",
        "unfold inode_ok. simpl. intros. apply length_nil. assumption.",
    )
    f.lemma(
        "iupd_out_of_bounds",
        "forall (i : prod nat (list nat)) (k b : nat), "
        "inode_ok i -> ilen i <= k -> "
        "length (iblocks (iupd i k b)) = ilen i",
        "unfold inode_ok, iblocks, ilen, iupd. intros. simpl. "
        "rewrite length_updN. assumption.",
    )

    return f.build()
