"""Txn.v — multi-step transaction specs (FileSystem).

Hoare specs for straight-line transactions of increasing length.
Before FSCQ grew its automation, each extra program step cost another
``hoare_seq``/``hoare_read`` block — these proofs scale linearly with
the transaction and populate the File System category's long bins,
matching the paper's observation that FS proofs lean on chains of
dependent reasoning.
"""

from __future__ import annotations

from typing import List

from repro.corpus.model import FileBuilder, SourceFile


def _read_chain_prog(k: int) -> str:
    """``PSeq (PRead a) (PSeq (PRead a) ...)`` with ``k`` reads."""
    prog = "(PRead a)"
    for _ in range(k - 1):
        prog = f"(PSeq (PRead a) {prog})"
    return prog


def _read_chain_proof(k: int) -> str:
    """One hoare_seq/hoare_read block per step."""
    lines: List[str] = ["intros."]
    for depth in range(k - 1):
        indent = "  " * depth
        bullet = "-+*"[depth % 3] * (depth // 3 + 1)
        lines.append(f"{indent}eapply hoare_seq.")
        lines.append(f"{indent}{bullet} apply hoare_read. apply pimpl_refl.")
        lines.append(f"{indent}{bullet}")
    last_indent = "  " * max(0, k - 2)
    lines.append(f"{last_indent}apply hoare_read. apply pimpl_refl.")
    return "\n".join(lines)


def build() -> SourceFile:
    f = FileBuilder(
        "Txn",
        "FileSystem",
        imports=("Pred", "SepStar", "Hoare", "Crash", "BFile"),
    )

    for k in (2, 3, 4, 5):
        f.lemma(
            f"txn_read_chain_{k}",
            "forall (F : pred) (a : nat) (v : valu), "
            f"hoare (F * a |-> v) {_read_chain_prog(k)} "
            "(F * a |-> v) (F * a |-> v)",
            _read_chain_proof(k),
        )

    f.lemma(
        "txn_write_read_write",
        "forall (F : pred) (a : nat) (v0 v1 v2 : valu) (c : pred), "
        "(F * a |-> v0 =p=> c) -> (F * a |-> v1 =p=> c) -> "
        "(F * a |-> v2 =p=> c) -> "
        "hoare (F * a |-> v0) "
        "(PSeq (PWrite a v1) (PSeq (PRead a) (PWrite a v2))) "
        "(F * a |-> v2) c",
        "intros. eapply hoare_seq.\n"
        "- apply hoare_write.\n"
        "  + apply H.\n"
        "  + apply H0.\n"
        "- eapply hoare_seq.\n"
        "  + apply hoare_read. apply H0.\n"
        "  + apply hoare_write.\n"
        "    * apply H0.\n"
        "    * apply H1.",
    )
    f.lemma(
        "txn_double_commit",
        "forall (F : pred) (a : nat) (v0 v1 : valu), "
        "hoare (F * a |-> v0) "
        "(PSeq (PWrite a v1) (PSeq PRet (PWrite a v1))) "
        "(F * a |-> v1) (por (F * a |-> v0) (F * a |-> v1))",
        "intros. eapply hoare_seq.\n"
        "- apply hoare_write.\n"
        "  + apply pimpl_or_intro_l.\n"
        "  + apply pimpl_or_intro_r.\n"
        "- eapply hoare_seq.\n"
        "  + apply hoare_ret. apply pimpl_or_intro_r.\n"
        "  + apply hoare_write.\n"
        "    * apply pimpl_or_intro_r.\n"
        "    * apply pimpl_or_intro_r.",
    )
    f.lemma(
        "txn_framed_write",
        "forall (F G : pred) (a : nat) (v0 v1 : valu) (c : pred), "
        "((F * a |-> v0) * G =p=> c) -> ((F * a |-> v1) * G =p=> c) -> "
        "hoare ((F * a |-> v0) * G) (PWrite a v1) "
        "((F * a |-> v1) * G) c",
        "intros. eapply hoare_conseq.\n"
        "- eapply hoare_write.\n"
        "  + eapply pimpl_trans.\n"
        "    * eapply sep_star_assoc_swap.\n"
        "    * apply H.\n"
        "  + eapply pimpl_trans.\n"
        "    * eapply sep_star_assoc_swap.\n"
        "    * apply H0.\n"
        "- apply sep_star_assoc_swap.\n"
        "- apply sep_star_assoc_swap.\n"
        "- apply pimpl_refl.",
    )

    return f.build()
