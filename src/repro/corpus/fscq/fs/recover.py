"""Recover.v — crash recovery specifications (FileSystem).

DFSCQ's headline guarantee: after a crash anywhere in a transaction,
replaying the log from a crash-stable state restores a consistent
disk.  These lemmas tie the CHL crash machinery (``crash_xform``,
``crash_idem``) to transaction specs.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "Recover",
        "FileSystem",
        imports=(
            "Pred",
            "SepStar",
            "Hoare",
            "Crash",
            "Idempotence",
            "BFile",
            "Txn",
        ),
    )

    f.definition(
        "recover_ok",
        "(p : prog) (pre post c : pred)",
        "Prop",
        "hoare pre p post c /\\ crash_idem c",
    )

    f.lemma(
        "recover_ok_hoare",
        "forall (p : prog) (pre post c : pred), "
        "recover_ok p pre post c -> hoare pre p post c",
        "unfold recover_ok. intros. destruct H. assumption.",
    )
    f.lemma(
        "recover_ok_idem",
        "forall (p : prog) (pre post c : pred), "
        "recover_ok p pre post c -> crash_idem c",
        "unfold recover_ok. intros. destruct H. assumption.",
    )
    f.lemma(
        "recover_ok_intro",
        "forall (p : prog) (pre post c : pred), "
        "hoare pre p post c -> crash_idem c -> recover_ok p pre post c",
        "unfold recover_ok. intros. split.\n"
        "- assumption.\n"
        "- assumption.",
    )
    f.lemma(
        "recover_ok_weaken_pre",
        "forall (p : prog) (pre pre' post c : pred), "
        "recover_ok p pre post c -> (pre' =p=> pre) -> "
        "recover_ok p pre' post c",
        "unfold recover_ok. intros. destruct H. split.\n"
        "- eapply hoare_weaken_pre.\n"
        "  + apply H.\n"
        "  + assumption.\n"
        "- assumption.",
    )
    f.lemma(
        "recover_ok_crash_stable",
        "forall (p : prog) (pre post c : pred), "
        "recover_ok p pre post c -> (crash_xform c =p=> c)",
        "unfold recover_ok, crash_idem. intros. "
        "destruct H. assumption.",
    )
    f.lemma(
        "recover_ok_double_crash",
        "forall (p : prog) (pre post c : pred), "
        "recover_ok p pre post c -> "
        "(crash_xform (crash_xform c) =p=> c)",
        "intros. apply recover_ok_crash_stable in H. "
        "eapply pimpl_trans.\n"
        "- apply crash_xform_idem.\n"
        "- assumption.",
    )
    f.lemma(
        "recover_ok_seq",
        "forall (p1 p2 : prog) (pre mid post c : pred), "
        "recover_ok p1 pre mid c -> recover_ok p2 mid post c -> "
        "recover_ok (PSeq p1 p2) pre post c",
        "unfold recover_ok. intros. destruct H. destruct H0. split.\n"
        "- eapply hoare_seq.\n"
        "  + apply H.\n"
        "  + assumption.\n"
        "- assumption.",
    )
    f.lemma(
        "recover_ok_ret",
        "forall (c : pred), crash_idem c -> recover_ok PRet c c c",
        "intros. unfold recover_ok. split.\n"
        "- apply hoare_ret. apply pimpl_refl.\n"
        "- assumption.",
    )
    f.lemma(
        "recover_ok_star_crash",
        "forall (p : prog) (pre post c1 c2 : pred), "
        "recover_ok p pre post (c1 * c2) -> crash_idem c1 -> "
        "crash_idem c2 -> "
        "(crash_xform (c1 * c2) =p=> c1 * c2)",
        "intros. "
        "assert (crash_idem (c1 * c2)) as Hs.\n"
        "{ apply crash_idem_sep_star.\n"
        "  - assumption.\n"
        "  - assumption. }\n"
        "unfold crash_idem in Hs. assumption.",
    )
    f.lemma(
        "recover_ok_or_crash",
        "forall (p : prog) (pre post c1 c2 : pred), "
        "crash_idem c1 -> crash_idem c2 -> "
        "hoare pre p post (por c1 c2) -> "
        "recover_ok p pre post (por c1 c2)",
        "intros. apply recover_ok_intro.\n"
        "- assumption.\n"
        "- apply crash_idem_or.\n"
        "  + assumption.\n"
        "  + assumption.",
    )
    f.lemma(
        "recover_ok_xform_crash",
        "forall (p : prog) (pre post c : pred), "
        "hoare pre p post (crash_xform c) -> "
        "recover_ok p pre post (crash_xform c)",
        "intros. apply recover_ok_intro.\n"
        "- assumption.\n"
        "- apply crash_idem_xform.",
    )

    return f.build()
