"""Super.v — superblock accounting (FileSystem).

The superblock records total and used block counts; its invariant and
the accounting updates performed by allocation and deallocation.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "Super",
        "FileSystem",
        imports=("Prelude", "ArithUtils", "Balloc"),
    )

    f.definition("sb_total", "(sb : prod nat nat)", "nat", "fst sb")
    f.definition("sb_used", "(sb : prod nat nat)", "nat", "snd sb")
    f.definition(
        "sb_ok",
        "(sb : prod nat nat)",
        "Prop",
        "snd sb <= fst sb",
    )
    f.definition(
        "sb_alloc",
        "(sb : prod nat nat)",
        "prod nat nat",
        "pair (fst sb) (S (snd sb))",
    )
    f.definition(
        "sb_free",
        "(sb : prod nat nat)",
        "prod nat nat",
        "pair (fst sb) (snd sb - 1)",
    )

    f.lemma(
        "sb_ok_empty",
        "forall (total : nat), sb_ok (pair total 0)",
        "intros. unfold sb_ok. simpl. apply le_0_n.",
    )
    f.lemma(
        "sb_alloc_ok",
        "forall (sb : prod nat nat), "
        "sb_ok sb -> sb_used sb < sb_total sb -> sb_ok (sb_alloc sb)",
        "unfold sb_ok, sb_used, sb_total, sb_alloc. intros. "
        "simpl. unfold lt in H0. lia.",
    )
    f.lemma(
        "sb_free_ok",
        "forall (sb : prod nat nat), sb_ok sb -> sb_ok (sb_free sb)",
        "unfold sb_ok, sb_free. intros. simpl. lia.",
    )
    f.lemma(
        "sb_alloc_used",
        "forall (sb : prod nat nat), "
        "sb_used (sb_alloc sb) = S (sb_used sb)",
        "intros. unfold sb_used, sb_alloc. simpl. reflexivity.",
    )
    f.lemma(
        "sb_alloc_total",
        "forall (sb : prod nat nat), "
        "sb_total (sb_alloc sb) = sb_total sb",
        "intros. unfold sb_total, sb_alloc. simpl. reflexivity.",
    )
    f.lemma(
        "sb_free_alloc_used",
        "forall (sb : prod nat nat), "
        "sb_used (sb_free (sb_alloc sb)) = sb_used sb",
        "intros. unfold sb_used, sb_free, sb_alloc. simpl. lia.",
    )
    f.lemma(
        "sb_used_free_le",
        "forall (sb : prod nat nat), "
        "sb_used (sb_free sb) <= sb_used sb",
        "intros. unfold sb_used, sb_free. simpl. lia.",
    )
    f.lemma(
        "sb_ok_used_bound",
        "forall (total used : nat), "
        "sb_ok (pair total used) -> used <= total",
        "unfold sb_ok. simpl. intros. assumption.",
    )

    return f.build()
