"""DirTree.v — directory trees and name-distinctness (FileSystem).

The DFSCQ directory tree: files and directories with named entries.
``tree_names_distinct`` is the invariant from the paper's Figure 2
Case C; its ``tree_name_distinct_head`` lemma appears here with the
redundant human proof the paper contrasts against the LLM's.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "DirTree",
        "FileSystem",
        imports=("Prelude", "ListUtils", "WordUtils", "Pred"),
    )

    f.opaque_type("string")
    f.inductive(
        "dirtree",
        [
            ("TreeFile", ["nat", "list valu"], ["inum", "fdata"]),
            (
                "TreeDir",
                ["nat", "list (prod string dirtree)"],
                ["inum", "ents"],
            ),
        ],
    )
    f.fixpoint(
        "tree_inum",
        "dirtree -> nat",
        [
            "tree_inum (TreeFile inum fdata) = inum",
            "tree_inum (TreeDir inum ents) = inum",
        ],
    )
    f.fixpoint(
        "is_file",
        "dirtree -> bool",
        [
            "is_file (TreeFile inum fdata) = true",
            "is_file (TreeDir inum ents) = false",
        ],
    )
    f.pred(
        "tree_names_distinct",
        "dirtree -> Prop",
        [
            (
                "TND_file",
                "forall (inum : nat) (fdata : list valu), "
                "tree_names_distinct (TreeFile inum fdata)",
            ),
            (
                "TND_dir",
                "forall (inum : nat) "
                "(ents : list (prod string dirtree)), "
                "Forall tree_names_distinct (map snd ents) -> "
                "NoDup (map fst ents) -> "
                "tree_names_distinct (TreeDir inum ents)",
            ),
        ],
    )
    f.hint_constructors("tree_names_distinct")

    f.lemma(
        "tree_names_distinct_file",
        "forall (inum : nat) (fdata : list valu), "
        "tree_names_distinct (TreeFile inum fdata)",
        "intros. constructor.",
    )
    f.lemma(
        "tree_names_distinct_empty_dir",
        "forall (inum : nat), "
        "tree_names_distinct (TreeDir inum nil)",
        "intros. constructor.\n"
        "- simpl. constructor.\n"
        "- simpl. constructor.",
    )

    # Figure 2, Case C: the paper's redundant human proof.
    f.lemma(
        "tree_name_distinct_head",
        "forall (inum : nat) (name : string) (l : list (prod string "
        "dirtree)) (t : dirtree), "
        "tree_names_distinct (TreeDir inum (pair name t :: l)) -> "
        "tree_names_distinct t",
        "intros. destruct t.\n"
        "- constructor.\n"
        "- inversion H. rewrite map_cons in H0. "
        "apply Forall_inv in H0. simpl in H0. inversion H0. "
        "constructor.\n"
        "  + assumption.\n"
        "  + assumption.",
    )
    f.lemma(
        "tree_name_distinct_rest",
        "forall (inum : nat) (e : prod string dirtree) "
        "(l : list (prod string dirtree)), "
        "tree_names_distinct (TreeDir inum (e :: l)) -> "
        "tree_names_distinct (TreeDir inum l)",
        "intros. inversion H. constructor.\n"
        "- apply Forall_inv_tail in H0. assumption.\n"
        "- simpl in H1. apply NoDup_cons_inv in H1. assumption.",
    )
    f.lemma(
        "tree_names_distinct_subtrees",
        "forall (inum : nat) (ents : list (prod string dirtree)), "
        "tree_names_distinct (TreeDir inum ents) -> "
        "Forall tree_names_distinct (map snd ents)",
        "intros. inversion H. assumption.",
    )
    f.lemma(
        "tree_names_distinct_names",
        "forall (inum : nat) (ents : list (prod string dirtree)), "
        "tree_names_distinct (TreeDir inum ents) -> "
        "NoDup (map fst ents)",
        "intros. inversion H. assumption.",
    )
    f.lemma(
        "tree_inum_file",
        "forall (inum : nat) (fdata : list valu), "
        "tree_inum (TreeFile inum fdata) = inum",
        "intros. reflexivity.",
    )
    f.lemma(
        "tree_names_distinct_in_subtree",
        "forall (inum : nat) (ents : list (prod string dirtree)) "
        "(t : dirtree), "
        "tree_names_distinct (TreeDir inum ents) -> "
        "In t (map snd ents) -> tree_names_distinct t",
        "intros. apply tree_names_distinct_subtrees in H. "
        "eapply Forall_forall_in.\n"
        "- apply H.\n"
        "- assumption.",
    )
    f.lemma(
        "is_file_not_dir",
        "forall (t : dirtree), is_file t = true -> "
        "forall (inum : nat) (ents : list (prod string dirtree)), "
        "t <> TreeDir inum ents",
        "intros. destruct t.\n"
        "- discriminate.\n"
        "- simpl in H. discriminate H.",
    )
    f.lemma(
        "tree_names_distinct_dir_cons_file",
        "forall (inum inum2 : nat) (name : string) "
        "(fdata : list valu) (l : list (prod string dirtree)), "
        "tree_names_distinct (TreeDir inum l) -> "
        "~ In name (map fst l) -> "
        "tree_names_distinct "
        "(TreeDir inum (pair name (TreeFile inum2 fdata) :: l))",
        "intros. inversion H. constructor.\n"
        "- rewrite map_cons. constructor.\n"
        "  + simpl. constructor.\n"
        "  + assumption.\n"
        "- rewrite map_cons. constructor.\n"
        "  + simpl. assumption.\n"
        "  + assumption.",
    )

    return f.build()
