"""LogReplay.v — applying a write-ahead log to a disk (FileSystem).

``replay`` folds a log of (address, value) entries over the disk
image with ``updN``; recovery correctness rests on these lemmas.
Several proofs here are long (generalized inductions with auxiliary
asserts), populating the File System category's heavy bins.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "LogReplay",
        "FileSystem",
        imports=(
            "Prelude",
            "ArithUtils",
            "ListUtils",
            "ListPred",
            "Pred",
            "AddrLog",
            "PaddedLog",
        ),
    )

    f.fixpoint(
        "replay",
        "list (prod nat valu) -> list valu -> list valu",
        [
            "replay nil d = d",
            "replay (e :: l) d = replay l (updN d (fst e) (snd e))",
        ],
    )

    f.lemma(
        "replay_nil",
        "forall (d : list valu), replay nil d = d",
        "intros. reflexivity.",
    )
    f.lemma(
        "replay_length",
        "forall (l : list (prod nat valu)) (d : list valu), "
        "length (replay l d) = length d",
        "induction l; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHl. apply length_updN.",
    )
    f.lemma(
        "replay_app",
        "forall (l1 l2 : list (prod nat valu)) (d : list valu), "
        "replay (l1 ++ l2) d = replay l2 (replay l1 d)",
        "induction l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- apply IHl1.",
    )
    f.lemma(
        "replay_cons_cons",
        "forall (e1 e2 : prod nat valu) (l : list (prod nat valu)) "
        "(d : list valu), "
        "replay (e1 :: e2 :: l) d = "
        "replay l (updN (updN d (fst e1) (snd e1)) (fst e2) (snd e2))",
        "intros. simpl. reflexivity.",
    )
    f.lemma(
        "replay_last_wins",
        "forall (a : nat) (v1 v2 : valu) (d : list valu) (def : valu), "
        "a < length d -> "
        "selN (replay (pair a v1 :: pair a v2 :: nil) d) a def = v2",
        "intros. simpl. apply selN_updN_eq. "
        "rewrite length_updN. assumption.",
    )
    f.lemma(
        "replay_untouched",
        "forall (l : list (prod nat valu)) (d : list valu) "
        "(j : nat) (def : valu), "
        "Forall (fun e => fst e <> j) l -> "
        "selN (replay l d) j def = selN d j def",
        "induction l; simpl; intros.\n"
        "- reflexivity.\n"
        "- inversion H. rewrite IHl.\n"
        "  + apply selN_updN_ne. apply H0.\n"
        "  + assumption.",
    )
    f.lemma(
        "replay_single",
        "forall (a : nat) (v : valu) (d : list valu) (def : valu), "
        "a < length d -> "
        "selN (replay (pair a v :: nil) d) a def = v",
        "intros. simpl. apply selN_updN_eq. assumption.",
    )
    f.lemma(
        "replay_padded_length",
        "forall (l : list (prod nat valu)) (d : list valu), "
        "length (replay (padded_log l) d) = length d",
        "intros. apply replay_length.",
    )
    f.lemma(
        "replay_app_length",
        "forall (l1 l2 : list (prod nat valu)) (d : list valu), "
        "length (replay (l1 ++ l2) d) = length d",
        "intros. rewrite replay_app. "
        "assert (length (replay l2 (replay l1 d)) = "
        "length (replay l1 d)) as Hinner.\n"
        "{ apply replay_length. }\n"
        "rewrite Hinner. apply replay_length.",
    )
    f.lemma(
        "replay_idempotent_nil",
        "forall (d : list valu), replay (padded_log nil) d = d",
        "intros. rewrite padded_log_nil. reflexivity.",
    )
    f.lemma(
        "replay_preserves_oob",
        "forall (l : list (prod nat valu)) (d : list valu) "
        "(j : nat) (def : valu), "
        "length d <= j -> selN (replay l d) j def = def",
        "intros. "
        "assert (forall (d2 : list valu) (i : nat) (w : valu), "
        "length d2 <= i -> selN d2 i w = w) as Hoob.\n"
        "{ induction d2; destruct i; simpl; intros.\n"
        "  - reflexivity.\n"
        "  - reflexivity.\n"
        "  - exfalso. lia.\n"
        "  - apply IHd2. lia. }\n"
        "apply Hoob. "
        "assert (length (replay l d) = length d) as Hlen.\n"
        "{ apply replay_length. }\n"
        "rewrite Hlen. assumption.",
    )
    f.lemma(
        "replay_two_disjoint",
        "forall (a1 a2 : nat) (v1 v2 : valu) (d : list valu) "
        "(def : valu), "
        "a1 <> a2 -> a1 < length d -> "
        "selN (replay (pair a1 v1 :: pair a2 v2 :: nil) d) a1 def = v1",
        "intros. simpl. "
        "assert (selN (updN (updN d a1 v1) a2 v2) a1 def = "
        "selN (updN d a1 v1) a1 def) as Hne.\n"
        "{ apply selN_updN_ne. intro Heq. apply H. "
        "rewrite Heq. reflexivity. }\n"
        "rewrite Hne. apply selN_updN_eq. assumption.",
    )

    return f.build()
