"""AddrLog.v — address-tagged log entries (FileSystem).

The write-ahead log stores (address, value) entries; address 0 marks
padding.  ``ndata_log`` counts live entries — the quantity the paper's
Figure 2 Case B lemma is about.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "AddrLog",
        "FileSystem",
        imports=("Prelude", "ArithUtils", "ListUtils", "WordUtils", "Pred"),
    )

    f.fixpoint(
        "nonzero_addrs",
        "list nat -> nat",
        [
            "nonzero_addrs nil = 0",
            "nonzero_addrs (0 :: l) = nonzero_addrs l",
            "nonzero_addrs (S a :: l) = S (nonzero_addrs l)",
        ],
    )
    f.definition(
        "ndata_log",
        "(l : list (prod nat valu))",
        "nat",
        "nonzero_addrs (map fst l)",
    )
    f.definition(
        "addr_valid",
        "(e : prod nat valu)",
        "Prop",
        "0 < fst e",
    )

    f.lemma(
        "nonzero_addrs_nil",
        "nonzero_addrs nil = 0",
        "reflexivity.",
    )
    f.lemma(
        "nonzero_addrs_app",
        "forall (l1 l2 : list nat), "
        "nonzero_addrs (l1 ++ l2) = nonzero_addrs l1 + nonzero_addrs l2",
        "induction l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- destruct a; simpl.\n"
        "  + apply IHl1.\n"
        "  + f_equal. apply IHl1.",
    )
    f.lemma(
        "nonzero_addrs_repeat_0",
        "forall n, nonzero_addrs (repeat 0 n) = 0",
        "induction n; simpl; auto.",
    )
    f.lemma(
        "nonzero_addrs_app_zeros",
        "forall (l : list nat) (n : nat), "
        "nonzero_addrs (l ++ repeat 0 n) = nonzero_addrs l",
        "intros. rewrite nonzero_addrs_app. "
        "rewrite nonzero_addrs_repeat_0. apply plus_0_r.",
    )
    f.lemma(
        "nonzero_addrs_bound",
        "forall (l : list nat), nonzero_addrs l <= length l",
        "induction l; simpl; auto.\n"
        "destruct a; simpl; lia.",
    )
    f.lemma(
        "nonzero_addrs_cons_zero",
        "forall (l : list nat), nonzero_addrs (0 :: l) = nonzero_addrs l",
        "intros. reflexivity.",
    )
    f.lemma(
        "ndata_log_nil",
        "ndata_log nil = 0",
        "reflexivity.",
    )
    f.lemma(
        "ndata_log_app",
        "forall (l1 l2 : list (prod nat valu)), "
        "ndata_log (l1 ++ l2) = ndata_log l1 + ndata_log l2",
        "intros. unfold ndata_log. rewrite map_app. "
        "apply nonzero_addrs_app.",
    )
    f.lemma(
        "ndata_log_cons_zero",
        "forall (v : valu) (l : list (prod nat valu)), "
        "ndata_log (pair 0 v :: l) = ndata_log l",
        "intros. unfold ndata_log. simpl. reflexivity.",
    )
    f.lemma(
        "ndata_log_cons_nonzero",
        "forall (a : nat) (v : valu) (l : list (prod nat valu)), "
        "ndata_log (pair (S a) v :: l) = S (ndata_log l)",
        "intros. unfold ndata_log. simpl. reflexivity.",
    )
    f.lemma(
        "ndata_log_bound",
        "forall (l : list (prod nat valu)), ndata_log l <= length l",
        "intros. unfold ndata_log. "
        "pose proof (nonzero_addrs_bound (map fst l)). "
        "rewrite map_length in H. assumption.",
    )
    f.lemma(
        "ndata_log_all_valid",
        "forall (l : list (prod nat valu)), "
        "Forall addr_valid l -> ndata_log l = length l",
        "induction l; simpl; intros.\n"
        "- reflexivity.\n"
        "- inversion H. destruct a. unfold addr_valid in H0. "
        "simpl in H0. destruct a.\n"
        "  + exfalso. unfold lt in H0. lia.\n"
        "  + rewrite ndata_log_cons_nonzero. f_equal. "
        "apply IHl. assumption.",
    )
    f.hint_resolve("nonzero_addrs_repeat_0", "ndata_log_nil")

    return f.build()
