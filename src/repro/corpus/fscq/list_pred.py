"""ListPred.v — heavier list-predicate lemmas (Utilities).

The long-proof tail of the Utilities category: compound Forall/NoDup
facts and selN/app interaction lemmas whose human proofs run to many
case splits — the 64-256-token bins of the paper's Figure 1.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "ListPred",
        "Utilities",
        imports=("Prelude", "ArithUtils", "ListUtils", "WordUtils"),
    )

    f.lemma(
        "selN_app2",
        "forall (A : Type) (l1 l2 : list A) (i : nat) (def : A), "
        "length l1 <= i -> "
        "selN (l1 ++ l2) i def = selN l2 (i - length l1) def",
        "induction l1; simpl; intros.\n"
        "- rewrite sub_0_r. reflexivity.\n"
        "- destruct i; simpl.\n"
        "  + exfalso. lia.\n"
        "  + apply IHl1. lia.",
    )
    f.lemma(
        "Forall_app_r",
        "forall (A : Type) (P : A -> Prop) (l1 l2 : list A), "
        "Forall P (l1 ++ l2) -> Forall P l2",
        "induction l1; simpl; intros.\n"
        "- assumption.\n"
        "- inversion H. apply IHl1. assumption.",
    )
    f.lemma(
        "Forall_app_split",
        "forall (A : Type) (P : A -> Prop) (l1 l2 : list A), "
        "Forall P (l1 ++ l2) -> Forall P l1 /\\ Forall P l2",
        "intros. split.\n"
        "- eapply Forall_app_l. apply H.\n"
        "- eapply Forall_app_r. apply H.",
    )
    f.lemma(
        "Forall_firstn",
        "forall (A : Type) (P : A -> Prop) (l : list A) (n : nat), "
        "Forall P l -> Forall P (firstn n l)",
        "induction l; destruct n; simpl; intros; auto.\n"
        "inversion H. constructor.\n"
        "- assumption.\n"
        "- apply IHl. assumption.",
    )
    f.lemma(
        "Forall_skipn",
        "forall (A : Type) (P : A -> Prop) (l : list A) (n : nat), "
        "Forall P l -> Forall P (skipn n l)",
        "induction l; destruct n; simpl; intros; auto.\n"
        "inversion H. apply IHl. assumption.",
    )
    f.lemma(
        "Forall_updN",
        "forall (A : Type) (P : A -> Prop) (l : list A) (i : nat) "
        "(v : A), "
        "Forall P l -> P v -> Forall P (updN l i v)",
        "induction l; destruct i; simpl; intros; auto.\n"
        "- inversion H. constructor.\n"
        "  + assumption.\n"
        "  + assumption.\n"
        "- inversion H. constructor.\n"
        "  + assumption.\n"
        "  + apply IHl.\n"
        "    * assumption.\n"
        "    * assumption.",
    )
    f.lemma(
        "Forall_selN",
        "forall (A : Type) (P : A -> Prop) (l : list A) (i : nat) "
        "(def : A), "
        "Forall P l -> i < length l -> P (selN l i def)",
        "induction l; destruct i; simpl; intros.\n"
        "- exfalso. lia.\n"
        "- exfalso. lia.\n"
        "- inversion H. assumption.\n"
        "- inversion H. apply IHl.\n"
        "  + assumption.\n"
        "  + lia.",
    )
    f.lemma(
        "NoDup_app_not_in_l",
        "forall (A : Type) (l1 l2 : list A) (x : A), "
        "NoDup (l1 ++ l2) -> In x l2 -> ~ In x l1",
        "induction l1; simpl; intros.\n"
        "- intro Hf. assumption.\n"
        "- inversion H. intro Hin. destruct Hin.\n"
        "  + apply H1. apply in_or_app. right. rewrite Hin. assumption.\n"
        "  + assert (~ In x l) as Hnotin.\n"
        "    { eapply IHl1.\n"
        "      - apply H2.\n"
        "      - assumption. }\n"
        "    apply Hnotin. assumption.",
    )
    f.lemma(
        "incl_app_split",
        "forall (A : Type) (l1 l2 l3 : list A), "
        "incl (l1 ++ l2) l3 -> incl l1 l3 /\\ incl l2 l3",
        "intros. split.\n"
        "- unfold incl in *. intros. apply H. apply in_or_app. "
        "left. assumption.\n"
        "- unfold incl in *. intros. apply H. apply in_or_app. "
        "right. assumption.",
    )
    f.lemma(
        "incl_map",
        "forall (A B : Type) (g : A -> B) (l1 l2 : list A), "
        "incl l1 l2 -> incl (map g l1) (map g l2)",
        "induction l1; simpl; intros.\n"
        "- apply incl_nil.\n"
        "- unfold incl in *. intros. simpl in H0. destruct H0.\n"
        "  + rewrite <- H0. apply in_map. apply H. simpl. "
        "left. reflexivity.\n"
        "  + eapply IHl1.\n"
        "    * intros. apply H. simpl. right. assumption.\n"
        "    * assumption.",
    )
    f.lemma(
        "firstn_firstn_min",
        "forall (A : Type) (l : list A) (n m : nat), "
        "firstn n (firstn m l) = firstn (min n m) l",
        "induction l; intros.\n"
        "- rewrite firstn_nil.\n"
        "  + rewrite firstn_nil.\n"
        "    * reflexivity.\n"
        "    * reflexivity.\n"
        "  + destruct m; reflexivity.\n"
        "- destruct n; destruct m; simpl.\n"
        "  + reflexivity.\n"
        "  + reflexivity.\n"
        "  + reflexivity.\n"
        "  + f_equal. apply IHl.",
    )
    f.lemma(
        "updN_app1",
        "forall (A : Type) (l1 l2 : list A) (i : nat) (v : A), "
        "i < length l1 -> "
        "updN (l1 ++ l2) i v = updN l1 i v ++ l2",
        "induction l1; destruct i; simpl; intros.\n"
        "- exfalso. lia.\n"
        "- exfalso. lia.\n"
        "- reflexivity.\n"
        "- f_equal. apply IHl1. lia.",
    )
    f.lemma(
        "updN_firstn_skipn",
        "forall (A : Type) (l : list A) (i : nat) (v : A), "
        "i < length l -> "
        "updN l i v = firstn i l ++ (v :: skipn (S i) l)",
        "induction l; destruct i; simpl; intros.\n"
        "- exfalso. lia.\n"
        "- exfalso. lia.\n"
        "- reflexivity.\n"
        "- f_equal. apply IHl. lia.",
    )
    f.lemma(
        "NoDup_updN_in",
        "forall (A : Type) (l : list A) (i : nat) (v : A), "
        "NoDup l -> ~ In v l -> i < length l -> "
        "~ In v (updN l i v) -> False",
        "intros. intro H2. apply H2. clear H2. "
        "assert (length (updN l i v) = length l) as Hlen.\n"
        "{ apply length_updN. }\n"
        "assert (selN (updN l i v) i v = v) as Hsel.\n"
        "{ apply selN_updN_eq. assumption. }\n"
        "clear H H0. "
        "assert (forall (l2 : list A) (j : nat), j < length l2 -> "
        "In (selN l2 j v) l2) as Hin.\n"
        "{ induction l2; destruct j; simpl; intros.\n"
        "  - intro Hj. lia.\n"
        "  - intro Hj. lia.\n"
        "  - left. reflexivity.\n"
        "  - right. apply IHl2. lia. }\n"
        "assert (In (selN (updN l i v) i v) (updN l i v)) as Hgoal.\n"
        "{ apply Hin. rewrite Hlen. assumption. }\n"
        "rewrite Hsel in Hgoal. assumption.",
    )

    return f.build()
