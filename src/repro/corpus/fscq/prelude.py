"""Prelude.v — core datatypes and functions every other file imports.

Mirrors the slice of Coq's standard library FSCQ leans on: Peano
naturals, booleans, polymorphic lists/options/pairs, the ``le``/``lt``
order, and the basic structurally recursive functions (``app``,
``length``, ``map``, ``filter``, ``firstn``, ``skipn``, ``repeat``,
``selN``...).
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("Prelude", "Utilities", imports=())

    # ------------------------------------------------------------------
    # Datatypes
    # ------------------------------------------------------------------
    f.inductive(
        "nat",
        [("O", [], []), ("S", ["nat"], ["n"])],
    )
    f.inductive(
        "bool",
        [("true", [], []), ("false", [], [])],
    )
    f.inductive(
        "list",
        [("nil", [], []), ("cons", ["A", "list A"], ["a", "l"])],
        tvars=("A",),
    )
    f.inductive(
        "option",
        [("Some", ["A"], ["a"]), ("None", [], [])],
        tvars=("A",),
    )
    f.inductive(
        "prod",
        [("pair", ["A", "B"], ["a", "b"])],
        tvars=("A", "B"),
    )

    # ------------------------------------------------------------------
    # The order on nat
    # ------------------------------------------------------------------
    f.pred(
        "le",
        "nat -> nat -> Prop",
        [
            ("le_n", "forall (n : nat), le n n"),
            ("le_S", "forall (n m : nat), le n m -> le n (S m)"),
        ],
    )
    f.definition("lt", "(n m : nat)", "Prop", "S n <= m")
    f.hint_constructors("le")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    f.fixpoint(
        "add",
        "nat -> nat -> nat",
        ["add 0 m = m", "add (S n) m = S (add n m)"],
    )
    f.fixpoint(
        "sub",
        "nat -> nat -> nat",
        [
            "sub 0 m = 0",
            "sub (S n) 0 = S n",
            "sub (S n) (S m) = sub n m",
        ],
    )
    f.fixpoint(
        "mult",
        "nat -> nat -> nat",
        ["mult 0 m = 0", "mult (S n) m = m + mult n m"],
    )
    f.fixpoint(
        "beq_nat",
        "nat -> nat -> bool",
        [
            "beq_nat 0 0 = true",
            "beq_nat 0 (S m) = false",
            "beq_nat (S n) 0 = false",
            "beq_nat (S n) (S m) = beq_nat n m",
        ],
    )
    f.fixpoint(
        "min",
        "nat -> nat -> nat",
        [
            "min 0 m = 0",
            "min (S n) 0 = 0",
            "min (S n) (S m) = S (min n m)",
        ],
    )
    f.fixpoint(
        "max",
        "nat -> nat -> nat",
        [
            "max 0 m = m",
            "max (S n) 0 = S n",
            "max (S n) (S m) = S (max n m)",
        ],
    )

    # ------------------------------------------------------------------
    # Booleans
    # ------------------------------------------------------------------
    f.fixpoint(
        "negb",
        "bool -> bool",
        ["negb true = false", "negb false = true"],
    )
    f.fixpoint(
        "andb",
        "bool -> bool -> bool",
        ["andb true b = b", "andb false b = false"],
    )
    f.fixpoint(
        "orb",
        "bool -> bool -> bool",
        ["orb true b = true", "orb false b = b"],
    )

    # ------------------------------------------------------------------
    # Pairs
    # ------------------------------------------------------------------
    f.fixpoint("fst", "prod A B -> A", ["fst (pair a b) = a"], tvars=("A", "B"))
    f.fixpoint("snd", "prod A B -> B", ["snd (pair a b) = b"], tvars=("A", "B"))

    # ------------------------------------------------------------------
    # Lists
    # ------------------------------------------------------------------
    f.fixpoint(
        "app",
        "list A -> list A -> list A",
        ["app nil l = l", "app (x :: xs) l = x :: app xs l"],
        tvars=("A",),
    )
    f.fixpoint(
        "length",
        "list A -> nat",
        ["length nil = 0", "length (x :: xs) = S (length xs)"],
        tvars=("A",),
    )
    f.fixpoint(
        "rev",
        "list A -> list A",
        ["rev nil = nil", "rev (x :: xs) = rev xs ++ (x :: nil)"],
        tvars=("A",),
    )
    f.fixpoint(
        "map",
        "(A -> B) -> list A -> list B",
        ["map g nil = nil", "map g (x :: xs) = g x :: map g xs"],
        tvars=("A", "B"),
    )
    f.fixpoint(
        "In",
        "A -> list A -> Prop",
        ["In x nil = False", "In x (a :: l) = (a = x \\/ In x l)"],
        tvars=("A",),
    )
    f.fixpoint(
        "firstn",
        "nat -> list A -> list A",
        [
            "firstn 0 l = nil",
            "firstn (S n) nil = nil",
            "firstn (S n) (x :: xs) = x :: firstn n xs",
        ],
        tvars=("A",),
    )
    f.fixpoint(
        "skipn",
        "nat -> list A -> list A",
        [
            "skipn 0 l = l",
            "skipn (S n) nil = nil",
            "skipn (S n) (x :: xs) = skipn n xs",
        ],
        tvars=("A",),
    )
    f.fixpoint(
        "repeat",
        "A -> nat -> list A",
        ["repeat x 0 = nil", "repeat x (S n) = x :: repeat x n"],
        tvars=("A",),
    )
    f.fixpoint(
        "selN",
        "list A -> nat -> A -> A",
        [
            "selN nil n def = def",
            "selN (x :: xs) 0 def = x",
            "selN (x :: xs) (S n) def = selN xs n def",
        ],
        tvars=("A",),
    )
    f.definition(
        "incl",
        "(A : Type) (l1 l2 : list A)",
        "Prop",
        "forall a, In a l1 -> In a l2",
    )

    # ------------------------------------------------------------------
    # Inductive list predicates
    # ------------------------------------------------------------------
    f.pred(
        "Forall",
        "(A -> Prop) -> list A -> Prop",
        [
            ("Forall_nil", "forall (A : Type) (P : A -> Prop), Forall P nil"),
            (
                "Forall_cons",
                "forall (A : Type) (P : A -> Prop) (x : A) (l : list A), "
                "P x -> Forall P l -> Forall P (x :: l)",
            ),
        ],
        tvars=("A",),
    )
    f.pred(
        "NoDup",
        "list A -> Prop",
        [
            ("NoDup_nil", "forall (A : Type), NoDup nil"),
            (
                "NoDup_cons",
                "forall (A : Type) (x : A) (l : list A), "
                "~ In x l -> NoDup l -> NoDup (x :: l)",
            ),
        ],
        tvars=("A",),
    )
    f.hint_constructors("Forall", "NoDup")

    return f.build()
