"""WordUtils.v — boolean, pair, and option helpers (Utilities).

FSCQ's ``Word.v`` supplies machine-word facts; the reproduction's
object language carries the same proof shapes through booleans,
pairs, and options (case analysis + constructor reasoning).
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("WordUtils", "Utilities", imports=("Prelude", "ListUtils"))

    # Booleans -----------------------------------------------------------
    f.lemma(
        "negb_involutive",
        "forall b, negb (negb b) = b",
        "destruct b; reflexivity.",
    )
    f.lemma(
        "negb_true_iff_false",
        "forall b, negb b = true -> b = false",
        "destruct b; simpl; intros.\n"
        "- discriminate H.\n"
        "- reflexivity.",
    )
    f.lemma(
        "andb_comm",
        "forall a b, andb a b = andb b a",
        "destruct a; destruct b; reflexivity.",
    )
    f.lemma(
        "andb_assoc",
        "forall a b c, andb a (andb b c) = andb (andb a b) c",
        "destruct a; destruct b; destruct c; reflexivity.",
    )
    f.lemma(
        "andb_true_l",
        "forall b, andb true b = b",
        "intros. reflexivity.",
    )
    f.lemma(
        "andb_true_r",
        "forall b, andb b true = b",
        "destruct b; reflexivity.",
    )
    f.lemma(
        "andb_false_r",
        "forall b, andb b false = false",
        "destruct b; reflexivity.",
    )
    f.lemma(
        "andb_true_elim_l",
        "forall a b, andb a b = true -> a = true",
        "destruct a; simpl; intros.\n"
        "- reflexivity.\n"
        "- discriminate H.",
    )
    f.lemma(
        "andb_true_elim_r",
        "forall a b, andb a b = true -> b = true",
        "destruct a; simpl; intros.\n"
        "- assumption.\n"
        "- discriminate H.",
    )
    f.lemma(
        "orb_comm",
        "forall a b, orb a b = orb b a",
        "destruct a; destruct b; reflexivity.",
    )
    f.lemma(
        "orb_false_r",
        "forall b, orb b false = b",
        "destruct b; reflexivity.",
    )
    f.lemma(
        "orb_true_l",
        "forall b, orb true b = true",
        "intros. reflexivity.",
    )
    f.lemma(
        "bool_dec",
        "forall (a b : bool), a = b \\/ a <> b",
        "destruct a; destruct b.\n"
        "- left. reflexivity.\n"
        "- right. discriminate.\n"
        "- right. discriminate.\n"
        "- left. reflexivity.",
    )

    # Pairs --------------------------------------------------------------
    f.lemma(
        "surjective_pairing",
        "forall (A B : Type) (p : prod A B), p = pair (fst p) (snd p)",
        "destruct p. simpl. reflexivity.",
    )
    f.lemma(
        "fst_pair",
        "forall (A B : Type) (a : A) (b : B), fst (pair a b) = a",
        "intros. reflexivity.",
    )
    f.lemma(
        "snd_pair",
        "forall (A B : Type) (a : A) (b : B), snd (pair a b) = b",
        "intros. reflexivity.",
    )
    f.lemma(
        "pair_eq_fst",
        "forall (A B : Type) (a a' : A) (b b' : B), "
        "pair a b = pair a' b' -> a = a'",
        "intros. injection H as H1 H2. assumption.",
    )
    f.lemma(
        "pair_eq_snd",
        "forall (A B : Type) (a a' : A) (b b' : B), "
        "pair a b = pair a' b' -> b = b'",
        "intros. injection H as H1 H2. assumption.",
    )
    f.lemma(
        "map_fst_pair_repeat",
        "forall (A B : Type) (a : A) (b : B) (n : nat), "
        "map fst (repeat (pair a b) n) = repeat a n",
        "intros. rewrite repeat_map. simpl. reflexivity.",
    )

    # Options --------------------------------------------------------------
    f.lemma(
        "some_injective",
        "forall (A : Type) (a b : A), Some a = Some b -> a = b",
        "intros. injection H as H1. assumption.",
    )
    f.lemma(
        "some_not_none",
        "forall (A : Type) (a : A), Some a <> None",
        "intros. discriminate.",
    )
    f.lemma(
        "none_or_some",
        "forall (A : Type) (o : option A), o = None \\/ exists a, o = Some a",
        "destruct o.\n"
        "- right. exists a. reflexivity.\n"
        "- left. reflexivity.",
    )

    return f.build()
