"""The FSCQ-like corpus: one module per "Coq file".

Category map (paper §4.1, Table 1):

* **Utilities** — ``prelude``, ``arith_utils``, ``list_utils``,
  ``word_utils``, ``rounding``.
* **CHL** — ``chl.pred``, ``chl.sep_star``, ``chl.hoare``,
  ``chl.crash``, ``chl.idempotence``.
* **FileSystem** — ``fs.addr_log``, ``fs.padded_log``, ``fs.balloc``,
  ``fs.inode``, ``fs.bfile``, ``fs.dir_tree``, ``fs.dirname``,
  ``fs.super``.
"""
