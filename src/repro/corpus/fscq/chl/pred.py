"""Pred.v — separation-logic predicates over disk states (CHL).

FSCQ defines ``pred := mem -> Prop`` and *proves* the separation
algebra from the memory model.  Our kernel's logic is first-order, so
the algebra's basis is axiomatized (``sep_star_comm`` & co.) and the
rest of FSCQ's Pred.v derives from it — the derived lemmas are the
benchmark theorems.  (DESIGN.md §2 records this substitution.)
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("Pred", "CHL", imports=("Prelude", "ArithUtils"))

    # Types and constants -------------------------------------------------
    f.opaque_type("valu")
    f.opaque_type("pred")
    f.opaque("v0", "valu")
    f.opaque("emp", "pred")
    f.opaque("pfalse", "pred")
    f.opaque("ptsto", "nat -> valu -> pred")
    f.opaque("sep_star", "pred -> pred -> pred")
    f.opaque("por", "pred -> pred -> pred")
    f.opaque("pimpl", "pred -> pred -> Prop")

    # The separation-algebra basis (proved from the mem model in FSCQ).
    f.axiom("pimpl_refl", "forall (p : pred), p =p=> p")
    f.axiom(
        "pimpl_trans",
        "forall (p q r : pred), (p =p=> q) -> (q =p=> r) -> (p =p=> r)",
    )
    f.axiom(
        "sep_star_comm",
        "forall (p q : pred), p * q =p=> q * p",
    )
    f.axiom(
        "sep_star_assoc_1",
        "forall (p q r : pred), (p * q) * r =p=> p * (q * r)",
    )
    f.axiom(
        "sep_star_assoc_2",
        "forall (p q r : pred), p * (q * r) =p=> (p * q) * r",
    )
    f.axiom(
        "pimpl_sep_star",
        "forall (p p' q q' : pred), (p =p=> p') -> (q =p=> q') -> "
        "(p * q =p=> p' * q')",
    )
    f.axiom("emp_star_1", "forall (p : pred), p =p=> emp * p")
    f.axiom("emp_star_2", "forall (p : pred), emp * p =p=> p")
    f.axiom("pimpl_or_intro_l", "forall (p q : pred), p =p=> por p q")
    f.axiom("pimpl_or_intro_r", "forall (p q : pred), q =p=> por p q")
    f.axiom(
        "pimpl_or_elim",
        "forall (p q r : pred), (p =p=> r) -> (q =p=> r) -> "
        "(por p q =p=> r)",
    )
    f.axiom(
        "pimpl_or_mono",
        "forall (p p' q q' : pred), (p =p=> p') -> (q =p=> q') -> "
        "(por p q =p=> por p' q')",
    )
    f.axiom("pfalse_pimpl", "forall (p : pred), pfalse =p=> p")
    f.axiom("pfalse_star", "forall (p : pred), pfalse * p =p=> pfalse")
    f.axiom(
        "ptsto_conflict",
        "forall (a : nat) (v1 v2 : valu), "
        "(a |-> v1) * (a |-> v2) =p=> pfalse",
    )
    f.hint_resolve("pimpl_refl")

    # Derived algebra (FSCQ Pred.v's lemma inventory) ----------------------
    f.lemma(
        "pimpl_sep_star_l",
        "forall (p p' q : pred), (p =p=> p') -> (p * q =p=> p' * q)",
        "intros. apply pimpl_sep_star.\n"
        "- assumption.\n"
        "- apply pimpl_refl.",
    )
    f.lemma(
        "pimpl_sep_star_r",
        "forall (p q q' : pred), (q =p=> q') -> (p * q =p=> p * q')",
        "intros. apply pimpl_sep_star.\n"
        "- apply pimpl_refl.\n"
        "- assumption.",
    )
    f.lemma(
        "star_emp_pimpl",
        "forall (p : pred), p * emp =p=> p",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_comm.\n"
        "- apply emp_star_2.",
    )
    f.lemma(
        "pimpl_star_emp",
        "forall (p : pred), p =p=> p * emp",
        "intros. eapply pimpl_trans.\n"
        "- apply emp_star_1.\n"
        "- apply sep_star_comm.",
    )
    f.lemma(
        "sep_star_comm_trans",
        "forall (p q r : pred), (q * p =p=> r) -> (p * q =p=> r)",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_comm.\n"
        "- assumption.",
    )
    f.lemma(
        "sep_star_assoc_swap",
        "forall (p q r : pred), (p * q) * r =p=> (p * r) * q",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_assoc_1.\n"
        "- eapply pimpl_trans.\n"
        "  + eapply pimpl_sep_star_r. apply sep_star_comm.\n"
        "  + apply sep_star_assoc_2.",
    )
    f.lemma(
        "sep_star_swap_middle",
        "forall (p q r : pred), p * (q * r) =p=> q * (p * r)",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_assoc_2.\n"
        "- eapply pimpl_trans.\n"
        "  + eapply pimpl_sep_star_l. apply sep_star_comm.\n"
        "  + apply sep_star_assoc_1.",
    )
    f.lemma(
        "pimpl_trans_star_l",
        "forall (p q r s : pred), (p =p=> q * r) -> (q =p=> s) -> "
        "(p =p=> s * r)",
        "intros. eapply pimpl_trans.\n"
        "- apply H.\n"
        "- apply pimpl_sep_star_l. assumption.",
    )
    f.lemma(
        "emp_star_emp",
        "emp * emp =p=> emp",
        "apply emp_star_2.",
    )
    f.lemma(
        "pimpl_or_idem",
        "forall (p : pred), por p p =p=> p",
        "intros. apply pimpl_or_elim.\n"
        "- apply pimpl_refl.\n"
        "- apply pimpl_refl.",
    )
    f.lemma(
        "pimpl_or_comm",
        "forall (p q : pred), por p q =p=> por q p",
        "intros. apply pimpl_or_elim.\n"
        "- apply pimpl_or_intro_r.\n"
        "- apply pimpl_or_intro_l.",
    )
    f.lemma(
        "pimpl_or_l_trans",
        "forall (p q r : pred), (p =p=> q) -> (p =p=> por q r)",
        "intros. eapply pimpl_trans.\n"
        "- apply H.\n"
        "- apply pimpl_or_intro_l.",
    )
    f.lemma(
        "pimpl_or_r_trans",
        "forall (p q r : pred), (p =p=> r) -> (p =p=> por q r)",
        "intros. eapply pimpl_trans.\n"
        "- apply H.\n"
        "- apply pimpl_or_intro_r.",
    )
    f.lemma(
        "pimpl_or_star_distr",
        "forall (p q r : pred), por (p * r) (q * r) =p=> por p q * r",
        "intros. apply pimpl_or_elim.\n"
        "- apply pimpl_sep_star_l. apply pimpl_or_intro_l.\n"
        "- apply pimpl_sep_star_l. apply pimpl_or_intro_r.",
    )
    f.lemma(
        "ptsto_conflict_frame",
        "forall (F : pred) (a : nat) (v1 v2 : valu), "
        "((a |-> v1) * (a |-> v2)) * F =p=> pfalse * F",
        "intros. apply pimpl_sep_star_l. apply ptsto_conflict.",
    )
    f.lemma(
        "pfalse_star_pimpl",
        "forall (p q : pred), pfalse * p =p=> q",
        "intros. eapply pimpl_trans.\n"
        "- apply pfalse_star.\n"
        "- apply pfalse_pimpl.",
    )
    f.hint_resolve("pimpl_sep_star_l", "pimpl_sep_star_r", "star_emp_pimpl")

    return f.build()
