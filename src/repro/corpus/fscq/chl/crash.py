"""Crash.v — crash transformation of predicates (CHL).

FSCQ's ``crash_xform`` maps a predicate over pre-crash states to the
predicate over possible post-crash states; its interaction with the
separation algebra (proved from the disk model there, axiomatized
here) drives every crash-safety proof.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("Crash", "CHL", imports=("Pred", "SepStar", "Hoare"))

    f.opaque("crash_xform", "pred -> pred")
    f.opaque("ptsto_any", "nat -> pred")

    # Disk-model facts (FSCQ proves these over mem; axioms here).
    f.axiom(
        "crash_xform_pimpl",
        "forall (p q : pred), (p =p=> q) -> "
        "(crash_xform p =p=> crash_xform q)",
    )
    f.axiom(
        "crash_xform_sep_star",
        "forall (p q : pred), crash_xform (p * q) =p=> "
        "crash_xform p * crash_xform q",
    )
    f.axiom(
        "crash_xform_sep_star_r",
        "forall (p q : pred), crash_xform p * crash_xform q =p=> "
        "crash_xform (p * q)",
    )
    f.axiom(
        "crash_xform_emp",
        "crash_xform emp =p=> emp",
    )
    f.axiom(
        "crash_xform_emp_r",
        "emp =p=> crash_xform emp",
    )
    f.axiom(
        "crash_xform_or",
        "forall (p q : pred), crash_xform (por p q) =p=> "
        "por (crash_xform p) (crash_xform q)",
    )
    f.axiom(
        "crash_xform_ptsto",
        "forall (a : nat) (v : valu), "
        "crash_xform (a |-> v) =p=> por (a |-> v) (ptsto_any a)",
    )
    f.axiom(
        "crash_xform_idem",
        "forall (p : pred), crash_xform (crash_xform p) =p=> "
        "crash_xform p",
    )

    # Derived crash lemmas -------------------------------------------------
    f.lemma(
        "crash_xform_sep_star_dist",
        "forall (p q r : pred), crash_xform ((p * q) * r) =p=> "
        "crash_xform p * crash_xform q * crash_xform r",
        "intros. eapply pimpl_trans.\n"
        "- apply crash_xform_sep_star.\n"
        "- eapply pimpl_trans.\n"
        "  + eapply pimpl_sep_star_l. apply crash_xform_sep_star.\n"
        "  + apply sep_star_assoc_1.",
    )
    f.lemma(
        "crash_xform_pimpl_star",
        "forall (p q F : pred), (p =p=> q) -> "
        "(crash_xform p * F =p=> crash_xform q * F)",
        "intros. apply pimpl_sep_star_l. "
        "apply crash_xform_pimpl. assumption.",
    )
    f.lemma(
        "crash_xform_emp_star",
        "forall (p : pred), crash_xform (emp * p) =p=> crash_xform p",
        "intros. apply crash_xform_pimpl. apply emp_star_2.",
    )
    f.lemma(
        "crash_xform_trans",
        "forall (p q r : pred), (p =p=> q) -> (q =p=> r) -> "
        "(crash_xform p =p=> crash_xform r)",
        "intros. apply crash_xform_pimpl. eapply pimpl_trans.\n"
        "- apply H.\n"
        "- assumption.",
    )
    f.lemma(
        "crash_xform_or_ptsto",
        "forall (a : nat) (v1 v2 : valu), "
        "crash_xform (por (a |-> v1) (a |-> v2)) =p=> "
        "por (por (a |-> v1) (ptsto_any a)) "
        "(por (a |-> v2) (ptsto_any a))",
        "intros. eapply pimpl_trans.\n"
        "- apply crash_xform_or.\n"
        "- apply pimpl_or_mono.\n"
        "  + apply crash_xform_ptsto.\n"
        "  + apply crash_xform_ptsto.",
    )
    f.lemma(
        "crash_xform_idem_star",
        "forall (p q : pred), "
        "crash_xform (crash_xform p) * crash_xform (crash_xform q) "
        "=p=> crash_xform p * crash_xform q",
        "intros. apply pimpl_sep_star.\n"
        "- apply crash_xform_idem.\n"
        "- apply crash_xform_idem.",
    )
    f.lemma(
        "crash_xform_double_star",
        "forall (p q : pred), crash_xform (crash_xform (p * q)) =p=> "
        "crash_xform p * crash_xform q",
        "intros. eapply pimpl_trans.\n"
        "- apply crash_xform_idem.\n"
        "- apply crash_xform_sep_star.",
    )

    return f.build()
