"""Hoare.v — Crash Hoare Logic triples over a first-order prog (CHL).

FSCQ's ``corr2`` judgments carry pre-, post-, and crash conditions.
Our ``hoare pre p post crash`` is an inductive predicate with the
primitive rules as constructors (so ``constructor``/``inversion``
work on derivations); the consequence and frame rules — proved from
the execution semantics in FSCQ — enter as axioms, and the rest of the
rule inventory is derived.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("Hoare", "CHL", imports=("Pred", "SepStar"))

    f.inductive(
        "prog",
        [
            ("PRet", [], []),
            ("PRead", ["nat"], ["a"]),
            ("PWrite", ["nat", "valu"], ["a", "v"]),
            ("PSeq", ["prog", "prog"], ["p1", "p2"]),
        ],
    )

    f.pred(
        "hoare",
        "pred -> prog -> pred -> pred -> Prop",
        [
            (
                "hoare_ret",
                "forall (p c : pred), (p =p=> c) -> hoare p PRet p c",
            ),
            (
                "hoare_read",
                "forall (F : pred) (a : nat) (v : valu) (c : pred), "
                "(F * a |-> v =p=> c) -> "
                "hoare (F * a |-> v) (PRead a) (F * a |-> v) c",
            ),
            (
                "hoare_write",
                "forall (F : pred) (a : nat) (v0 v : valu) (c : pred), "
                "(F * a |-> v0 =p=> c) -> (F * a |-> v =p=> c) -> "
                "hoare (F * a |-> v0) (PWrite a v) (F * a |-> v) c",
            ),
            (
                "hoare_seq",
                "forall (p1 p2 : prog) (pre mid post c : pred), "
                "hoare pre p1 mid c -> hoare mid p2 post c -> "
                "hoare pre (PSeq p1 p2) post c",
            ),
        ],
    )
    f.hint_constructors("hoare")

    # Proved from the execution semantics in FSCQ; axioms here.
    f.axiom(
        "hoare_conseq",
        "forall (p : prog) (pre pre' post post' c c' : pred), "
        "hoare pre p post c -> (pre' =p=> pre) -> (post =p=> post') -> "
        "(c =p=> c') -> hoare pre' p post' c'",
    )
    f.axiom(
        "hoare_frame",
        "forall (p : prog) (pre post c F : pred), "
        "hoare pre p post c -> hoare (pre * F) p (post * F) (c * F)",
    )

    # Derived rule inventory ------------------------------------------------
    f.lemma(
        "hoare_weaken_pre",
        "forall (p : prog) (pre pre' post c : pred), "
        "hoare pre p post c -> (pre' =p=> pre) -> hoare pre' p post c",
        "intros. eapply hoare_conseq.\n"
        "- apply H.\n"
        "- assumption.\n"
        "- apply pimpl_refl.\n"
        "- apply pimpl_refl.",
    )
    f.lemma(
        "hoare_strengthen_post",
        "forall (p : prog) (pre post post' c : pred), "
        "hoare pre p post c -> (post =p=> post') -> hoare pre p post' c",
        "intros. eapply hoare_conseq.\n"
        "- apply H.\n"
        "- apply pimpl_refl.\n"
        "- assumption.\n"
        "- apply pimpl_refl.",
    )
    f.lemma(
        "hoare_weaken_crash",
        "forall (p : prog) (pre post c c' : pred), "
        "hoare pre p post c -> (c =p=> c') -> hoare pre p post c'",
        "intros. eapply hoare_conseq.\n"
        "- apply H.\n"
        "- apply pimpl_refl.\n"
        "- apply pimpl_refl.\n"
        "- assumption.",
    )
    f.lemma(
        "hoare_ret_weak",
        "forall (p q c : pred), (p =p=> q) -> (q =p=> c) -> "
        "hoare p PRet q c",
        "intros. eapply hoare_conseq.\n"
        "- eapply hoare_ret. apply H0.\n"
        "- assumption.\n"
        "- apply pimpl_refl.\n"
        "- apply pimpl_refl.",
    )
    f.lemma(
        "hoare_seq_ret_l",
        "forall (p : prog) (pre post c : pred), "
        "hoare pre p post c -> (pre =p=> c) -> "
        "hoare pre (PSeq PRet p) post c",
        "intros. eapply hoare_seq.\n"
        "- apply hoare_ret. assumption.\n"
        "- assumption.",
    )
    f.lemma(
        "hoare_seq_ret_r",
        "forall (p : prog) (pre post c : pred), "
        "hoare pre p post c -> (post =p=> c) -> "
        "hoare pre (PSeq p PRet) post c",
        "intros. eapply hoare_seq.\n"
        "- apply H.\n"
        "- apply hoare_ret. assumption.",
    )
    f.lemma(
        "hoare_seq_inv_l",
        "forall (p1 p2 : prog) (pre post c : pred), "
        "hoare pre (PSeq p1 p2) post c -> "
        "exists mid, hoare pre p1 mid c",
        "intros. inversion H. exists mid. assumption.",
    )
    f.lemma(
        "hoare_seq_inv_r",
        "forall (p1 p2 : prog) (pre post c : pred), "
        "hoare pre (PSeq p1 p2) post c -> "
        "exists mid, hoare mid p2 post c",
        "intros. inversion H. exists mid. assumption.",
    )
    f.lemma(
        "hoare_ret_frame",
        "forall (F p c : pred), (p * F =p=> c) -> "
        "hoare (p * F) PRet (p * F) c",
        "intros. apply hoare_ret. assumption.",
    )
    f.lemma(
        "hoare_read_commuted",
        "forall (F : pred) (a : nat) (v : valu) (c : pred), "
        "((a |-> v) * F =p=> c) -> "
        "hoare ((a |-> v) * F) (PRead a) ((a |-> v) * F) c",
        "intros. eapply hoare_conseq.\n"
        "- eapply hoare_read. eapply pimpl_trans.\n"
        "  + apply sep_star_comm.\n"
        "  + apply H.\n"
        "- apply sep_star_comm.\n"
        "- apply sep_star_comm.\n"
        "- apply pimpl_refl.",
    )
    f.lemma(
        "hoare_write_read",
        "forall (F : pred) (a : nat) (v0 v : valu), "
        "hoare (F * a |-> v0) (PSeq (PWrite a v) (PRead a)) "
        "(F * a |-> v) (por (F * a |-> v0) (F * a |-> v))",
        "intros. eapply hoare_seq.\n"
        "- apply hoare_write.\n"
        "  + apply pimpl_or_intro_l.\n"
        "  + apply pimpl_or_intro_r.\n"
        "- apply hoare_read. apply pimpl_or_intro_r.",
    )
    f.lemma(
        "hoare_read_twice",
        "forall (F : pred) (a : nat) (v : valu), "
        "hoare (F * a |-> v) (PSeq (PRead a) (PRead a)) "
        "(F * a |-> v) (F * a |-> v)",
        "intros. eapply hoare_seq.\n"
        "- apply hoare_read. apply pimpl_refl.\n"
        "- apply hoare_read. apply pimpl_refl.",
    )
    f.lemma(
        "hoare_write_emp_crash",
        "forall (F : pred) (a : nat) (v0 v : valu) (c : pred), "
        "(F * a |-> v0 =p=> c) -> (F * a |-> v =p=> c) -> "
        "hoare (F * a |-> v0) (PSeq (PWrite a v) PRet) (F * a |-> v) c",
        "intros. eapply hoare_seq.\n"
        "- apply hoare_write.\n"
        "  + assumption.\n"
        "  + assumption.\n"
        "- apply hoare_ret. assumption.",
    )

    return f.build()
