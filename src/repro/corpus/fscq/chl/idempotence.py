"""Idempotence.v — recovery idempotence (CHL).

DFSCQ's recovery argument requires crash conditions that are stable
under repeated crashes (``crash_xform c =p=> c``).  This file defines
that notion and proves its closure properties, plus the derived
recovery rule for hoare triples.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "Idempotence", "CHL", imports=("Pred", "SepStar", "Hoare", "Crash")
    )

    f.definition(
        "crash_idem",
        "(p : pred)",
        "Prop",
        "crash_xform p =p=> p",
    )

    f.lemma(
        "crash_idem_emp",
        "crash_idem emp",
        "unfold crash_idem. apply crash_xform_emp.",
    )
    f.lemma(
        "crash_idem_sep_star",
        "forall (p q : pred), crash_idem p -> crash_idem q -> "
        "crash_idem (p * q)",
        "unfold crash_idem. intros. eapply pimpl_trans.\n"
        "- apply crash_xform_sep_star.\n"
        "- apply pimpl_sep_star.\n"
        "  + assumption.\n"
        "  + assumption.",
    )
    f.lemma(
        "crash_idem_or",
        "forall (p q : pred), crash_idem p -> crash_idem q -> "
        "crash_idem (por p q)",
        "unfold crash_idem. intros. eapply pimpl_trans.\n"
        "- apply crash_xform_or.\n"
        "- apply pimpl_or_mono.\n"
        "  + assumption.\n"
        "  + assumption.",
    )
    f.lemma(
        "crash_idem_xform",
        "forall (p : pred), crash_idem (crash_xform p)",
        "intros. unfold crash_idem. apply crash_xform_idem.",
    )
    f.lemma(
        "crash_idem_pimpl_trans",
        "forall (p q : pred), crash_idem q -> (p =p=> q) -> "
        "(crash_xform p =p=> q)",
        "unfold crash_idem. intros. eapply pimpl_trans.\n"
        "- eapply crash_xform_pimpl. apply H0.\n"
        "- assumption.",
    )
    f.lemma(
        "hoare_recover_crash",
        "forall (p : prog) (pre post c : pred), "
        "hoare pre p post c -> crash_idem c -> "
        "hoare pre p post (por c (crash_xform c))",
        "intros. eapply hoare_weaken_crash.\n"
        "- apply H.\n"
        "- apply pimpl_or_intro_l.",
    )
    f.lemma(
        "hoare_crash_idem_collapse",
        "forall (p : prog) (pre post c : pred), "
        "hoare pre p post (crash_xform (crash_xform c)) -> "
        "hoare pre p post (crash_xform c)",
        "intros. eapply hoare_weaken_crash.\n"
        "- apply H.\n"
        "- apply crash_xform_idem.",
    )

    return f.build()
