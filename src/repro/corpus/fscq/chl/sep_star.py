"""SepStar.v — separating-conjunction rearrangement lemmas (CHL).

FSCQ's ``SepAuto``/``Pred`` provide a large inventory of star
reordering and cancellation lemmas used pervasively by the file-system
proofs; this file derives that inventory from the Pred.v basis.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("SepStar", "CHL", imports=("Pred",))

    # One additional model fact (proved from mem in FSCQ): star
    # distributes over disjunction from the left.
    f.axiom(
        "sep_star_or_distr_l",
        "forall (p q r : pred), por p q * r =p=> por (p * r) (q * r)",
    )

    f.lemma(
        "sep_star_cancel",
        "forall (p q F : pred), (p =p=> q) -> (p * F =p=> q * F)",
        "intros. apply pimpl_sep_star.\n"
        "- assumption.\n"
        "- apply pimpl_refl.",
    )
    f.lemma(
        "sep_star_cancel_r",
        "forall (p q F : pred), (p =p=> q) -> (F * p =p=> F * q)",
        "intros. apply pimpl_sep_star.\n"
        "- apply pimpl_refl.\n"
        "- assumption.",
    )
    f.lemma(
        "pimpl_trans_comm",
        "forall (p q r : pred), (p * q =p=> r) -> (q * p =p=> r)",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_comm.\n"
        "- assumption.",
    )
    f.lemma(
        "sep_star_left_rotate",
        "forall (p q r : pred), (p * q) * r =p=> q * (r * p)",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_assoc_1.\n"
        "- eapply pimpl_trans.\n"
        "  + apply sep_star_comm.\n"
        "  + apply sep_star_assoc_1.",
    )
    f.lemma(
        "sep_star_right_rotate",
        "forall (p q r : pred), p * (q * r) =p=> (r * p) * q",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_comm.\n"
        "- eapply pimpl_trans.\n"
        "  + apply sep_star_assoc_1.\n"
        "  + apply sep_star_comm.",
    )
    f.lemma(
        "sep_star_pair_swap",
        "forall (p q r s : pred), (p * q) * (r * s) =p=> (p * r) * (q * s)",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_assoc_1.\n"
        "- eapply pimpl_trans.\n"
        "  + eapply pimpl_sep_star_r. apply sep_star_swap_middle.\n"
        "  + apply sep_star_assoc_2.",
    )
    f.lemma(
        "emp_star_cancel",
        "forall (p q : pred), (p =p=> q) -> (emp * p =p=> q)",
        "intros. eapply pimpl_trans.\n"
        "- apply emp_star_2.\n"
        "- assumption.",
    )
    f.lemma(
        "star_emp_intro_r",
        "forall (p q : pred), (p =p=> q) -> (p =p=> q * emp)",
        "intros. eapply pimpl_trans.\n"
        "- apply H.\n"
        "- apply pimpl_star_emp.",
    )
    f.lemma(
        "sep_star_or_distr_r",
        "forall (p q r : pred), p * por q r =p=> por (p * q) (p * r)",
        "intros. eapply pimpl_trans.\n"
        "- apply sep_star_comm.\n"
        "- eapply pimpl_trans.\n"
        "  + apply sep_star_or_distr_l.\n"
        "  + apply pimpl_or_mono.\n"
        "    * apply sep_star_comm.\n"
        "    * apply sep_star_comm.",
    )
    f.lemma(
        "sep_star_or_merge",
        "forall (p q r : pred), por (p * r) (q * r) =p=> por p q * r",
        "intros. apply pimpl_or_elim.\n"
        "- eapply pimpl_sep_star_l. apply pimpl_or_intro_l.\n"
        "- eapply pimpl_sep_star_l. apply pimpl_or_intro_r.",
    )
    f.lemma(
        "ptsto_any_conflict",
        "forall (a : nat) (v1 v2 : valu) (F : pred), "
        "((a |-> v1) * (a |-> v2)) * F =p=> pfalse",
        "intros. eapply pimpl_trans.\n"
        "- eapply pimpl_sep_star_l. apply ptsto_conflict.\n"
        "- apply pfalse_star.",
    )

    return f.build()
