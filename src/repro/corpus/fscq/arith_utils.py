"""ArithUtils.v — arithmetic helper lemmas (Utilities category).

The FSCQ counterpart is the pervasive use of ``omega``-adjacent helper
lemmas; like FSCQ, order facts lean on the decision procedure
(``lia``/``omega``) while structural facts use induction.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("ArithUtils", "Utilities", imports=("Prelude",))

    f.lemma(
        "plus_0_l",
        "forall n, 0 + n = n",
        "intros. reflexivity.",
    )
    f.lemma(
        "plus_0_r",
        "forall n, n + 0 = n",
        "induction n; simpl.\n"
        "- reflexivity.\n"
        "- rewrite IHn. reflexivity.",
    )
    f.lemma(
        "plus_n_Sm",
        "forall n m, S (n + m) = n + S m",
        "induction n; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHn. reflexivity.",
    )
    f.lemma(
        "plus_comm",
        "forall n m, n + m = m + n",
        "induction n; simpl; intros.\n"
        "- rewrite plus_0_r. reflexivity.\n"
        "- rewrite IHn. rewrite plus_n_Sm. reflexivity.",
    )
    f.lemma(
        "plus_assoc",
        "forall n m p, n + (m + p) = (n + m) + p",
        "induction n; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHn. reflexivity.",
    )
    f.lemma(
        "plus_cancel_l",
        "forall n m p, n + m = n + p -> m = p",
        "induction n; simpl; intros.\n"
        "- assumption.\n"
        "- apply IHn. inversion H. assumption.",
    )
    f.hint_resolve("plus_0_r", "plus_n_Sm")

    f.lemma(
        "mult_0_l",
        "forall n, 0 * n = 0",
        "intros. reflexivity.",
    )
    f.lemma(
        "mult_0_r",
        "forall n, n * 0 = 0",
        "induction n; simpl.\n"
        "- reflexivity.\n"
        "- assumption.",
    )
    f.lemma(
        "mult_1_l",
        "forall n, 1 * n = n",
        "intros. simpl. apply plus_0_r.",
    )
    f.lemma(
        "mult_n_Sm",
        "forall n m, n * S m = n + n * m",
        "induction n; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHn. f_equal. rewrite plus_assoc. "
        "rewrite plus_assoc. f_equal. apply plus_comm.",
    )
    f.lemma(
        "mult_1_r",
        "forall n, n * 1 = n",
        "intros. rewrite mult_n_Sm. rewrite mult_0_r. apply plus_0_r.",
    )
    f.lemma(
        "mult_comm",
        "forall n m, n * m = m * n",
        "induction n; simpl; intros.\n"
        "- rewrite mult_0_r. reflexivity.\n"
        "- rewrite mult_n_Sm. rewrite IHn. reflexivity.",
    )
    f.lemma(
        "mult_plus_distr_r",
        "forall n m p, (n + m) * p = n * p + m * p",
        "induction n; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHn. apply plus_assoc.",
    )

    # Order lemmas: FSCQ discharges these with omega; we do the same.
    f.lemma("le_refl", "forall n, n <= n", "intros. apply le_n.")
    f.lemma("le_0_n", "forall n, 0 <= n", "induction n; auto.")
    f.lemma("le_trans", "forall n m p, n <= m -> m <= p -> n <= p", "intros. lia.")
    f.lemma("le_n_S", "forall n m, n <= m -> S n <= S m", "intros. lia.")
    f.lemma("le_S_n", "forall n m, S n <= S m -> n <= m", "intros. lia.")
    f.lemma("le_Sn_le", "forall n m, S n <= m -> n <= m", "intros. lia.")
    f.lemma("lt_le_incl", "forall n m, n < m -> n <= m", "intros. unfold lt in H. lia.")
    f.lemma("lt_irrefl", "forall n, ~ n < n", "intros. unfold lt. lia.")
    f.lemma("le_lt_trans", "forall n m p, n <= m -> m < p -> n < p", "intros. unfold lt in *. lia.")
    f.lemma("lt_le_trans", "forall n m p, n < m -> m <= p -> n < p", "intros. unfold lt in *. lia.")
    f.lemma("lt_n_S", "forall n m, n < m -> S n < S m", "intros. unfold lt in *. lia.")
    f.lemma("nlt_0_r", "forall n, ~ n < 0", "intros. unfold lt. lia.")
    f.lemma("le_Sn_0", "forall n, ~ S n <= 0", "intros. lia.")
    f.lemma(
        "le_antisym",
        "forall n m, n <= m -> m <= n -> n = m",
        "intros. lia.",
    )
    f.lemma(
        "le_plus_l",
        "forall n m, n <= n + m",
        "intros. lia.",
    )
    f.lemma(
        "le_plus_r",
        "forall n m, m <= n + m",
        "intros. lia.",
    )
    f.lemma(
        "plus_le_compat",
        "forall n m p q, n <= m -> p <= q -> n + p <= m + q",
        "intros. lia.",
    )
    f.hint_resolve("le_refl", "le_0_n", "le_n_S", "le_plus_l")

    # Truncated subtraction.
    f.lemma(
        "sub_0_r",
        "forall n, n - 0 = n",
        "destruct n; reflexivity.",
    )
    f.lemma(
        "sub_diag",
        "forall n, n - n = 0",
        "induction n; simpl; auto.",
    )
    f.lemma(
        "sub_0_le",
        "forall n m, n - m = 0 -> n <= m",
        "intros. lia.",
    )
    f.lemma(
        "plus_sub_cancel",
        "forall n m, n + m - m = n",
        "intros. lia.",
    )
    f.lemma(
        "sub_plus_le",
        "forall n m, n - m <= n",
        "intros. lia.",
    )
    f.lemma(
        "sub_succ_l",
        "forall n m, m <= n -> S n - m = S (n - m)",
        "intros. lia.",
    )

    # Boolean equality on nat.
    f.lemma(
        "beq_nat_refl",
        "forall n, beq_nat n n = true",
        "induction n; simpl; auto.",
    )
    f.lemma(
        "beq_nat_true",
        "forall n m, beq_nat n m = true -> n = m",
        "induction n; destruct m; simpl; intros; try discriminate.\n"
        "- reflexivity.\n"
        "- f_equal. apply IHn. assumption.",
    )
    f.lemma(
        "beq_nat_false",
        "forall n m, beq_nat n m = false -> n <> m",
        "induction n; destruct m; simpl; intros; try discriminate.\n"
        "- apply IHn in H. congruence.",
    )
    f.hint_resolve("beq_nat_refl")

    # min / max.
    f.lemma(
        "min_0_l",
        "forall n, min 0 n = 0",
        "intros. reflexivity.",
    )
    f.lemma(
        "min_comm",
        "forall n m, min n m = min m n",
        "induction n; destruct m; simpl; auto.\nf_equal. apply IHn.",
    )
    f.lemma(
        "max_0_r",
        "forall n, max n 0 = n",
        "destruct n; reflexivity.",
    )
    f.lemma(
        "max_comm",
        "forall n m, max n m = max m n",
        "induction n; destruct m; simpl; auto.\nf_equal. apply IHn.",
    )
    f.lemma(
        "min_le_l",
        "forall n m, min n m <= n",
        "induction n; destruct m; simpl; auto.",
    )
    f.lemma(
        "max_le_l",
        "forall n m, n <= max n m",
        "induction n; destruct m; simpl; auto.",
    )

    return f.build()
