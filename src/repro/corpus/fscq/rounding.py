"""Rounding.v — block-size padding arithmetic (Utilities).

FSCQ's ``Rounding.v`` proves ``divup``/``roundup`` facts used by the
log's padding.  Our log pads to an even length; ``pad2``/``even``
carry the same proof shapes (strengthened two-step inductions over a
parity function) without general division.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "Rounding", "Utilities", imports=("Prelude", "ArithUtils")
    )

    f.fixpoint(
        "even",
        "nat -> bool",
        [
            "even 0 = true",
            "even 1 = false",
            "even (S (S n)) = even n",
        ],
    )
    f.fixpoint(
        "pad2",
        "nat -> nat",
        [
            "pad2 0 = 0",
            "pad2 1 = 1",
            "pad2 (S (S n)) = pad2 n",
        ],
    )
    f.definition("roundup2", "(n : nat)", "nat", "n + pad2 n")

    f.lemma(
        "pad2_le_1",
        "forall n, pad2 n <= 1",
        "assert (forall n, pad2 n <= 1 /\\ pad2 (S n) <= 1) as Hstr.\n"
        "{ induction n; simpl.\n"
        "  - split.\n"
        "    + lia.\n"
        "    + lia.\n"
        "  - destruct IHn. split.\n"
        "    + assumption.\n"
        "    + assumption. }\n"
        "intros. specialize (Hstr n). destruct Hstr. assumption.",
    )
    f.lemma(
        "pad2_even",
        "forall n, even n = true -> pad2 n = 0",
        "assert (forall n, (even n = true -> pad2 n = 0) /\\ "
        "(even (S n) = true -> pad2 (S n) = 0)) as Hstr.\n"
        "{ induction n; simpl.\n"
        "  - split.\n"
        "    + intros. reflexivity.\n"
        "    + intros. discriminate H.\n"
        "  - destruct IHn. split.\n"
        "    + assumption.\n"
        "    + assumption. }\n"
        "intros. specialize (Hstr n). destruct Hstr. "
        "apply H0. assumption.",
    )
    f.lemma(
        "even_roundup2",
        "forall n, even (roundup2 n) = true",
        "assert (forall n, even (n + pad2 n) = true /\\ "
        "even (S n + pad2 (S n)) = true) as Hstr.\n"
        "{ induction n; simpl.\n"
        "  - split.\n"
        "    + reflexivity.\n"
        "    + reflexivity.\n"
        "  - destruct IHn. split.\n"
        "    + assumption.\n"
        "    + assumption. }\n"
        "intros. unfold roundup2. specialize (Hstr n). "
        "destruct Hstr. assumption.",
    )
    f.lemma(
        "roundup2_ge",
        "forall n, n <= roundup2 n",
        "intros. unfold roundup2. lia.",
    )
    f.lemma(
        "roundup2_le_S",
        "forall n, roundup2 n <= S n",
        "intros. unfold roundup2. pose proof (pad2_le_1 n). lia.",
    )
    f.lemma(
        "roundup2_0",
        "roundup2 0 = 0",
        "reflexivity.",
    )
    f.lemma(
        "pad2_roundup2",
        "forall n, pad2 (roundup2 n) = 0",
        "intros. apply pad2_even. apply even_roundup2.",
    )
    f.lemma(
        "roundup2_idempotent",
        "forall n, roundup2 (roundup2 n) = roundup2 n",
        "intros. pose proof (pad2_roundup2 n). "
        "unfold roundup2 in *. lia.",
    )
    f.lemma(
        "even_plus_even",
        "forall n m, even n = true -> even m = true -> "
        "even (n + m) = true",
        "assert (forall n m, even m = true -> (even n = true -> "
        "even (n + m) = true) /\\ (even (S n) = true -> "
        "even (S n + m) = true)) as Hstr.\n"
        "{ induction n; simpl; intros.\n"
        "  - split.\n"
        "    + intros. assumption.\n"
        "    + intros. discriminate H0.\n"
        "  - specialize (IHn m H). destruct IHn. split.\n"
        "    + assumption.\n"
        "    + simpl. assumption. }\n"
        "intros. specialize (Hstr n m H0). destruct Hstr. "
        "apply H1. assumption.",
    )

    return f.build()
