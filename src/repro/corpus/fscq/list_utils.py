"""ListUtils.v — list helper lemmas (Utilities category).

The FSCQ counterpart is ``ListUtils.v``, the grab-bag of list facts
the file-system proofs lean on.  Includes the paper's Figure 2 Case A
lemma ``incl_tl_inv`` with its deliberately induction-heavy human
proof.
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder("ListUtils", "Utilities", imports=("Prelude", "ArithUtils"))

    # ------------------------------------------------------------------
    # updN: the FSCQ list-update primitive.
    # ------------------------------------------------------------------
    f.fixpoint(
        "updN",
        "list A -> nat -> A -> list A",
        [
            "updN nil i v = nil",
            "updN (x :: xs) 0 v = v :: xs",
            "updN (x :: xs) (S i) v = x :: updN xs i v",
        ],
        tvars=("A",),
    )

    # ------------------------------------------------------------------
    # app
    # ------------------------------------------------------------------
    f.lemma(
        "app_nil_l",
        "forall (A : Type) (l : list A), nil ++ l = l",
        "intros. reflexivity.",
    )
    f.lemma(
        "app_nil_r",
        "forall (A : Type) (l : list A), l ++ nil = l",
        "induction l; simpl.\n"
        "- reflexivity.\n"
        "- rewrite IHl. reflexivity.",
    )
    f.lemma(
        "app_cons",
        "forall (A : Type) (x : A) (l1 l2 : list A), "
        "(x :: l1) ++ l2 = x :: (l1 ++ l2)",
        "intros. reflexivity.",
    )
    f.lemma(
        "app_assoc",
        "forall (A : Type) (l1 l2 l3 : list A), "
        "l1 ++ (l2 ++ l3) = (l1 ++ l2) ++ l3",
        "induction l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHl1. reflexivity.",
    )
    f.lemma(
        "app_length",
        "forall (A : Type) (l1 l2 : list A), "
        "length (l1 ++ l2) = length l1 + length l2",
        "induction l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHl1. reflexivity.",
    )
    f.lemma(
        "app_eq_nil_l",
        "forall (A : Type) (l1 l2 : list A), l1 ++ l2 = nil -> l1 = nil",
        "destruct l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- discriminate H.",
    )
    f.hint_resolve("app_nil_l", "app_nil_r")

    # ------------------------------------------------------------------
    # length
    # ------------------------------------------------------------------
    f.lemma(
        "length_nil",
        "forall (A : Type) (l : list A), length l = 0 -> l = nil",
        "destruct l; simpl; intros.\n"
        "- reflexivity.\n"
        "- discriminate H.",
    )
    f.lemma(
        "length_updN",
        "forall (A : Type) (l : list A) (i : nat) (v : A), "
        "length (updN l i v) = length l",
        "induction l; destruct i; simpl; intros; auto.\n"
        "f_equal. apply IHl.",
    )
    f.hint_resolve("length_updN")

    # ------------------------------------------------------------------
    # map
    # ------------------------------------------------------------------
    f.lemma(
        "map_cons",
        "forall (A B : Type) (g : A -> B) (x : A) (l : list A), "
        "map g (x :: l) = g x :: map g l",
        "intros. reflexivity.",
    )
    f.lemma(
        "map_length",
        "forall (A B : Type) (g : A -> B) (l : list A), "
        "length (map g l) = length l",
        "induction l; simpl.\n"
        "- reflexivity.\n"
        "- rewrite IHl. reflexivity.",
    )
    f.lemma(
        "map_app",
        "forall (A B : Type) (g : A -> B) (l1 l2 : list A), "
        "map g (l1 ++ l2) = map g l1 ++ map g l2",
        "induction l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHl1. reflexivity.",
    )
    f.lemma(
        "map_updN",
        "forall (A B : Type) (g : A -> B) (l : list A) (i : nat) (v : A), "
        "map g (updN l i v) = updN (map g l) i (g v)",
        "induction l; destruct i; simpl; intros; auto.\n"
        "rewrite IHl. reflexivity.",
    )
    f.hint_resolve("map_length", "map_app")

    # ------------------------------------------------------------------
    # rev
    # ------------------------------------------------------------------
    f.lemma(
        "rev_app_distr",
        "forall (A : Type) (l1 l2 : list A), "
        "rev (l1 ++ l2) = rev l2 ++ rev l1",
        "induction l1; simpl; intros.\n"
        "- rewrite app_nil_r. reflexivity.\n"
        "- rewrite IHl1. rewrite app_assoc. reflexivity.",
    )
    f.lemma(
        "rev_involutive",
        "forall (A : Type) (l : list A), rev (rev l) = l",
        "induction l; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite rev_app_distr. simpl. rewrite IHl. reflexivity.",
    )
    f.lemma(
        "rev_length",
        "forall (A : Type) (l : list A), length (rev l) = length l",
        "induction l; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite app_length. rewrite IHl. simpl. lia.",
    )

    # ------------------------------------------------------------------
    # repeat
    # ------------------------------------------------------------------
    f.lemma(
        "repeat_length",
        "forall (A : Type) (x : A) (n : nat), length (repeat x n) = n",
        "induction n; simpl.\n"
        "- reflexivity.\n"
        "- rewrite IHn. reflexivity.",
    )
    f.lemma(
        "repeat_map",
        "forall (A B : Type) (g : A -> B) (x : A) (n : nat), "
        "map g (repeat x n) = repeat (g x) n",
        "induction n; simpl.\n"
        "- reflexivity.\n"
        "- rewrite IHn. reflexivity.",
    )
    f.lemma(
        "repeat_app",
        "forall (A : Type) (x : A) (n m : nat), "
        "repeat x (n + m) = repeat x n ++ repeat x m",
        "induction n; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHn. reflexivity.",
    )
    f.hint_resolve("repeat_length", "repeat_map")

    # ------------------------------------------------------------------
    # firstn / skipn
    # ------------------------------------------------------------------
    f.lemma(
        "firstn_nil",
        "forall (A : Type) (l : list A) (n : nat), l = nil -> firstn n l = nil",
        "intros. rewrite H. destruct n; reflexivity.",
    )
    f.lemma(
        "firstn_length",
        "forall (A : Type) (l : list A) (n : nat), "
        "length (firstn n l) = min n (length l)",
        "induction l; destruct n; simpl; intros; auto.\n"
        "f_equal. apply IHl.",
    )
    f.lemma(
        "firstn_oob",
        "forall (A : Type) (l : list A) (n : nat), "
        "length l <= n -> firstn n l = l",
        "induction l; destruct n; simpl; intros; auto.\n"
        "- inversion H.\n"
        "- f_equal. apply IHl. lia.",
    )
    f.lemma(
        "firstn_app",
        "forall (A : Type) (l1 l2 : list A), "
        "firstn (length l1) (l1 ++ l2) = l1",
        "induction l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- rewrite IHl1. reflexivity.",
    )
    f.lemma(
        "skipn_nil",
        "forall (A : Type) (l : list A) (n : nat), l = nil -> skipn n l = nil",
        "intros. rewrite H. destruct n; reflexivity.",
    )
    f.lemma(
        "skipn_length",
        "forall (A : Type) (l : list A) (n : nat), "
        "length (skipn n l) = length l - n",
        "induction l; destruct n; simpl; intros; auto.",
    )
    f.lemma(
        "skipn_app",
        "forall (A : Type) (l1 l2 : list A), "
        "skipn (length l1) (l1 ++ l2) = l2",
        "induction l1; simpl; intros.\n"
        "- reflexivity.\n"
        "- apply IHl1.",
    )
    f.lemma(
        "firstn_skipn",
        "forall (A : Type) (n : nat) (l : list A), "
        "firstn n l ++ skipn n l = l",
        "induction n; destruct l; simpl; intros; auto.\n"
        "rewrite IHn. reflexivity.",
    )

    # ------------------------------------------------------------------
    # selN
    # ------------------------------------------------------------------
    f.lemma(
        "selN_0_cons",
        "forall (A : Type) (x def : A) (l : list A), "
        "selN (x :: l) 0 def = x",
        "intros. reflexivity.",
    )
    f.lemma(
        "selN_repeat",
        "forall (A : Type) (n i : nat) (x def : A), "
        "i < n -> selN (repeat x n) i def = x",
        "induction n; destruct i; simpl; intros; auto.\n"
        "- exfalso. unfold lt in H. lia.\n"
        "- exfalso. unfold lt in H. lia.\n"
        "- apply IHn. unfold lt in *. lia.",
    )
    f.lemma(
        "selN_updN_eq",
        "forall (A : Type) (l : list A) (i : nat) (v def : A), "
        "i < length l -> selN (updN l i v) i def = v",
        "induction l; destruct i; simpl; intros; auto.\n"
        "- exfalso. unfold lt in H. lia.\n"
        "- exfalso. unfold lt in H. lia.\n"
        "- apply IHl. unfold lt in *. lia.",
    )
    f.lemma(
        "selN_updN_ne",
        "forall (A : Type) (l : list A) (i j : nat) (v def : A), "
        "i <> j -> selN (updN l i v) j def = selN l j def",
        "induction l; destruct i; destruct j; simpl; intros; "
        "auto; try congruence.\n"
        "apply IHl. congruence.",
    )
    f.lemma(
        "selN_app1",
        "forall (A : Type) (l1 l2 : list A) (i : nat) (def : A), "
        "i < length l1 -> selN (l1 ++ l2) i def = selN l1 i def",
        "induction l1; destruct i; simpl; intros; auto.\n"
        "- exfalso. unfold lt in H. lia.\n"
        "- exfalso. unfold lt in H. lia.\n"
        "- apply IHl1. unfold lt in *. lia.",
    )

    # ------------------------------------------------------------------
    # In
    # ------------------------------------------------------------------
    f.lemma(
        "in_eq",
        "forall (A : Type) (x : A) (l : list A), In x (x :: l)",
        "intros. simpl. left. reflexivity.",
    )
    f.lemma(
        "in_cons",
        "forall (A : Type) (a x : A) (l : list A), "
        "In x l -> In x (a :: l)",
        "intros. simpl. right. assumption.",
    )
    f.lemma(
        "in_nil",
        "forall (A : Type) (x : A), ~ In x nil",
        "intros. intro H. simpl in H. assumption.",
    )
    f.lemma(
        "in_app_or",
        "forall (A : Type) (l1 l2 : list A) (x : A), "
        "In x (l1 ++ l2) -> In x l1 \\/ In x l2",
        "induction l1; simpl; intros.\n"
        "- right. assumption.\n"
        "- destruct H.\n"
        "  + left. left. assumption.\n"
        "  + apply IHl1 in H. destruct H.\n"
        "    * left. right. assumption.\n"
        "    * right. assumption.",
    )
    f.lemma(
        "in_or_app",
        "forall (A : Type) (l1 l2 : list A) (x : A), "
        "In x l1 \\/ In x l2 -> In x (l1 ++ l2)",
        "induction l1; simpl; intros.\n"
        "- destruct H.\n"
        "  + simpl in H. contradiction.\n"
        "  + assumption.\n"
        "- destruct H.\n"
        "  + destruct H.\n"
        "    * left. assumption.\n"
        "    * right. apply IHl1. left. assumption.\n"
        "  + right. apply IHl1. right. assumption.",
    )
    f.lemma(
        "in_map",
        "forall (A B : Type) (g : A -> B) (l : list A) (x : A), "
        "In x l -> In (g x) (map g l)",
        "induction l; simpl; intros.\n"
        "- intro Hf. assumption.\n"
        "- destruct H.\n"
        "  + left. rewrite H. reflexivity.\n"
        "  + right. apply IHl. assumption.",
    )
    f.hint_resolve("in_eq", "in_cons")

    # ------------------------------------------------------------------
    # incl
    # ------------------------------------------------------------------
    f.lemma(
        "incl_refl",
        "forall (A : Type) (l : list A), incl l l",
        "intros. unfold incl. intros. assumption.",
    )
    f.lemma(
        "incl_nil",
        "forall (A : Type) (l : list A), incl nil l",
        "intros. unfold incl. intros. simpl in H. contradiction.",
    )
    f.lemma(
        "incl_tl",
        "forall (A : Type) (a : A) (l1 l2 : list A), "
        "incl l1 l2 -> incl l1 (a :: l2)",
        "intros. unfold incl in *. intros. simpl. right. "
        "apply H. assumption.",
    )
    f.lemma(
        "incl_cons",
        "forall (A : Type) (a : A) (l1 l2 : list A), "
        "In a l2 -> incl l1 l2 -> incl (a :: l1) l2",
        "intros. unfold incl in *. intros. simpl in H1. destruct H1.\n"
        "- rewrite <- H1. assumption.\n"
        "- apply H0. assumption.",
    )
    f.lemma(
        "incl_cons_inv",
        "forall (A : Type) (a : A) (l1 l2 : list A), "
        "incl (a :: l1) l2 -> incl l1 l2",
        "intros. unfold incl in *. intros. apply H. simpl. "
        "right. assumption.",
    )
    f.lemma(
        "incl_in",
        "forall (A : Type) (l1 l2 : list A) (x : A), "
        "incl l1 l2 -> In x l1 -> In x l2",
        "intros. unfold incl in H. apply H. assumption.",
    )
    f.lemma(
        "incl_appl",
        "forall (A : Type) (l1 l2 l3 : list A), "
        "incl l1 l2 -> incl l1 (l2 ++ l3)",
        "intros. unfold incl in *. intros. apply in_or_app. "
        "left. apply H. assumption.",
    )
    f.lemma(
        "incl_appr",
        "forall (A : Type) (l1 l2 l3 : list A), "
        "incl l1 l3 -> incl l1 (l2 ++ l3)",
        "intros. unfold incl in *. intros. apply in_or_app. "
        "right. apply H. assumption.",
    )
    f.lemma(
        "incl_app",
        "forall (A : Type) (l1 l2 l3 : list A), "
        "incl l1 l3 -> incl l2 l3 -> incl (l1 ++ l2) l3",
        "intros. unfold incl in *. intros. apply in_app_or in H1. "
        "destruct H1.\n"
        "- apply H. assumption.\n"
        "- apply H0. assumption.",
    )
    f.hint_resolve("incl_refl", "incl_nil", "incl_tl")

    # Figure 2, Case A: the paper's example of an induction-heavy
    # human proof that the LLM simplifies.
    f.lemma(
        "incl_tl_inv",
        "forall (T : Type) (l1 l2 : list T) (a : T), "
        "incl l1 (a :: l2) -> ~ In a l1 -> incl l1 l2",
        "induction l1; simpl; intros.\n"
        "- apply incl_nil.\n"
        "- assert (In a (a0 :: l2)) as Ha.\n"
        "  { apply H. simpl. left. reflexivity. }\n"
        "  simpl in Ha. apply incl_cons.\n"
        "  + destruct Ha.\n"
        "    * exfalso. apply H0. left. rewrite Ha. reflexivity.\n"
        "    * assumption.\n"
        "  + eapply IHl1.\n"
        "    * eapply incl_cons_inv. apply H.\n"
        "    * intro Hin. apply H0. right. assumption.",
    )

    # ------------------------------------------------------------------
    # Forall
    # ------------------------------------------------------------------
    f.lemma(
        "Forall_inv",
        "forall (A : Type) (P : A -> Prop) (x : A) (l : list A), "
        "Forall P (x :: l) -> P x",
        "intros. inversion H. assumption.",
    )
    f.lemma(
        "Forall_inv_tail",
        "forall (A : Type) (P : A -> Prop) (x : A) (l : list A), "
        "Forall P (x :: l) -> Forall P l",
        "intros. inversion H. assumption.",
    )
    f.lemma(
        "Forall_app",
        "forall (A : Type) (P : A -> Prop) (l1 l2 : list A), "
        "Forall P l1 -> Forall P l2 -> Forall P (l1 ++ l2)",
        "induction l1; simpl; intros; auto.\n"
        "inversion H. constructor.\n"
        "- assumption.\n"
        "- apply IHl1.\n"
        "  + assumption.\n"
        "  + assumption.",
    )
    f.lemma(
        "Forall_app_l",
        "forall (A : Type) (P : A -> Prop) (l1 l2 : list A), "
        "Forall P (l1 ++ l2) -> Forall P l1",
        "induction l1; simpl; intros; auto.\n"
        "inversion H. constructor.\n"
        "- assumption.\n"
        "- eapply IHl1. eauto.",
    )
    f.lemma(
        "Forall_impl",
        "forall (A : Type) (P Q : A -> Prop) (l : list A), "
        "(forall x, P x -> Q x) -> Forall P l -> Forall Q l",
        "induction l; simpl; intros; auto.\n"
        "inversion H0. constructor.\n"
        "- apply H. assumption.\n"
        "- apply IHl.\n"
        "  + assumption.\n"
        "  + assumption.",
    )
    f.lemma(
        "Forall_forall_in",
        "forall (A : Type) (P : A -> Prop) (l : list A) (x : A), "
        "Forall P l -> In x l -> P x",
        "induction l; simpl; intros.\n"
        "- contradiction.\n"
        "- inversion H. destruct H0.\n"
        "  + rewrite <- H0. assumption.\n"
        "  + apply IHl.\n"
        "    * assumption.\n"
        "    * assumption.",
    )
    f.lemma(
        "Forall_repeat",
        "forall (A : Type) (P : A -> Prop) (x : A) (n : nat), "
        "P x -> Forall P (repeat x n)",
        "induction n; simpl; intros; auto.",
    )

    # ------------------------------------------------------------------
    # NoDup
    # ------------------------------------------------------------------
    f.lemma(
        "NoDup_cons_not_in",
        "forall (A : Type) (x : A) (l : list A), "
        "NoDup (x :: l) -> ~ In x l",
        "intros. inversion H. assumption.",
    )
    f.lemma(
        "NoDup_cons_inv",
        "forall (A : Type) (x : A) (l : list A), "
        "NoDup (x :: l) -> NoDup l",
        "intros. inversion H. assumption.",
    )
    f.lemma(
        "NoDup_app_l",
        "forall (A : Type) (l1 l2 : list A), "
        "NoDup (l1 ++ l2) -> NoDup l1",
        "induction l1; simpl; intros.\n"
        "- constructor.\n"
        "- inversion H. constructor.\n"
        "  + intro Hin. apply H0. apply in_or_app. left. assumption.\n"
        "  + eapply IHl1. eauto.",
    )
    f.lemma(
        "NoDup_repeat_1",
        "forall (A : Type) (x : A), NoDup (repeat x 1)",
        "intros. simpl. constructor.\n"
        "- apply in_nil.\n"
        "- constructor.",
    )

    return f.build()
