"""Sorting.v — insertion sort and the Sorted predicate (Utilities).

Directory listings and allocator scans sort address lists; this file
carries the sortedness substrate: a boolean order ``leb``, insertion
sort (with the conditional encoded as the ``ins_if`` helper fixpoint —
the kernel has no inline ``if``), the inductive ``Sorted`` predicate,
and the classic correctness lemmas (length, membership, multiset
count, and sortedness preservation).
"""

from __future__ import annotations

from repro.corpus.model import FileBuilder, SourceFile


def build() -> SourceFile:
    f = FileBuilder(
        "Sorting",
        "Utilities",
        imports=("Prelude", "ArithUtils", "ListUtils", "ListPred"),
    )

    f.fixpoint(
        "leb",
        "nat -> nat -> bool",
        [
            "leb 0 m = true",
            "leb (S n) 0 = false",
            "leb (S n) (S m) = leb n m",
        ],
    )
    f.fixpoint(
        "bool_to_nat",
        "bool -> nat",
        ["bool_to_nat true = 1", "bool_to_nat false = 0"],
    )
    f.fixpoint(
        "ins_if",
        "bool -> nat -> nat -> list nat -> list nat -> list nat",
        [
            "ins_if true x y l rec = x :: y :: l",
            "ins_if false x y l rec = y :: rec",
        ],
    )
    f.fixpoint(
        "insert",
        "nat -> list nat -> list nat",
        [
            "insert x nil = x :: nil",
            "insert x (y :: l) = ins_if (leb x y) x y l (insert x l)",
        ],
    )
    f.fixpoint(
        "isort",
        "list nat -> list nat",
        [
            "isort nil = nil",
            "isort (x :: l) = insert x (isort l)",
        ],
    )
    f.fixpoint(
        "count_nat",
        "nat -> list nat -> nat",
        [
            "count_nat v nil = 0",
            "count_nat v (x :: l) = "
            "bool_to_nat (beq_nat v x) + count_nat v l",
        ],
    )
    f.pred(
        "Sorted",
        "list nat -> Prop",
        [
            ("Sorted_nil", "Sorted nil"),
            ("Sorted_one", "forall (x : nat), Sorted (x :: nil)"),
            (
                "Sorted_cons",
                "forall (x y : nat) (l : list nat), "
                "x <= y -> Sorted (y :: l) -> Sorted (x :: y :: l)",
            ),
        ],
    )
    f.hint_constructors("Sorted")

    # ------------------------------------------------------------------
    # The boolean order agrees with le.
    # ------------------------------------------------------------------
    f.lemma(
        "leb_refl",
        "forall n, leb n n = true",
        "induction n; simpl; auto.",
    )
    f.lemma(
        "leb_correct",
        "forall n m, leb n m = true -> n <= m",
        "induction n; destruct m; simpl; intros.\n"
        "- apply le_n.\n"
        "- apply le_0_n.\n"
        "- discriminate H.\n"
        "- apply le_n_S. apply IHn. assumption.",
    )
    f.lemma(
        "leb_complete",
        "forall n m, n <= m -> leb n m = true",
        "induction n; destruct m; simpl; intros.\n"
        "- reflexivity.\n"
        "- reflexivity.\n"
        "- exfalso. lia.\n"
        "- apply IHn. lia.",
    )
    f.lemma(
        "leb_false_lt",
        "forall n m, leb n m = false -> m < n",
        "induction n; destruct m; simpl; intros.\n"
        "- discriminate H.\n"
        "- discriminate H.\n"
        "- unfold lt. apply le_n_S. apply le_0_n.\n"
        "- apply IHn in H. unfold lt in *. lia.",
    )
    f.lemma(
        "leb_total",
        "forall n m, leb n m = true \\/ leb m n = true",
        "intros. destruct (leb n m) eqn:E.\n"
        "- left. reflexivity.\n"
        "- right. apply leb_false_lt in E. apply leb_complete. "
        "unfold lt in E. lia.",
    )

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    f.lemma(
        "insert_length",
        "forall (x : nat) (l : list nat), "
        "length (insert x l) = S (length l)",
        "induction l; simpl.\n"
        "- reflexivity.\n"
        "- destruct (leb x a) eqn:E; simpl.\n"
        "  + reflexivity.\n"
        "  + rewrite IHl. reflexivity.",
    )
    f.lemma(
        "insert_in_head",
        "forall (x : nat) (l : list nat), In x (insert x l)",
        "induction l; simpl.\n"
        "- left. reflexivity.\n"
        "- destruct (leb x a) eqn:E; simpl.\n"
        "  + left. reflexivity.\n"
        "  + right. assumption.",
    )
    f.lemma(
        "insert_in_tail",
        "forall (x v : nat) (l : list nat), "
        "In v l -> In v (insert x l)",
        "induction l; simpl; intros.\n"
        "- contradiction.\n"
        "- destruct (leb x a) eqn:E; simpl.\n"
        "  + right. assumption.\n"
        "  + destruct H.\n"
        "    * left. assumption.\n"
        "    * right. apply IHl. assumption.",
    )
    f.lemma(
        "insert_count",
        "forall (x v : nat) (l : list nat), "
        "count_nat v (insert x l) = "
        "bool_to_nat (beq_nat v x) + count_nat v l",
        "induction l; simpl.\n"
        "- reflexivity.\n"
        "- destruct (leb x a) eqn:E; simpl.\n"
        "  + reflexivity.\n"
        "  + rewrite IHl. lia.",
    )

    # ------------------------------------------------------------------
    # Sorted
    # ------------------------------------------------------------------
    f.lemma(
        "sorted_tail",
        "forall (x : nat) (l : list nat), "
        "Sorted (x :: l) -> Sorted l",
        "intros. inversion H.\n"
        "- constructor.\n"
        "- assumption.",
    )
    f.lemma(
        "sorted_head_le",
        "forall (x y : nat) (l : list nat), "
        "Sorted (x :: y :: l) -> x <= y",
        "intros. inversion H. assumption.",
    )
    f.lemma(
        "insert_sorted",
        "forall (x : nat) (l : list nat), "
        "Sorted l -> Sorted (insert x l)",
        "induction l; simpl; intros.\n"
        "- constructor.\n"
        "- destruct (leb x a) eqn:E; simpl.\n"
        "  + constructor.\n"
        "    * apply leb_correct. assumption.\n"
        "    * assumption.\n"
        "  + apply leb_false_lt in E. "
        "assert (Sorted (insert x l)) as Hins.\n"
        "    { apply IHl. eapply sorted_tail. apply H. }\n"
        "    destruct l; simpl.\n"
        "    * constructor.\n"
        "      { unfold lt in E. lia. }\n"
        "      { constructor. }\n"
        "    * simpl in Hins. destruct (leb x a0) eqn:E2; simpl in *.\n"
        "      { constructor.\n"
        "        - unfold lt in E. lia.\n"
        "        - assumption. }\n"
        "      { constructor.\n"
        "        - eapply sorted_head_le. apply H.\n"
        "        - assumption. }",
    )
    f.lemma(
        "isort_sorted",
        "forall (l : list nat), Sorted (isort l)",
        "induction l; simpl.\n"
        "- constructor.\n"
        "- apply insert_sorted. assumption.",
    )
    f.lemma(
        "isort_length",
        "forall (l : list nat), length (isort l) = length l",
        "induction l; simpl.\n"
        "- reflexivity.\n"
        "- rewrite insert_length. rewrite IHl. reflexivity.",
    )
    f.lemma(
        "isort_count",
        "forall (v : nat) (l : list nat), "
        "count_nat v (isort l) = count_nat v l",
        "induction l; simpl.\n"
        "- reflexivity.\n"
        "- rewrite insert_count. rewrite IHl. reflexivity.",
    )
    f.lemma(
        "isort_in",
        "forall (v : nat) (l : list nat), "
        "In v l -> In v (isort l)",
        "induction l; simpl; intros.\n"
        "- intro Hf. assumption.\n"
        "- destruct H.\n"
        "  + rewrite <- H. apply insert_in_head.\n"
        "  + apply insert_in_tail. apply IHl. assumption.",
    )

    return f.build()
