"""Corpus data model: declarations, source files, theorems, projects.

The FSCQ-like benchmark is authored as Python modules, each describing
one "Coq file" through a :class:`FileBuilder`.  Every declaration
carries (a) Coq-style *source text* — this is what prompts show to the
LLM — and (b) an *installer* that effects the declaration against the
growing kernel environment when the project is loaded.

Lemmas additionally carry their human proof script; the loader
machine-checks every script (no proof is ever trusted), mirroring how
``coqc`` would compile FSCQ file by file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CorpusError
from repro.kernel.env import Environment
from repro.kernel.terms import Term

__all__ = ["Declaration", "Theorem", "SourceFile", "FileBuilder", "CATEGORIES"]

CATEGORIES = ("Utilities", "CHL", "FileSystem")

Installer = Callable[[Environment], None]


@dataclass
class Declaration:
    """One source-level declaration inside a corpus file."""

    kind: str  # inductive | pred | fixpoint | definition | axiom |
    #            lemma | hint | opaque | opaque_type
    name: str
    source: str
    install: Installer
    # Lemmas only:
    statement_text: Optional[str] = None
    proof_text: Optional[str] = None


@dataclass
class Theorem:
    """A provable corpus item (the benchmark unit of the paper)."""

    name: str
    file: str
    category: str
    index: int  # position within its file
    statement_text: str
    proof_text: str
    statement: Optional[Term] = None  # filled by the loader
    proof_tokens: int = 0  # filled by the loader

    def qualified(self) -> str:
        return f"{self.file}.{self.name}"


@dataclass
class SourceFile:
    """One "Coq file" of the corpus."""

    name: str
    category: str
    imports: Tuple[str, ...]
    declarations: List[Declaration] = field(default_factory=list)

    def render_header(self) -> str:
        lines = [f"(* File: {self.name}.v *)"]
        for imp in self.imports:
            lines.append(f"Require Import {imp}.")
        return "\n".join(lines)


class FileBuilder:
    """Fluent builder used by corpus modules to author one file.

    The builder records declarations; nothing touches a kernel
    environment until :meth:`repro.corpus.loader.load_project` runs the
    installers in order.
    """

    def __init__(
        self, name: str, category: str, imports: Sequence[str] = ()
    ) -> None:
        if category not in CATEGORIES:
            raise CorpusError(f"unknown category: {category}")
        self.file = SourceFile(name, category, tuple(imports))

    # ------------------------------------------------------------------
    # Declaration forms (all record source text + an installer thunk).
    # The heavy lifting — parsing texts against the environment at
    # install time — lives in repro.corpus.install.
    # ------------------------------------------------------------------

    def _add(self, decl: Declaration) -> None:
        self.file.declarations.append(decl)

    def opaque_type(self, name: str) -> None:
        from repro.corpus import install as ins

        self._add(
            Declaration(
                kind="opaque_type",
                name=name,
                source=f"Parameter {name} : Type.",
                install=ins.opaque_type(name),
            )
        )

    def opaque(self, name: str, ty_text: str, tvars: Sequence[str] = ()) -> None:
        from repro.corpus import install as ins

        self._add(
            Declaration(
                kind="opaque",
                name=name,
                source=f"Parameter {name} : {ty_text}.",
                install=ins.opaque(name, ty_text, tuple(tvars)),
            )
        )

    def inductive(
        self,
        name: str,
        ctors: Sequence[Tuple[str, Sequence[str], Sequence[str]]],
        tvars: Sequence[str] = (),
    ) -> None:
        """``ctors``: (ctor_name, arg_type_texts, arg_name_hints)."""
        from repro.corpus import install as ins

        params = "".join(f" ({v} : Type)" for v in tvars)
        parts = []
        for ctor_name, arg_tys, _ in ctors:
            if arg_tys:
                sig = " -> ".join(list(arg_tys) + [_applied(name, tvars)])
            else:
                sig = _applied(name, tvars)
            parts.append(f"  | {ctor_name} : {sig}")
        source = (
            f"Inductive {name}{params} : Type :=\n" + "\n".join(parts) + "."
        )
        self._add(
            Declaration(
                kind="inductive",
                name=name,
                source=source,
                install=ins.inductive(name, ctors, tuple(tvars)),
            )
        )

    def pred(
        self,
        name: str,
        ty_text: str,
        ctors: Sequence[Tuple[str, str]],
        tvars: Sequence[str] = (),
    ) -> None:
        """An inductive predicate; ``ctors``: (rule_name, statement)."""
        from repro.corpus import install as ins

        params = "".join(f" ({v} : Type)" for v in tvars)
        parts = [f"  | {n} : {stmt}" for n, stmt in ctors]
        source = (
            f"Inductive {name}{params} : {ty_text} :=\n"
            + "\n".join(parts)
            + "."
        )
        self._add(
            Declaration(
                kind="pred",
                name=name,
                source=source,
                install=ins.pred(name, ty_text, ctors, tuple(tvars)),
            )
        )

    def fixpoint(
        self,
        name: str,
        ty_text: str,
        equations: Sequence[str],
        tvars: Sequence[str] = (),
    ) -> None:
        """A recursive function given by ``lhs = rhs`` equation texts."""
        from repro.corpus import install as ins

        params = "".join(f" ({v} : Type)" for v in tvars)
        body = "\n".join(f"  | {eq}" for eq in equations)
        source = f"Fixpoint {name}{params} : {ty_text} :=\n{body}."
        self._add(
            Declaration(
                kind="fixpoint",
                name=name,
                source=source,
                install=ins.fixpoint(name, ty_text, equations, tuple(tvars)),
            )
        )

    def definition(
        self,
        name: str,
        params_text: str,
        result_ty_text: str,
        body_text: str,
        tvars: Sequence[str] = (),
    ) -> None:
        """A transparent definition (unfoldable abbreviation)."""
        from repro.corpus import install as ins

        tv = "".join(f" ({v} : Type)" for v in tvars)
        sep = " " if params_text else ""
        source = (
            f"Definition {name}{tv}{sep}{params_text} : "
            f"{result_ty_text} := {body_text}."
        )
        self._add(
            Declaration(
                kind="definition",
                name=name,
                source=source,
                install=ins.definition(
                    name, params_text, result_ty_text, body_text, tuple(tvars)
                ),
            )
        )

    def axiom(self, name: str, statement_text: str) -> None:
        from repro.corpus import install as ins

        self._add(
            Declaration(
                kind="axiom",
                name=name,
                source=f"Axiom {name} : {statement_text}.",
                install=ins.axiom(name, statement_text),
                statement_text=statement_text,
            )
        )

    def lemma(self, name: str, statement_text: str, proof_text: str) -> None:
        from repro.corpus import install as ins

        proof_block = proof_text.strip()
        source = (
            f"Lemma {name} : {statement_text}.\n"
            f"Proof.\n  {proof_block}\nQed."
        )
        self._add(
            Declaration(
                kind="lemma",
                name=name,
                source=source,
                install=ins.lemma(name, statement_text, proof_text),
                statement_text=statement_text,
                proof_text=proof_text,
            )
        )

    def hint_resolve(self, *names: str) -> None:
        from repro.corpus import install as ins

        self._add(
            Declaration(
                kind="hint",
                name=f"hint_resolve_{len(self.file.declarations)}",
                source=f"Hint Resolve {' '.join(names)}.",
                install=ins.hint_resolve(names),
            )
        )

    def hint_constructors(self, *names: str) -> None:
        from repro.corpus import install as ins

        self._add(
            Declaration(
                kind="hint",
                name=f"hint_ctors_{len(self.file.declarations)}",
                source=f"Hint Constructors {' '.join(names)}.",
                install=ins.hint_constructors(names),
            )
        )

    def build(self) -> SourceFile:
        return self.file


def _applied(name: str, tvars: Sequence[str]) -> str:
    return name if not tvars else f"{name} {' '.join(tvars)}"
