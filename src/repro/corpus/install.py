"""Installer factories: turn corpus declaration texts into kernel
declarations against a live environment.

Each factory returns a closure ``(env) -> None`` executed by the
loader in file order.  All parsing happens here, at install time,
against the environment as it exists at that point in the project —
exactly like ``coqc`` elaborating a file top to bottom.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CorpusError, ReproError, UnificationError
from repro.kernel.definitions import Abbreviation, FixEquation, Fixpoint
from repro.kernel.env import Environment, LemmaInfo
from repro.kernel.inductives import (
    DataConstructor,
    Inductive,
    InductivePred,
    PredConstructor,
)
from repro.kernel.parser import Lexer, TermParser, parse_statement, parse_type
from repro.kernel.signature import ConstInfo, ConstKind
from repro.kernel.terms import App, Const, Eq, Term, Var, free_vars
from repro.kernel.typecheck import elaborate_term
from repro.kernel.types import TArrow, TCon, Type, apply_tsubst, unify_types

__all__ = [
    "opaque_type",
    "opaque",
    "inductive",
    "pred",
    "fixpoint",
    "definition",
    "axiom",
    "lemma",
    "hint_resolve",
    "hint_constructors",
]


def opaque_type(name: str):
    def install(env: Environment) -> None:
        env.declare_type(name)

    return install


def opaque(name: str, ty_text: str, tvars: Tuple[str, ...]):
    def install(env: Environment) -> None:
        env.declare_opaque(name, parse_type(ty_text, tvars))

    return install


def inductive(
    name: str,
    ctors: Sequence[Tuple[str, Sequence[str], Sequence[str]]],
    tvars: Tuple[str, ...],
):
    def install(env: Environment) -> None:
        parsed = []
        for ctor_name, arg_tys, hints in ctors:
            arg_types = tuple(parse_type(t, tvars) for t in arg_tys)
            parsed.append(
                DataConstructor(ctor_name, arg_types, tuple(hints))
            )
        env.declare_inductive(Inductive(name, tvars, tuple(parsed)))

    return install


def pred(
    name: str,
    ty_text: str,
    ctors: Sequence[Tuple[str, str]],
    tvars: Tuple[str, ...],
):
    def install(env: Environment) -> None:
        ty = parse_type(ty_text, tvars)
        # The predicate constant must be visible while its own intro
        # rules are elaborated (rules mention it in their conclusions).
        env.signature.add(
            ConstInfo(name=name, ty=ty, kind=ConstKind.INDUCTIVE_PRED)
        )
        rules = []
        for rule_name, stmt_text in ctors:
            statement = parse_statement(env, stmt_text, tvars)
            rules.append(PredConstructor(rule_name, statement))
        env.preds[name] = InductivePred(name, ty, tuple(rules))
        for rule in rules:
            env._add_lemma(LemmaInfo(rule.name, rule.statement, is_axiom=True))

    return install


def _arrow_args(ty: Type, count: int) -> Tuple[Tuple[Type, ...], Type]:
    args: List[Type] = []
    current = ty
    for _ in range(count):
        if not isinstance(current, TArrow):
            raise CorpusError(f"type has fewer than {count} arguments: {ty}")
        args.append(current.dom)
        current = current.cod
    return tuple(args), current


def _pattern_fixup(env: Environment, raw: Term) -> Term:
    """Resolve constructor names inside a parsed pattern."""
    if isinstance(raw, Var):
        if env.is_constructor(raw.name):
            return Const(raw.name)
        return raw
    if isinstance(raw, Const):
        return raw
    if isinstance(raw, App):
        from repro.kernel.terms import app as mk_app

        fn = _pattern_fixup(env, raw.fn)
        return mk_app(fn, *(_pattern_fixup(env, a) for a in raw.args))
    raise CorpusError(f"unsupported pattern form: {raw!r}")


def _pattern_var_types(
    env: Environment, pattern: Term, expected: Type, out: Dict[str, Type]
) -> None:
    if isinstance(pattern, Var):
        out[pattern.name] = expected
        return
    if isinstance(pattern, Const):
        head, args = pattern, ()
    elif isinstance(pattern, App) and isinstance(pattern.fn, Const):
        head, args = pattern.fn, pattern.args
    else:
        raise CorpusError(f"unsupported pattern form: {pattern!r}")
    info = env.signature.lookup(head.name)
    from repro.kernel.types import instantiate_scheme

    ctor_ty = instantiate_scheme(info.ty)
    arg_types, result = _arrow_args(ctor_ty, len(args))
    try:
        tsubst = unify_types(result, expected)
    except UnificationError as exc:
        raise CorpusError(f"pattern type mismatch: {exc}") from exc
    for arg, arg_ty in zip(args, arg_types):
        _pattern_var_types(env, arg, apply_tsubst(tsubst, arg_ty), out)


def fixpoint(
    name: str,
    ty_text: str,
    equations: Sequence[str],
    tvars: Tuple[str, ...],
):
    def install(env: Environment) -> None:
        from repro.kernel.parser import parse_term

        ty = parse_type(ty_text, tvars)
        raw_eqs = []
        arity: Optional[int] = None
        for eq_text in equations:
            raw = parse_term(eq_text, tvars)
            if not isinstance(raw, Eq):
                raise CorpusError(f"fixpoint equation is not '=': {eq_text}")
            lhs = raw.lhs
            if not (
                isinstance(lhs, App)
                and isinstance(lhs.fn, Var)
                and lhs.fn.name == name
            ):
                raise CorpusError(
                    f"equation head must be {name}: {eq_text}"
                )
            if arity is None:
                arity = len(lhs.args)
            elif arity != len(lhs.args):
                raise CorpusError(f"inconsistent arity in {name}")
            raw_eqs.append((lhs.args, raw.rhs))
        if arity is None:
            raise CorpusError(f"fixpoint {name} has no equations")
        arg_types, result_ty = _arrow_args(ty, arity)

        # Register the constant before elaborating right-hand sides so
        # recursive calls resolve.
        fix_placeholder = Fixpoint(name, arg_types, result_ty, ())
        env.declare_fixpoint(fix_placeholder)

        parsed_eqs = []
        for raw_args, raw_rhs in raw_eqs:
            patterns = tuple(_pattern_fixup(env, a) for a in raw_args)
            ctx: Dict[str, Type] = {}
            for pattern, arg_ty in zip(patterns, arg_types):
                _pattern_var_types(env, pattern, arg_ty, ctx)
            rhs = elaborate_term(env, raw_rhs, ctx, expected=result_ty)
            parsed_eqs.append(FixEquation(patterns, rhs))
        env.fixpoints[name] = Fixpoint(
            name, arg_types, result_ty, tuple(parsed_eqs)
        )

    return install


def _parse_binders(text: str, tvars: Tuple[str, ...]):
    if not text.strip():
        return []
    lexer = Lexer(text + " ,")
    parser = TermParser(lexer, set(tvars))
    binders = parser._binders(stop=",")
    return [(n, t) for n, t in binders]


def definition(
    name: str,
    params_text: str,
    result_ty_text: str,
    body_text: str,
    tvars: Tuple[str, ...],
):
    def install(env: Environment) -> None:
        from repro.kernel.parser import parse_term

        binders = _parse_binders(params_text, tvars)
        params: List[Tuple[str, Type]] = []
        all_tvars = list(tvars)
        for binder_name, binder_ty in binders:
            if binder_ty == TCon("Type"):
                # A `(A : Type)` parameter is a type variable, not a
                # term parameter (the kernel keeps polymorphism at the
                # type level).
                if binder_name not in all_tvars:
                    all_tvars.append(binder_name)
                continue
            if binder_ty is None:
                raise CorpusError(
                    f"definition {name}: parameter {binder_name} needs a type"
                )
            params.append((binder_name, binder_ty))
        result_ty = parse_type(result_ty_text, tuple(all_tvars))
        raw_body = parse_term(body_text, tuple(all_tvars))
        ctx = dict(params)
        body = elaborate_term(env, raw_body, ctx, expected=result_ty)
        env.declare_abbreviation(
            Abbreviation(name, tuple(params), body, result_ty)
        )

    return install


def axiom(name: str, statement_text: str):
    def install(env: Environment) -> None:
        env.add_axiom(name, parse_statement(env, statement_text))

    return install


def lemma(name: str, statement_text: str, proof_text: str):
    def install(env: Environment) -> None:
        from repro.tactics.script import run_script

        statement = parse_statement(env, statement_text)
        try:
            run_script(env, statement, proof_text)
        except ReproError as exc:
            raise CorpusError(f"proof of {name} failed: {exc}") from exc
        env.add_lemma(name, statement)

    return install


def hint_resolve(names: Sequence[str]):
    def install(env: Environment) -> None:
        env.hint_resolve_add(*names)

    return install


def hint_constructors(names: Sequence[str]):
    def install(env: Environment) -> None:
        env.hint_constructors_add(*names)

    return install
