"""Hint/test splits (paper §4, "Prompt design" and "Data").

* The **hint split**: 50 % of theorems, selected at random once and
  held fixed across all experiments; their human proofs may appear in
  hint-setting prompts.
* The **test split**: everything else.  Small models are evaluated on
  all of it; large models on a random subsample (the paper used 10 %
  "due to budget constraints"; the fraction is a parameter here, and
  the large-model sample is always a subset of the small-model one).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Set

from repro.corpus.loader import Project
from repro.corpus.model import Theorem

__all__ = ["Splits", "make_splits", "DEFAULT_SEED"]

DEFAULT_SEED = 20250514  # HOTOS '25 day one


@dataclass
class Splits:
    hint_names: Set[str]
    test: List[Theorem]  # full test split (small models)
    test_large: List[Theorem]  # subsample (large models)

    def is_hint(self, name: str) -> bool:
        return name in self.hint_names


def make_splits(
    project: Project,
    hint_fraction: float = 0.5,
    large_fraction: float = 0.5,
    seed: int = DEFAULT_SEED,
) -> Splits:
    """Deterministic splits over the project's theorems.

    ``large_fraction`` defaults to 0.5 rather than the paper's 0.1:
    with our scaled corpus a 10 % subsample would be too small to bin;
    the small/large sampling asymmetry is preserved (see DESIGN.md).
    """
    rng = random.Random(seed)
    theorems = list(project.theorems)
    shuffled = theorems[:]
    rng.shuffle(shuffled)
    n_hint = int(len(shuffled) * hint_fraction)
    hint_names = {t.name for t in shuffled[:n_hint]}
    test = [t for t in theorems if t.name not in hint_names]
    large_pool = test[:]
    rng.shuffle(large_pool)
    n_large = max(1, int(len(large_pool) * large_fraction))
    large_names = {t.name for t in large_pool[:n_large]}
    test_large = [t for t in test if t.name in large_names]
    return Splits(hint_names=hint_names, test=test, test_large=test_large)
