"""Project assembly: load corpus files in dependency order.

``load_project()`` plays the role of ``make`` over FSCQ's ``.v``
files: it topologically orders the corpus files by their imports,
installs every declaration into one shared environment, and — crucially
— machine-checks every lemma's human proof along the way.  The result
is a :class:`Project` the evaluation layer can query for theorems,
contexts, and categories.
"""

from __future__ import annotations

import hashlib
import importlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CorpusError
from repro.kernel.env import Environment
from repro.corpus.model import SourceFile, Theorem
from repro.corpus.tokenizer import count_tokens

__all__ = ["Project", "load_project", "FILE_MODULES", "ADHOC_GOAL_PREFIX"]

#: Name prefix of theorems registered via :meth:`Project.adhoc_theorem`.
ADHOC_GOAL_PREFIX = "goal_"

# Ad-hoc statements elaborate with fresh type variables drawn from this
# fixed base (far above anything corpus loading or search allocates),
# so the parsed statement — and therefore every rendered prompt — is
# identical no matter how many goals were registered before it.
_ADHOC_TVAR_BASE = 1_000_000_000

# Registered after every corpus declaration: an ad-hoc goal's prover
# sees the whole project, like a user working at the end of the tree.
_ADHOC_CUTOFF = 10**9

_ADHOC_LOCK = threading.Lock()

# Corpus files in a valid dependency order (checked against imports).
FILE_MODULES: Tuple[str, ...] = (
    "repro.corpus.fscq.prelude",
    "repro.corpus.fscq.arith_utils",
    "repro.corpus.fscq.list_utils",
    "repro.corpus.fscq.word_utils",
    "repro.corpus.fscq.list_pred",
    "repro.corpus.fscq.sorting",
    "repro.corpus.fscq.rounding",
    "repro.corpus.fscq.chl.pred",
    "repro.corpus.fscq.chl.sep_star",
    "repro.corpus.fscq.chl.sep_norm",
    "repro.corpus.fscq.chl.hoare",
    "repro.corpus.fscq.chl.crash",
    "repro.corpus.fscq.chl.idempotence",
    "repro.corpus.fscq.fs.addr_log",
    "repro.corpus.fscq.fs.padded_log",
    "repro.corpus.fscq.fs.log_replay",
    "repro.corpus.fscq.fs.balloc",
    "repro.corpus.fscq.fs.inode",
    "repro.corpus.fscq.fs.bfile",
    "repro.corpus.fscq.fs.txn",
    "repro.corpus.fscq.fs.recover",
    "repro.corpus.fscq.fs.dir_tree",
    "repro.corpus.fscq.fs.dirname",
    "repro.corpus.fscq.fs.super",
)


@dataclass
class Project:
    """A fully loaded, fully checked corpus."""

    env: Environment
    files: List[SourceFile]
    theorems: List[Theorem]
    # Declaration-order bookkeeping, used to reconstruct the
    # environment "as of" a theorem (a prover must not see the theorem
    # itself, later lemmas, or later hints — coqc order).
    lemma_order: Dict[str, int] = field(default_factory=dict)
    hint_events: List[Tuple[int, str, Tuple[str, ...]]] = field(
        default_factory=list
    )
    theorem_cutoff: Dict[str, int] = field(default_factory=dict)
    # How this project was loaded.  Re-loads that must reproduce this
    # environment bit-for-bit (e.g. process-pool workers) have to use
    # the same mode: replaying proofs at load advances the global
    # type-variable gensym, so later statements parse with different
    # fresh-variable names — which show up in prompts and therefore in
    # the seeded generator's output.
    check_proofs: bool = True
    _by_name: Dict[str, Theorem] = field(default_factory=dict)
    _env_cache: Dict[int, Environment] = field(default_factory=dict)

    def theorem(self, name: str) -> Theorem:
        thm = self._by_name.get(name)
        if thm is None:
            raise CorpusError(f"no theorem named {name}")
        return thm

    def file_named(self, name: str) -> SourceFile:
        for f in self.files:
            if f.name == name:
                return f
        raise CorpusError(f"no file named {name}")

    def theorems_in(self, category: str) -> List[Theorem]:
        return [t for t in self.theorems if t.category == category]

    def env_for(self, theorem: Theorem) -> Environment:
        """The environment as of ``theorem``'s position in the project.

        Lemmas at or after the theorem (including the theorem itself)
        and hints registered after it are invisible — the prover sees
        exactly what a human proving it in place would.  Datatypes and
        definitions are shared by reference (they are immutable during
        evaluation).
        """
        cutoff = self.theorem_cutoff[theorem.name]
        cached = self._env_cache.get(cutoff)
        if cached is not None:
            return cached
        view = Environment()
        view.signature = self.env.signature
        view.inductives = self.env.inductives
        view.preds = self.env.preds
        view.abbreviations = self.env.abbreviations
        view.fixpoints = self.env.fixpoints
        view.opaque_types = self.env.opaque_types
        view.lemmas = {
            name: info
            for name, info in self.env.lemmas.items()
            if self.lemma_order.get(name, -1) < cutoff
        }
        for order, kind, names in self.hint_events:
            if order >= cutoff:
                continue
            if kind == "resolve":
                view.hint_resolve.extend(
                    n for n in names if n not in view.hint_resolve
                )
            else:
                view.hint_constructors.extend(
                    n for n in names if n not in view.hint_constructors
                )
        self._env_cache[cutoff] = view
        return view

    def adhoc_theorem(self, statement_text: str) -> Theorem:
        """Register a raw goal as an ad-hoc theorem (prover service).

        The goal is named by a content hash of its statement text
        (``goal_<sha16>``), so the same goal registers once and maps to
        a stable :meth:`~repro.eval.tasks.TheoremTask.cache_key` across
        server restarts.  It is attached *after* the last corpus file —
        the prover sees the entire project, and ``proof_text`` is empty
        (there is no human reference; similarity/length-ratio stay
        meaningful only for corpus theorems).

        Parsing is serialised and the fresh-type-variable counter is
        pinned to a fixed base for the duration, so concurrent
        registrations elaborate bit-identical statements regardless of
        arrival order.  The registered theorem is NOT appended to
        :attr:`theorems` — splits, sweeps, and benchmarks must keep
        seeing exactly the corpus.
        """
        from repro.kernel.parser import parse_statement
        from repro.kernel import types as kernel_types

        digest = hashlib.sha256(
            statement_text.strip().encode("utf-8")
        ).hexdigest()[:16]
        name = f"{ADHOC_GOAL_PREFIX}{digest}"
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        with _ADHOC_LOCK:
            existing = self._by_name.get(name)
            if existing is not None:
                return existing
            counter = kernel_types._FRESH_COUNTER
            saved = counter[0]
            counter[0] = _ADHOC_TVAR_BASE
            try:
                statement = parse_statement(self.env, statement_text.strip())
            finally:
                counter[0] = saved
            last = self.files[-1]
            theorem = Theorem(
                name=name,
                file=last.name,
                category=last.category,
                index=len(last.declarations),
                statement_text=statement_text.strip(),
                proof_text="",
                statement=statement,
                proof_tokens=0,
            )
            self.theorem_cutoff[name] = _ADHOC_CUTOFF
            self._by_name[name] = theorem
            return theorem


def _check_import_order(files: Sequence[SourceFile]) -> None:
    seen = set()
    for f in files:
        for imp in f.imports:
            if imp not in seen:
                raise CorpusError(
                    f"file {f.name} imports {imp} before it is loaded"
                )
        seen.add(f.name)


_CACHE: Dict[Tuple[Tuple[str, ...], bool], Project] = {}


def load_project(
    modules: Optional[Sequence[str]] = None,
    check_proofs: bool = True,
    use_cache: bool = True,
) -> Project:
    """Build the corpus environment, verifying all proofs.

    With ``check_proofs=False`` lemma statements are trusted and their
    scripts are not replayed (used by fast unit tests; the full check
    runs in ``tests/corpus``).
    """
    key = (tuple(modules) if modules is not None else FILE_MODULES, check_proofs)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    module_names = list(modules) if modules is not None else list(FILE_MODULES)
    env = Environment()
    files: List[SourceFile] = []
    theorems: List[Theorem] = []
    lemma_order: Dict[str, int] = {}
    hint_events: List[Tuple[int, str, Tuple[str, ...]]] = []
    theorem_cutoff: Dict[str, int] = {}
    order = 0

    for module_name in module_names:
        module = importlib.import_module(module_name)
        if not hasattr(module, "build"):
            raise CorpusError(f"{module_name} has no build() entry point")
        source_file: SourceFile = module.build()
        files.append(source_file)
        for index, decl in enumerate(source_file.declarations):
            order += 1
            before_lemmas = set(env.lemmas)
            before_resolve = len(env.hint_resolve)
            before_ctors = len(env.hint_constructors)
            if decl.kind == "lemma" and not check_proofs:
                # Trusted fast path: install the statement only.
                from repro.kernel.parser import parse_statement

                statement = parse_statement(env, decl.statement_text)
                env.add_lemma(decl.name, statement)
            else:
                try:
                    decl.install(env)
                except CorpusError:
                    raise
                except Exception as exc:  # pragma: no cover - authoring aid
                    raise CorpusError(
                        f"{source_file.name}.{decl.name}: {exc}"
                    ) from exc
            for name in set(env.lemmas) - before_lemmas:
                lemma_order[name] = order
            if len(env.hint_resolve) > before_resolve:
                hint_events.append(
                    (order, "resolve", tuple(env.hint_resolve[before_resolve:]))
                )
            if len(env.hint_constructors) > before_ctors:
                hint_events.append(
                    (
                        order,
                        "ctors",
                        tuple(env.hint_constructors[before_ctors:]),
                    )
                )
            if decl.kind == "lemma":
                assert decl.statement_text and decl.proof_text
                theorem = Theorem(
                    name=decl.name,
                    file=source_file.name,
                    category=source_file.category,
                    index=index,
                    statement_text=decl.statement_text,
                    proof_text=decl.proof_text,
                    statement=env.statement_of(decl.name),
                    proof_tokens=count_tokens(decl.proof_text),
                )
                theorems.append(theorem)
                theorem_cutoff[theorem.name] = order

    _check_import_order(files)
    project = Project(
        env=env,
        files=files,
        theorems=theorems,
        lemma_order=lemma_order,
        hint_events=hint_events,
        theorem_cutoff=theorem_cutoff,
        check_proofs=check_proofs,
    )
    for theorem in theorems:
        project._by_name[theorem.name] = theorem
    if use_cache:
        _CACHE[key] = project
    return project
