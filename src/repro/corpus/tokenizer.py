"""Approximate BPE token counting for proof scripts.

The paper bins theorems by the token length of their human proofs
(Figure 1: <16, <32, ..., >512).  We reproduce the measurement with a
deterministic approximation of a GPT-style byte-pair tokenizer:

* every punctuation character is one token;
* words (identifiers/keywords) cost roughly one token per 5
  characters — short tactic keywords are single tokens, long FSCQ
  identifiers like ``tree_names_distinct`` cost several, matching how
  real BPE vocabularies split snake_case identifiers;
* whitespace is free (absorbed into neighbouring tokens).

Only relative binning matters for the reproduction, not the absolute
vocabulary.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["count_tokens", "tokenize", "LENGTH_BINS", "bin_of_length"]

_TOKEN_RE = re.compile(r"[A-Za-z0-9_']+|\n|[^\sA-Za-z0-9_']")
_WORD_CHUNK = 4

# Upper edges of the Figure 1 histogram bins (tokens of human proofs).
LENGTH_BINS = (16, 32, 64, 128, 256, 512)


def tokenize(text: str) -> List[str]:
    """Split ``text`` into approximate BPE tokens."""
    out: List[str] = []
    for piece in _TOKEN_RE.findall(text):
        if len(piece) <= _WORD_CHUNK or not piece[0].isalpha():
            out.append(piece)
            continue
        # Split long identifiers at underscores first, then by length.
        for part in piece.split("_"):
            if not part:
                out.append("_")
                continue
            for i in range(0, len(part), _WORD_CHUNK):
                out.append(part[i : i + _WORD_CHUNK])
    return out


def count_tokens(text: str) -> int:
    """The approximate token length of ``text``."""
    return len(tokenize(text))


def bin_of_length(tokens: int) -> int:
    """Histogram bin index for a proof of ``tokens`` tokens.

    Bin ``i`` covers lengths up to ``LENGTH_BINS[i]``; the final bin
    (index ``len(LENGTH_BINS)``) is ``> 512``.
    """
    for i, edge in enumerate(LENGTH_BINS):
        if tokens <= edge:
            return i
    return len(LENGTH_BINS)
