"""Search-tree nodes.

A node is one proof state reached by a sequence of validated tactics;
its score is the cumulative log-probability of that sequence — the
paper's (and GPT-f's) estimate of proof-completion likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from repro.kernel.goals import ProofState

__all__ = ["Node"]


@dataclass
class Node:
    """One expanded-or-pending point in the search tree."""

    state: ProofState
    key: Hashable  # checker.state_key(): int fingerprint or oracle string
    cum_log_prob: float
    depth: int
    parent: Optional["Node"] = None
    tactic: Optional[str] = None  # tactic that produced this node
    expanded: bool = False

    def tactics_from_root(self) -> List[str]:
        """The tactic sequence from the root to this node."""
        steps: List[str] = []
        node: Optional[Node] = self
        while node is not None and node.tactic is not None:
            steps.append(node.tactic)
            node = node.parent
        steps.reverse()
        return steps
