"""Monte Carlo Tree Search over proof states (paper §5, future work).

The paper's Discussion names MCTS as the natural alternative to
best-first search.  This implementation follows the classic UCT
recipe, adapted to proof search:

* **Selection** — walk from the root by UCT
  (mean value + c·sqrt(ln N / n)), over children already expanded.
* **Expansion** — at a leaf, query the model once (one unit of fuel,
  same accounting as best-first) and attach the valid children.
* **Evaluation** — in lieu of rollouts (a random tactic playout is
  almost always rejected), a leaf is scored by a cheap heuristic:
  1.0 when the proof is complete, otherwise a decreasing function of
  the number of open goals, plus the model's prior (mean candidate
  log-probability).
* **Backpropagation** — the value updates mean statistics up the path.

Shares :class:`SearchConfig`, the checker, the generator protocol, and
the result/transcript types with the best-first engine, so the
ablation bench can swap engines behind one interface.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set

from repro.core.result import SearchResult, SearchStats, Status
from repro.core.search import PromptFn, SearchConfig
from repro.errors import GenerationError
from repro.kernel.goals import ProofState
from repro.kernel.terms import Term
from repro.llm.interface import TacticGenerator
from repro.serapi.checker import ProofChecker, Verdict

__all__ = ["MCTSConfig", "MCTSSearch"]


@dataclass(frozen=True)
class MCTSConfig:
    width: int = 8
    fuel: int = 128
    tactic_timeout: float = 5.0
    exploration: float = 1.2  # UCT constant
    max_depth: int = 64

    @classmethod
    def from_search_config(cls, config: SearchConfig) -> "MCTSConfig":
        return cls(
            width=config.width,
            fuel=config.fuel,
            tactic_timeout=config.tactic_timeout,
        )


@dataclass
class _MNode:
    state: ProofState
    key: Hashable  # checker.state_key(): int fingerprint or oracle string
    depth: int
    parent: Optional["_MNode"] = None
    tactic: Optional[str] = None
    prior: float = 0.0
    children: List["_MNode"] = field(default_factory=list)
    expanded: bool = False
    visits: int = 0
    value_sum: float = 0.0

    def mean_value(self) -> float:
        if self.visits == 0:
            return 0.0
        return self.value_sum / self.visits

    def tactics_from_root(self) -> List[str]:
        steps: List[str] = []
        node: Optional[_MNode] = self
        while node is not None and node.tactic is not None:
            steps.append(node.tactic)
            node = node.parent
        steps.reverse()
        return steps


def _leaf_value(node: _MNode) -> float:
    """Heuristic state evaluation in [0, 1]."""
    if node.state.is_complete():
        return 1.0
    goals = node.state.num_goals()
    # Fewer open goals is better; the prior nudges toward moves the
    # model believed in.
    base = 1.0 / (1.0 + goals)
    prior = math.exp(min(node.prior, 0.0))  # in (0, 1]
    return 0.6 * base + 0.3 * prior


class MCTSSearch:
    """UCT proof search with the same external contract as best-first."""

    def __init__(
        self,
        checker: ProofChecker,
        generator: TacticGenerator,
        config: Optional[MCTSConfig] = None,
    ) -> None:
        if not getattr(generator, "provides_log_probs", False):
            raise GenerationError(
                f"model {generator.name} provides no log-probabilities"
            )
        self.checker = checker
        self.generator = generator
        self.config = config or MCTSConfig()

    # ------------------------------------------------------------------

    def prove(
        self,
        theorem_name: str,
        statement: Term,
        prompt_fn: PromptFn,
    ) -> SearchResult:
        import time

        config = self.config
        stats = SearchStats()
        started = time.monotonic()
        root_state = self.checker.start(statement)
        root = _MNode(
            state=root_state, key=self.checker.state_key(root_state), depth=0
        )
        seen: Set = {root.key}
        stats.nodes_created = 1

        def finish(status: Status, tactics=None) -> SearchResult:
            stats.wall_seconds = time.monotonic() - started
            return SearchResult(
                status=status,
                theorem_name=theorem_name,
                tactics=list(tactics or []),
                stats=stats,
            )

        while stats.queries < config.fuel:
            # Selection.
            node = root
            while node.expanded and node.children:
                node = self._uct_pick(node)
            if node.expanded and not node.children:
                # Exhausted leaf: mark it hopeless and continue unless
                # the whole tree is exhausted.
                self._backpropagate(node, 0.0)
                if root.expanded and self._tree_exhausted(root):
                    return finish(Status.STUCK)
                continue

            # Expansion (one model query = one fuel unit).
            prompt = prompt_fn(node.state, node.tactics_from_root())
            stats.queries += 1
            candidates = self.generator.generate(prompt, config.width)
            node.expanded = True
            stats.nodes_expanded += 1
            for candidate in candidates:
                stats.candidates += 1
                check = self.checker.check(
                    node.state, candidate.tactic, seen_keys=seen
                )
                if check.verdict is Verdict.REJECTED:
                    stats.rejected += 1
                    continue
                if check.verdict is Verdict.DUPLICATE:
                    stats.duplicates += 1
                    continue
                if check.verdict is Verdict.TIMEOUT:
                    stats.timeouts += 1
                    continue
                assert check.state is not None
                child = _MNode(
                    state=check.state,
                    key=self.checker.state_key(check.state),
                    depth=node.depth + 1,
                    parent=node,
                    tactic=candidate.tactic,
                    prior=candidate.log_prob,
                )
                seen.add(child.key)
                node.children.append(child)
                stats.nodes_created += 1
                if check.state.is_complete():
                    return finish(Status.PROVED, child.tactics_from_root())

            # Evaluation + backpropagation.
            if node.children:
                best = max(node.children, key=_leaf_value)
                self._backpropagate(best, _leaf_value(best))
            else:
                self._backpropagate(node, 0.0)

            if self._tree_exhausted(root):
                return finish(Status.STUCK)
        return finish(Status.FUELOUT)

    # ------------------------------------------------------------------

    def _uct_pick(self, node: _MNode) -> _MNode:
        total = max(1, node.visits)
        log_total = math.log(total + 1)

        def uct(child: _MNode) -> float:
            exploit = child.mean_value()
            explore = self.config.exploration * math.sqrt(
                log_total / (child.visits + 1)
            )
            return exploit + explore + 0.05 * child.prior

        return max(node.children, key=uct)

    @staticmethod
    def _backpropagate(node: Optional[_MNode], value: float) -> None:
        while node is not None:
            node.visits += 1
            node.value_sum += value
            node = node.parent

    @staticmethod
    def _tree_exhausted(root: _MNode) -> bool:
        """True when every node is expanded and no frontier remains."""
        stack = [root]
        while stack:
            node = stack.pop()
            if not node.expanded:
                return False
            stack.extend(node.children)
        return True
