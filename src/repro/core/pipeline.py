"""Bounded in-flight generation with in-order commit.

The serial best-first loop alternates *generate* (one blocking model
query) and *validate* (checker calls), so the checker idles during
every generation round-trip and the model idles during every
validation pass.  :class:`GenerationPipeline` overlaps them: the
search keeps up to ``depth`` generation calls in flight and validates
the oldest finished expansion while the younger ones are still being
generated.

Determinism contract (hard): results are **committed in submission
order** — the pipeline is a reorder buffer keyed by the round sequence
number assigned at :meth:`submit`.  Completion order (thread timing,
batch composition) is unobservable: the search validates round *i*'s
candidates before it looks at round *i+1*'s, so the tree — and with it
every outcome record — evolves as a pure function of the selection
sequence.  With ``depth=1`` the pipeline degenerates to the serial
loop exactly: ``submit`` executes the call inline on the caller's
thread (no worker, no queue, errors raise at the call site), which is
what makes ``--pipeline-depth 1`` byte-identical to the classic loop.

Execution backends, chosen per submission source:

* ``submit_fn`` (preferred) — an async handle factory such as
  :meth:`repro.service.batching.BatchingGenerator.submit`; concurrency
  then lives in the batcher's dispatcher thread and co-travelling
  rounds coalesce into one ``generate_batch`` round-trip;
* a private thread pool of ``depth`` workers calling the blocking
  ``generate_fn`` — the fallback when the generator has no async
  surface.  Worker threads touch only prompt strings and candidate
  lists; all kernel/checker work stays on the search thread.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, Sequence

__all__ = ["GenerationHandle", "GenerationPipeline"]


class GenerationHandle:
    """One in-flight generation round: its sequence number + result.

    ``result()`` blocks until the round's candidates are available and
    re-raises the call's exception, if any — in the caller's thread,
    at commit time, so failures surface in deterministic (submission)
    order no matter when they actually happened.
    """

    __slots__ = ("seq", "_value", "_error", "_future")

    def __init__(
        self,
        seq: int,
        value: Optional[Sequence] = None,
        future: Optional["Future"] = None,
    ) -> None:
        self.seq = seq
        self._value = value
        self._error: Optional[BaseException] = None
        self._future = future

    def result(self) -> Sequence:
        if self._future is not None:
            return self._future.result()
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]


class GenerationPipeline:
    """Issues generation calls with at most ``depth`` in flight.

    The *caller* enforces the in-flight bound (it holds the handles);
    the pipeline provides ordered submission and an execution backend.
    ``depth <= 1`` is the degenerate serial mode: no thread is ever
    created and ``submit`` runs the call inline.
    """

    def __init__(
        self,
        generate_fn: Callable[[str, int], Sequence],
        depth: int,
        submit_fn: Optional[Callable[[str, int], object]] = None,
    ) -> None:
        if depth < 1:
            raise ValueError("pipeline depth must be >= 1")
        self.generate_fn = generate_fn
        self.depth = depth
        self.submit_fn = submit_fn if depth > 1 else None
        self._seq = 0
        self._pool: Optional[ThreadPoolExecutor] = None

    def submit(self, prompt: str, k: int) -> GenerationHandle:
        """Start one generation round; returns its ordered handle."""
        seq = self._seq
        self._seq += 1
        if self.depth <= 1:
            # Serial mode: execute inline.  An error raises here, at
            # the same program point as the classic loop's blocking
            # ``generate`` call.
            return GenerationHandle(seq, value=self.generate_fn(prompt, k))
        if self.submit_fn is not None:
            pending = self.submit_fn(prompt, k)
            handle = GenerationHandle(seq)
            handle._future = pending  # duck-typed: has .result()
            return handle
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.depth,
                thread_name_prefix="genpipe",
            )
        return GenerationHandle(
            seq, future=self._pool.submit(self.generate_fn, prompt, k)
        )

    def close(self) -> None:
        """Stop the worker pool (started rounds run to completion)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def __enter__(self) -> "GenerationPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
