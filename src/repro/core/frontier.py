"""The best-first frontier.

A max-priority queue over unexpanded nodes keyed by cumulative tactic
log-probability (ties broken by insertion order for determinism).
Alternative disciplines (DFS/BFS) are provided for the ablation bench
in ``benchmarks/test_ablation_search.py``.

Reservations (virtual loss)
---------------------------

The pipelined search (:mod:`repro.core.pipeline`) selects up to ``k``
nodes per round before any of their expansions has returned.  It does
so through :meth:`Frontier.reserve`: a reserved node leaves the queue
entirely — the virtual-loss limit case, an infinite temporary penalty
— so the next ``reserve`` call picks the best *remaining* node
(typically a sibling) instead of re-selecting the same one.  Because
this tree search never revisits a node, full removal is exactly
equivalent to the MCTS virtual-loss trick of down-weighting an
in-flight selection.

A reservation ends one of two ways:

* :meth:`Frontier.commit` — the node was expanded; it never returns
  to the queue (mirrors the serial loop, where ``pop`` is final);
* :meth:`Frontier.release` — the search is exiting with the node
  still unexpanded (early proof, deadline expiry); the node re-enters
  the queue *at its original position* — same priority, same
  insertion-order tie-break — so the frontier remains a faithful
  picture of the unexpanded tree for resume/diagnostics.

Callers that release several reservations restore exact order by
releasing in reverse reservation order (see
``BestFirstSearch._pipelined_loop``).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.node import Node

__all__ = ["Frontier", "BestFirstFrontier", "DepthFirstFrontier", "BreadthFirstFrontier", "make_frontier"]


class Frontier:
    """Interface: push nodes, pop (or reserve) the next node to expand."""

    def push(self, node: Node) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def pop(self) -> Optional[Node]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- reservations (defaults suit disciplines without extra state) --

    def reserve(self) -> Optional[Node]:
        """Remove and return the next node, remembering how to undo it."""
        return self.pop()

    def commit(self, node: Node) -> None:
        """Finalize a reservation: the node was expanded."""

    def release(self, node: Node) -> None:
        """Undo a reservation: re-queue the node at its original spot.

        Subclasses guarantee exact restoration when callers release in
        reverse reservation order.
        """
        self.push(node)


class BestFirstFrontier(Frontier):
    """Highest cumulative log-probability first (the paper's choice)."""

    def __init__(self) -> None:
        self._heap: List = []
        self._counter = 0
        # Reserved node -> its original heap entry (score, tie counter,
        # node), so release() restores priority AND tie order.
        self._reserved: Dict[int, Tuple[float, int, Node]] = {}

    def push(self, node: Node) -> None:
        heapq.heappush(self._heap, (-node.cum_log_prob, self._counter, node))
        self._counter += 1

    def pop(self) -> Optional[Node]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def reserve(self) -> Optional[Node]:
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        self._reserved[id(entry[2])] = entry
        return entry[2]

    def commit(self, node: Node) -> None:
        self._reserved.pop(id(node), None)

    def release(self, node: Node) -> None:
        entry = self._reserved.pop(id(node), None)
        if entry is None:  # released without reserve(): plain push
            self.push(node)
            return
        heapq.heappush(self._heap, entry)

    def __len__(self) -> int:
        return len(self._heap)


class DepthFirstFrontier(Frontier):
    """LIFO stack (trial-and-error linear search, Rango-style)."""

    def __init__(self) -> None:
        self._stack: List[Node] = []

    def push(self, node: Node) -> None:
        self._stack.append(node)

    def pop(self) -> Optional[Node]:
        return self._stack.pop() if self._stack else None

    # reserve() pops from the tail; releasing in reverse reservation
    # order re-appends the earliest reservation last, restoring the
    # exact stack.
    def __len__(self) -> int:
        return len(self._stack)


class BreadthFirstFrontier(Frontier):
    """FIFO queue."""

    def __init__(self) -> None:
        # deque: list.pop(0) is O(n) per pop — a wide search pays a
        # quadratic shuffle; popleft() is O(1).
        self._queue: Deque[Node] = deque()

    def push(self, node: Node) -> None:
        self._queue.append(node)

    def pop(self) -> Optional[Node]:
        return self._queue.popleft() if self._queue else None

    def release(self, node: Node) -> None:
        # Reservations came off the head; releasing in reverse
        # reservation order re-builds the original head sequence.
        self._queue.appendleft(node)

    def __len__(self) -> int:
        return len(self._queue)


def make_frontier(kind: str) -> Frontier:
    if kind == "best-first":
        return BestFirstFrontier()
    if kind == "depth-first":
        return DepthFirstFrontier()
    if kind == "breadth-first":
        return BreadthFirstFrontier()
    raise ValueError(f"unknown frontier kind: {kind}")
