"""The best-first frontier.

A max-priority queue over unexpanded nodes keyed by cumulative tactic
log-probability (ties broken by insertion order for determinism).
Alternative disciplines (DFS/BFS) are provided for the ablation bench
in ``benchmarks/test_ablation_search.py``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.core.node import Node

__all__ = ["Frontier", "BestFirstFrontier", "DepthFirstFrontier", "BreadthFirstFrontier", "make_frontier"]


class Frontier:
    """Interface: push nodes, pop the next node to expand."""

    def push(self, node: Node) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def pop(self) -> Optional[Node]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError


class BestFirstFrontier(Frontier):
    """Highest cumulative log-probability first (the paper's choice)."""

    def __init__(self) -> None:
        self._heap: List = []
        self._counter = 0

    def push(self, node: Node) -> None:
        heapq.heappush(self._heap, (-node.cum_log_prob, self._counter, node))
        self._counter += 1

    def pop(self) -> Optional[Node]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class DepthFirstFrontier(Frontier):
    """LIFO stack (trial-and-error linear search, Rango-style)."""

    def __init__(self) -> None:
        self._stack: List[Node] = []

    def push(self, node: Node) -> None:
        self._stack.append(node)

    def pop(self) -> Optional[Node]:
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class BreadthFirstFrontier(Frontier):
    """FIFO queue."""

    def __init__(self) -> None:
        self._queue: List[Node] = []

    def push(self, node: Node) -> None:
        self._queue.append(node)

    def pop(self) -> Optional[Node]:
        return self._queue.pop(0) if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


def make_frontier(kind: str) -> Frontier:
    if kind == "best-first":
        return BestFirstFrontier()
    if kind == "depth-first":
        return DepthFirstFrontier()
    if kind == "breadth-first":
        return BreadthFirstFrontier()
    raise ValueError(f"unknown frontier kind: {kind}")
