"""Best-first proof search (the paper's §3).

The loop alternates the paper's two steps:

* **Selection** — pop the unexpanded node with the highest cumulative
  log-probability of its tactic prefix.
* **Expansion** — query the model once (one unit of fuel) for up to
  ``width`` candidate tactics, validate each against the checker, and
  append the valid ones as children.

A tactic is invalid if it is rejected by the checker, recreates a
proof state already in the tree, or exceeds the tactic timeout.
Search succeeds as soon as any child state is complete; it fails
*stuck* when the frontier empties and *fuelout* when the query limit
(paper: 128) is exhausted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Set

from repro.core.frontier import make_frontier
from repro.core.node import Node
from repro.core.result import (
    FailureContext,
    SearchResult,
    SearchStats,
    Status,
)
from repro.core.transcript import CandidateEvent, ExpansionEvent, Transcript
from repro.deadline import Deadline
from repro.errors import GenerationError
from repro.kernel.goals import ProofState
from repro.kernel.terms import Term
from repro.llm.interface import TacticGenerator
from repro.obs.trace import NULL_TRACER
from repro.serapi.checker import ProofChecker, Verdict

__all__ = ["SearchConfig", "BestFirstSearch"]

PromptFn = Callable[[ProofState, Sequence[str]], str]


@dataclass(frozen=True)
class SearchConfig:
    """Hyperparameters (defaults follow the paper §4)."""

    width: int = 8  # candidates per query (Gemini's max outputs)
    fuel: int = 128  # model-query limit (as in GPT-f)
    tactic_timeout: float = 5.0  # seconds per tactic
    frontier: str = "best-first"
    dedup_states: bool = True  # ablation: duplicate-state pruning
    max_depth: int = 64
    # Per-theorem wall-clock budget: the search yields a clean TIMEOUT
    # outcome when it expires (checked between expansions), instead of
    # running unbounded.  None = no deadline (the paper's setting).
    theorem_deadline: Optional[float] = None


class BestFirstSearch:
    """One searcher per (checker, generator, config) triple."""

    def __init__(
        self,
        checker: ProofChecker,
        generator: TacticGenerator,
        config: Optional[SearchConfig] = None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        generate_fn: Optional[
            Callable[[str, int], Sequence["object"]]
        ] = None,
        tracer=None,
    ) -> None:
        """``metrics`` is an optional duck-typed sink (an object with
        ``add_time(stage, seconds)``, e.g.
        :class:`repro.eval.instrumentation.Metrics`) that receives
        prompt-build and generation timings.  ``clock`` feeds the
        wall-clock stats and the per-theorem deadline (injectable for
        timeout tests).  ``generate_fn`` overrides how an expansion
        queries the model (default: ``generator.generate``); the
        service layer injects a handle that routes through its shared
        micro-batcher, with identical semantics — the handle must obey
        the determinism contract of
        :func:`repro.llm.interface.generate_batch`.  ``tracer`` is an
        optional :class:`repro.obs.trace.Tracer` recording selection /
        expansion spans; the default no-op tracer costs nothing and
        leaves outcomes untouched."""
        if not getattr(generator, "provides_log_probs", False):
            raise GenerationError(
                f"model {generator.name} provides no log-probabilities; "
                "best-first search requires them (paper §4.3)"
            )
        self.checker = checker
        self.generator = generator
        self.config = config or SearchConfig()
        self.metrics = metrics
        self.clock = clock
        self.generate = generate_fn or generator.generate
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def prove(
        self,
        theorem_name: str,
        statement: Term,
        prompt_fn: PromptFn,
        transcript: Optional[Transcript] = None,
        initial_tactics: Sequence[str] = (),
    ) -> SearchResult:
        """Search for a proof of ``statement``.

        ``initial_tactics`` seeds the tree with a validated tactic
        prefix (the repair engine resumes from a failed search's
        surviving prefix this way): each tactic is replayed through
        the checker from the root, and every surviving prefix node
        joins the frontier — deeper nodes with a slightly better
        score, so the search focuses at the frontier but can still
        back off to shallower alternatives.  A prefix tactic the
        checker now refuses simply truncates the prefix there.
        """
        config = self.config
        stats = SearchStats()
        started = self.clock()
        deadline = (
            Deadline.after(config.theorem_deadline, clock=self.clock)
            if config.theorem_deadline is not None
            else None
        )

        root_state = self.checker.start(statement)
        root = Node(
            state=root_state,
            key=self.checker.state_key(root_state),
            cum_log_prob=0.0,
            depth=0,
        )
        frontier = make_frontier(config.frontier)
        frontier.push(root)
        seen: Set = {root.key}
        stats.nodes_created = 1

        # Replay the seed prefix: one chain of nodes below the root.
        # Prefix node at depth d scores -(n-d)*1e-6, so the deepest
        # (the failure frontier being repaired) is selected first.
        node = root
        prefix_len = len(initial_tactics)
        for offset, tactic in enumerate(initial_tactics):
            check = self.checker.check(
                node.state,
                tactic,
                seen_keys=seen if config.dedup_states else None,
            )
            if check.verdict is not Verdict.VALID or check.state is None:
                break
            child = Node(
                state=check.state,
                key=self.checker.state_key(check.state),
                cum_log_prob=-(prefix_len - offset - 1) * 1e-6,
                depth=node.depth + 1,
                parent=node,
                tactic=tactic,
            )
            seen.add(child.key)
            stats.nodes_created += 1
            if check.state.is_complete():
                # The prefix already closes the proof (possible when a
                # timed-out search is resumed with a longer budget).
                node = child
                break
            frontier.push(child)
            node = child

        tracer = self.tracer

        # Failure frontier: the deepest (then best-scoring) node whose
        # expansion produced a rejection/timeout, with the top-ranked
        # offending candidate — what a repair round feeds back.
        best_fail: Optional[FailureContext] = None
        best_fail_rank = (-1, 0.0)

        def finish(status: Status, tactics=None) -> SearchResult:
            stats.wall_seconds = self.clock() - started
            if tracer.enabled:
                search_span.set(
                    status=status.value,
                    queries=stats.queries,
                    fuel=config.fuel,
                    nodes_created=stats.nodes_created,
                    nodes_expanded=stats.nodes_expanded,
                    rejected=stats.rejected,
                    duplicates=stats.duplicates,
                    timeouts=stats.timeouts,
                )
            return SearchResult(
                status=status,
                theorem_name=theorem_name,
                tactics=list(tactics or []),
                stats=stats,
                failure=None if status is Status.PROVED else best_fail,
            )

        if node is not root and node.state.is_complete():
            with tracer.span("search", theorem=theorem_name) as search_span:
                return finish(Status.PROVED, node.tactics_from_root())

        metrics = self.metrics
        with tracer.span("search", theorem=theorem_name) as search_span:
            while True:
                # The per-theorem deadline is polled once per expansion
                # — individual tactics are already bounded by the 5 s
                # tactic deadline, so one check per model query caps
                # the overrun at a single expansion's work.
                if deadline is not None and deadline.expired():
                    return finish(Status.TIMEOUT)
                # Fuel is checked *before* popping: on FUELOUT the next
                # node stays in the frontier, so the frontier is a
                # faithful picture of the unexpanded tree for
                # resume/diagnostics.
                if stats.queries >= config.fuel:
                    return finish(Status.FUELOUT)
                with tracer.span("select") as select_span:
                    node = frontier.pop()
                    if tracer.enabled and node is not None:
                        select_span.set(
                            depth=node.depth,
                            score=round(node.cum_log_prob, 6),
                        )
                if node is None:
                    return finish(Status.STUCK)

                # Expansion: one model query.
                with tracer.span("expand") as expand_span:
                    if tracer.enabled:
                        # Whitespace-collapsed so the one-line preview
                        # renders cleanly in the trace tree.
                        goal = " ".join(node.state.render().split())
                        expand_span.set(
                            query=stats.queries + 1,
                            fuel=config.fuel,
                            depth=node.depth,
                            score=round(node.cum_log_prob, 6),
                            goal=goal[:160],
                        )
                    t0 = self.clock()
                    with tracer.span("prompt_build"):
                        prompt = prompt_fn(
                            node.state, node.tactics_from_root()
                        )
                    if metrics is not None:
                        metrics.add_time("prompt_build", self.clock() - t0)
                    stats.queries += 1
                    t0 = self.clock()
                    with tracer.span("generation") as generation_span:
                        candidates = self.generate(prompt, config.width)
                        if tracer.enabled:
                            generation_span.set(candidates=len(candidates))
                    if metrics is not None:
                        metrics.add_time("generation", self.clock() - t0)
                    node.expanded = True
                    stats.nodes_expanded += 1

                    event = None
                    if transcript is not None:
                        event = ExpansionEvent(
                            node_depth=node.depth,
                            node_score=node.cum_log_prob,
                            goal_preview=node.state.render()[:200],
                        )

                    node_fail: Optional[tuple] = None
                    for candidate in candidates:
                        stats.candidates += 1
                        check = self.checker.check(
                            node.state,
                            candidate.tactic,
                            seen_keys=seen if config.dedup_states else None,
                        )
                        if event is not None:
                            event.candidates.append(
                                CandidateEvent(
                                    tactic=candidate.tactic,
                                    log_prob=candidate.log_prob,
                                    verdict=check.verdict.value,
                                    message=check.message,
                                )
                            )
                        if check.verdict is Verdict.REJECTED:
                            stats.rejected += 1
                            if node_fail is None:
                                node_fail = (
                                    candidate.tactic,
                                    check.message,
                                    check.verdict.value,
                                )
                            continue
                        if check.verdict is Verdict.DUPLICATE:
                            stats.duplicates += 1
                            continue
                        if check.verdict is Verdict.TIMEOUT:
                            stats.timeouts += 1
                            if node_fail is None:
                                node_fail = (
                                    candidate.tactic,
                                    check.message,
                                    check.verdict.value,
                                )
                            continue
                        assert check.state is not None
                        child = Node(
                            state=check.state,
                            key=self.checker.state_key(check.state),
                            cum_log_prob=node.cum_log_prob
                            + candidate.log_prob,
                            depth=node.depth + 1,
                            parent=node,
                            tactic=candidate.tactic,
                        )
                        seen.add(child.key)
                        stats.nodes_created += 1
                        if check.state.is_complete():
                            if transcript is not None and event is not None:
                                transcript.record(event)
                            return finish(
                                Status.PROVED, child.tactics_from_root()
                            )
                        if child.depth < config.max_depth:
                            frontier.push(child)

                    if node_fail is not None:
                        rank = (node.depth, node.cum_log_prob)
                        if rank > best_fail_rank:
                            best_fail_rank = rank
                            tactic, message, verdict = node_fail
                            best_fail = FailureContext(
                                prefix=tuple(node.tactics_from_root()),
                                goal=node.state.render()[:1000],
                                depth=node.depth,
                                failed_tactic=tactic,
                                message=message,
                                verdict=verdict,
                            )

                if transcript is not None and event is not None:
                    transcript.record(event)
