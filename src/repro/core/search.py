"""Best-first proof search (the paper's §3).

The loop alternates the paper's two steps:

* **Selection** — pop the unexpanded node with the highest cumulative
  log-probability of its tactic prefix.
* **Expansion** — query the model once (one unit of fuel) for up to
  ``width`` candidate tactics, validate each against the checker, and
  append the valid ones as children.

A tactic is invalid if it is rejected by the checker, recreates a
proof state already in the tree, or exceeds the tactic timeout.
Search succeeds as soon as any child state is complete; it fails
*stuck* when the frontier empties and *fuelout* when the query limit
(paper: 128) is exhausted.

Pipelined mode (``SearchConfig.pipeline_depth >= 1``) overlaps the two
steps: up to ``pipeline_depth`` frontier nodes are reserved per round
(virtual-loss selection — a reserved node leaves the queue, so the
next reservation picks a sibling) and their generation calls run
concurrently through :class:`repro.core.pipeline.GenerationPipeline`,
while the checker validates the oldest finished round.  Results are
committed strictly in reservation order (a reorder buffer keyed by
round sequence number), so the tree — and every outcome record — is a
pure function of the selection sequence: ``pipeline_depth=1`` is
byte-identical to the classic serial loop, and any depth is
run-to-run deterministic.  At depth > 1 selection is speculative
(round *i+1* is chosen before round *i*'s children exist), so the
*exploration order* may differ from serial — wall-clock drops,
coverage is pinned by ``tests/eval/test_pipeline_determinism.py``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Sequence, Set, Tuple

from repro.core.frontier import make_frontier
from repro.core.node import Node
from repro.core.pipeline import GenerationHandle, GenerationPipeline
from repro.core.result import (
    FailureContext,
    SearchResult,
    SearchStats,
    Status,
)
from repro.core.transcript import CandidateEvent, ExpansionEvent, Transcript
from repro.deadline import Deadline
from repro.errors import GenerationError
from repro.kernel.goals import ProofState
from repro.kernel.terms import Term
from repro.llm.interface import TacticGenerator
from repro.obs.trace import NULL_TRACER
from repro.serapi.checker import ProofChecker, Verdict

__all__ = ["SearchConfig", "BestFirstSearch", "NO_CANDIDATES_TACTIC"]

PromptFn = Callable[[ProofState, Sequence[str]], str]

#: Sentinel ``FailureContext.failed_tactic`` recorded when an expansion
#: produced no usable candidates at all (the model returned an empty
#: list, or only blank tactics).  Without it a search that starves this
#: way ends STUCK with ``failure=None`` and the repair engine — which
#: needs a failure frontier to resume from — would skip a theorem that
#: is in fact repair-eligible.
NO_CANDIDATES_TACTIC = "<no candidates>"


@dataclass(frozen=True)
class SearchConfig:
    """Hyperparameters (defaults follow the paper §4)."""

    width: int = 8  # candidates per query (Gemini's max outputs)
    fuel: int = 128  # model-query limit (as in GPT-f)
    tactic_timeout: float = 5.0  # seconds per tactic
    frontier: str = "best-first"
    dedup_states: bool = True  # ablation: duplicate-state pruning
    max_depth: int = 64
    # Per-theorem wall-clock budget: the search yields a clean TIMEOUT
    # outcome when it expires (checked between expansions), instead of
    # running unbounded.  None = no deadline (the paper's setting).
    theorem_deadline: Optional[float] = None
    # Intra-search pipelining: generation calls kept in flight at once.
    # 0 (default) runs the classic serial loop; 1 runs the pipelined
    # executor with a single slot (byte-identical records to serial —
    # the validation mode); >= 2 overlaps generation and checking.
    # Deliberately NOT part of TheoremTask.cache_key() — like `trace`,
    # it is an execution knob, not a sweep cell coordinate (see
    # repro.eval.config.ExperimentConfig.pipeline_depth).
    pipeline_depth: int = 0


class BestFirstSearch:
    """One searcher per (checker, generator, config) triple."""

    def __init__(
        self,
        checker: ProofChecker,
        generator: TacticGenerator,
        config: Optional[SearchConfig] = None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        generate_fn: Optional[
            Callable[[str, int], Sequence["object"]]
        ] = None,
        tracer=None,
        submit_fn: Optional[Callable[[str, int], object]] = None,
    ) -> None:
        """``metrics`` is an optional duck-typed sink (an object with
        ``add_time(stage, seconds)``, e.g.
        :class:`repro.eval.instrumentation.Metrics`) that receives
        prompt-build and generation timings.  ``clock`` feeds the
        wall-clock stats and the per-theorem deadline (injectable for
        timeout tests).  ``generate_fn`` overrides how an expansion
        queries the model (default: ``generator.generate``); the
        service layer injects a handle that routes through its shared
        micro-batcher, with identical semantics — the handle must obey
        the determinism contract of
        :func:`repro.llm.interface.generate_batch`.  ``submit_fn`` is
        the optional *asynchronous* counterpart used by the pipelined
        mode: ``submit_fn(prompt, k)`` starts a generation call and
        returns a handle with ``result()`` (e.g.
        :meth:`repro.service.batching.BatchingGenerator.submit`); when
        absent, the generator's own ``submit`` method is used if it has
        one and ``generate_fn`` was not overridden, else the pipeline
        falls back to a small thread pool over ``generate_fn``.
        ``tracer`` is an optional :class:`repro.obs.trace.Tracer`
        recording selection / expansion spans; the default no-op
        tracer costs nothing and leaves outcomes untouched."""
        if not getattr(generator, "provides_log_probs", False):
            raise GenerationError(
                f"model {generator.name} provides no log-probabilities; "
                "best-first search requires them (paper §4.3)"
            )
        self.checker = checker
        self.generator = generator
        self.config = config or SearchConfig()
        self.metrics = metrics
        self.clock = clock
        self.generate = generate_fn or generator.generate
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.submit_fn = submit_fn
        self._default_generate = generate_fn is None

    def _resolve_submit_fn(self) -> Optional[Callable[[str, int], object]]:
        """The async submission route for the pipelined mode, if any."""
        if self.submit_fn is not None:
            return self.submit_fn
        if self._default_generate:
            return getattr(self.generator, "submit", None)
        return None

    def prove(
        self,
        theorem_name: str,
        statement: Term,
        prompt_fn: PromptFn,
        transcript: Optional[Transcript] = None,
        initial_tactics: Sequence[str] = (),
    ) -> SearchResult:
        """Search for a proof of ``statement``.

        ``initial_tactics`` seeds the tree with a validated tactic
        prefix (the repair engine resumes from a failed search's
        surviving prefix this way): each tactic is replayed through
        the checker from the root, and every surviving prefix node
        joins the frontier — deeper nodes with a strictly better
        score, so the search expands the failure frontier first but
        can still back off to shallower alternatives (including the
        root).  A prefix tactic the checker now refuses simply
        truncates the prefix there.
        """
        config = self.config
        stats = SearchStats()
        started = self.clock()
        deadline = (
            Deadline.after(config.theorem_deadline, clock=self.clock)
            if config.theorem_deadline is not None
            else None
        )

        root_state = self.checker.start(statement)
        root = Node(
            state=root_state,
            key=self.checker.state_key(root_state),
            cum_log_prob=0.0,
            depth=0,
        )
        frontier = make_frontier(config.frontier)
        frontier.push(root)
        seen: Set = {root.key}
        stats.nodes_created = 1

        # Replay the seed prefix: one chain of nodes below the root.
        # Prefix node at depth d scores +d*1e-6 — strictly above the
        # root's 0.0 and increasing with depth — so the deepest node
        # (the failure frontier being repaired) is selected first.
        # (The old -(n-d)*1e-6 scoring gave the deepest node exactly
        # 0.0, tying the root; the insertion-order tie-break then made
        # every repair round re-expand the root before the frontier it
        # was supposed to resume from.)
        node = root
        for offset, tactic in enumerate(initial_tactics):
            check = self.checker.check(
                node.state,
                tactic,
                seen_keys=seen if config.dedup_states else None,
            )
            if check.verdict is not Verdict.VALID or check.state is None:
                break
            child = Node(
                state=check.state,
                key=self.checker.state_key(check.state),
                cum_log_prob=(offset + 1) * 1e-6,
                depth=node.depth + 1,
                parent=node,
                tactic=tactic,
            )
            seen.add(child.key)
            stats.nodes_created += 1
            if check.state.is_complete():
                # The prefix already closes the proof (possible when a
                # timed-out search is resumed with a longer budget).
                node = child
                break
            frontier.push(child)
            node = child

        tracer = self.tracer

        # Failure frontier: the deepest (then best-scoring) node whose
        # expansion produced a rejection/timeout, with the top-ranked
        # offending candidate — what a repair round feeds back.
        best_fail: Optional[FailureContext] = None
        best_fail_rank = (-1, 0.0)

        def finish(status: Status, tactics=None) -> SearchResult:
            stats.wall_seconds = self.clock() - started
            if tracer.enabled:
                search_span.set(
                    status=status.value,
                    queries=stats.queries,
                    fuel=config.fuel,
                    nodes_created=stats.nodes_created,
                    nodes_expanded=stats.nodes_expanded,
                    rejected=stats.rejected,
                    duplicates=stats.duplicates,
                    timeouts=stats.timeouts,
                )
            return SearchResult(
                status=status,
                theorem_name=theorem_name,
                tactics=list(tactics or []),
                stats=stats,
                failure=None if status is Status.PROVED else best_fail,
            )

        def process_candidates(node, candidates, event) -> Optional[Node]:
            """Validate one expansion's candidates in rank order.

            Pushes valid children, maintains the failure frontier, and
            returns the proof-completing child if one appears.  Shared
            verbatim by the serial and pipelined loops — the checker
            call sequence is the determinism-sensitive part.
            """
            nonlocal best_fail, best_fail_rank
            node_fail: Optional[Tuple[str, str, str]] = None
            for candidate in candidates:
                stats.candidates += 1
                check = self.checker.check(
                    node.state,
                    candidate.tactic,
                    seen_keys=seen if config.dedup_states else None,
                )
                if event is not None:
                    event.candidates.append(
                        CandidateEvent(
                            tactic=candidate.tactic,
                            log_prob=candidate.log_prob,
                            verdict=check.verdict.value,
                            message=check.message,
                        )
                    )
                if check.verdict is Verdict.REJECTED:
                    stats.rejected += 1
                    if node_fail is None:
                        node_fail = (
                            candidate.tactic,
                            check.message,
                            check.verdict.value,
                        )
                    continue
                if check.verdict is Verdict.DUPLICATE:
                    stats.duplicates += 1
                    continue
                if check.verdict is Verdict.TIMEOUT:
                    stats.timeouts += 1
                    if node_fail is None:
                        node_fail = (
                            candidate.tactic,
                            check.message,
                            check.verdict.value,
                        )
                    continue
                assert check.state is not None
                child = Node(
                    state=check.state,
                    key=self.checker.state_key(check.state),
                    cum_log_prob=node.cum_log_prob + candidate.log_prob,
                    depth=node.depth + 1,
                    parent=node,
                    tactic=candidate.tactic,
                )
                seen.add(child.key)
                stats.nodes_created += 1
                if check.state.is_complete():
                    return child
                if child.depth < config.max_depth:
                    frontier.push(child)

            if (node_fail is None or not node_fail[0].strip()) and all(
                not candidate.tactic.strip() for candidate in candidates
            ):
                # Zero-candidate expansion (empty list, or only blank
                # tactics — e.g. repair feedback suppressed everything
                # the model had): without a recorded failure this node
                # would leave the search STUCK with failure=None and
                # therefore repair-ineligible.  Record a sentinel so
                # the failure frontier survives.
                node_fail = (
                    NO_CANDIDATES_TACTIC,
                    "model returned no usable candidates",
                    Verdict.REJECTED.value,
                )

            if node_fail is not None:
                rank = (node.depth, node.cum_log_prob)
                if rank > best_fail_rank:
                    best_fail_rank = rank
                    tactic, message, verdict = node_fail
                    best_fail = FailureContext(
                        prefix=tuple(node.tactics_from_root()),
                        goal=node.state.render()[:1000],
                        depth=node.depth,
                        failed_tactic=tactic,
                        message=message,
                        verdict=verdict,
                    )
            return None

        if node is not root and node.state.is_complete():
            with tracer.span("search", theorem=theorem_name) as search_span:
                return finish(Status.PROVED, node.tactics_from_root())

        metrics = self.metrics
        with tracer.span("search", theorem=theorem_name) as search_span:
            if config.pipeline_depth >= 1:
                return self._pipelined_loop(
                    config,
                    stats,
                    deadline,
                    frontier,
                    prompt_fn,
                    transcript,
                    finish,
                    process_candidates,
                )
            while True:
                # The per-theorem deadline is polled once per expansion
                # — individual tactics are already bounded by the 5 s
                # tactic deadline, so one check per model query caps
                # the overrun at a single expansion's work.
                if deadline is not None and deadline.expired():
                    return finish(Status.TIMEOUT)
                # Fuel is checked *before* popping: on FUELOUT the next
                # node stays in the frontier, so the frontier is a
                # faithful picture of the unexpanded tree for
                # resume/diagnostics.
                if stats.queries >= config.fuel:
                    return finish(Status.FUELOUT)
                with tracer.span("select") as select_span:
                    node = frontier.pop()
                    if tracer.enabled and node is not None:
                        select_span.set(
                            depth=node.depth,
                            score=round(node.cum_log_prob, 6),
                        )
                if node is None:
                    return finish(Status.STUCK)

                # Expansion: one model query.
                with tracer.span("expand") as expand_span:
                    if tracer.enabled:
                        # Whitespace-collapsed so the one-line preview
                        # renders cleanly in the trace tree.
                        goal = " ".join(node.state.render().split())
                        expand_span.set(
                            query=stats.queries + 1,
                            fuel=config.fuel,
                            depth=node.depth,
                            score=round(node.cum_log_prob, 6),
                            goal=goal[:160],
                        )
                    t0 = self.clock()
                    with tracer.span("prompt_build"):
                        prompt = prompt_fn(
                            node.state, node.tactics_from_root()
                        )
                    if metrics is not None:
                        metrics.add_time("prompt_build", self.clock() - t0)
                    stats.queries += 1
                    t0 = self.clock()
                    with tracer.span("generation") as generation_span:
                        candidates = self.generate(prompt, config.width)
                        if tracer.enabled:
                            generation_span.set(candidates=len(candidates))
                    if metrics is not None:
                        metrics.add_time("generation", self.clock() - t0)
                    node.expanded = True
                    stats.nodes_expanded += 1

                    event = None
                    if transcript is not None:
                        event = ExpansionEvent(
                            node_depth=node.depth,
                            node_score=node.cum_log_prob,
                            goal_preview=node.state.render()[:200],
                        )

                    proved = process_candidates(node, candidates, event)
                    if proved is not None:
                        if transcript is not None and event is not None:
                            transcript.record(event)
                        return finish(
                            Status.PROVED, proved.tactics_from_root()
                        )

                if transcript is not None and event is not None:
                    transcript.record(event)

    def _pipelined_loop(
        self,
        config: SearchConfig,
        stats: SearchStats,
        deadline: Optional[Deadline],
        frontier,
        prompt_fn: PromptFn,
        transcript: Optional[Transcript],
        finish,
        process_candidates,
    ) -> SearchResult:
        """The pipelined select/expand loop (``pipeline_depth >= 1``).

        Fill phase: reserve frontier nodes and start their generation
        calls until ``pipeline_depth`` rounds are in flight (or fuel /
        frontier runs out).  Commit phase: take the *oldest* round,
        wait for its candidates, and validate them while the younger
        rounds keep generating.  The in-order commit makes the loop a
        deterministic function of the selection sequence; at depth 1
        the fill-one/commit-one cadence replays the serial loop's
        event order exactly.

        Exits: PROVED and TIMEOUT release any still-reserved nodes
        back to the frontier (in reverse reservation order, restoring
        it exactly); FUELOUT and STUCK only occur with an empty
        pipeline, after every started round was committed — fuel
        already spent on a query is always followed by its validation,
        except when the search ends first.
        """
        tracer = self.tracer
        metrics = self.metrics
        pipeline = GenerationPipeline(
            self.generate,
            config.pipeline_depth,
            submit_fn=self._resolve_submit_fn(),
        )
        inflight: Deque[Tuple[Node, GenerationHandle]] = deque()

        def release_inflight() -> None:
            # Reverse order restores the exact frontier (see
            # repro.core.frontier docstring).
            for pending_node, _handle in reversed(inflight):
                frontier.release(pending_node)
            inflight.clear()

        try:
            while True:
                # Fill: start rounds until the pipeline is full.
                while len(inflight) < config.pipeline_depth:
                    # Deadline first, then fuel — the serial loop's
                    # status priority, polled once per started round.
                    if deadline is not None and deadline.expired():
                        release_inflight()
                        return finish(Status.TIMEOUT)
                    if stats.queries >= config.fuel:
                        break
                    with tracer.span("select") as select_span:
                        node = frontier.reserve()
                        if tracer.enabled and node is not None:
                            select_span.set(
                                depth=node.depth,
                                score=round(node.cum_log_prob, 6),
                                round=stats.queries,
                            )
                    if node is None:
                        break
                    t0 = self.clock()
                    with tracer.span("prompt_build"):
                        prompt = prompt_fn(
                            node.state, node.tactics_from_root()
                        )
                    if metrics is not None:
                        metrics.add_time("prompt_build", self.clock() - t0)
                    stats.queries += 1
                    inflight.append(
                        (node, pipeline.submit(prompt, config.width))
                    )

                if not inflight:
                    # Nothing running and nothing startable: terminal.
                    if stats.queries >= config.fuel:
                        return finish(Status.FUELOUT)
                    return finish(Status.STUCK)

                # Commit: validate the oldest round, in flight or not.
                node, handle = inflight.popleft()
                with tracer.span("expand") as expand_span:
                    if tracer.enabled:
                        goal = " ".join(node.state.render().split())
                        expand_span.set(
                            query=handle.seq + 1,
                            fuel=config.fuel,
                            depth=node.depth,
                            score=round(node.cum_log_prob, 6),
                            goal=goal[:160],
                            round=handle.seq,
                            inflight=len(inflight) + 1,
                        )
                    t0 = self.clock()
                    with tracer.span("generation") as generation_span:
                        # Blocks only until *this* round is done; the
                        # younger rounds keep generating meanwhile.
                        candidates = handle.result()
                        if tracer.enabled:
                            generation_span.set(candidates=len(candidates))
                    if metrics is not None:
                        metrics.add_time("generation", self.clock() - t0)
                    frontier.commit(node)
                    node.expanded = True
                    stats.nodes_expanded += 1

                    event = None
                    if transcript is not None:
                        event = ExpansionEvent(
                            node_depth=node.depth,
                            node_score=node.cum_log_prob,
                            goal_preview=node.state.render()[:200],
                        )

                    proved = process_candidates(node, candidates, event)
                    if proved is not None:
                        if transcript is not None and event is not None:
                            transcript.record(event)
                        release_inflight()
                        return finish(
                            Status.PROVED, proved.tactics_from_root()
                        )

                if transcript is not None and event is not None:
                    transcript.record(event)
        finally:
            pipeline.close()
