"""Per-search event log, for failure analysis and debugging.

Records every expansion: which node was selected, what the model
proposed, and each candidate's verdict.  The §4.3-style analyses
(stuck-vs-fuelout, invalid-tactic breakdowns) read these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CandidateEvent", "ExpansionEvent", "Transcript"]


@dataclass
class CandidateEvent:
    tactic: str
    log_prob: float
    verdict: str
    message: str = ""


@dataclass
class ExpansionEvent:
    node_depth: int
    node_score: float
    goal_preview: str
    candidates: List[CandidateEvent] = field(default_factory=list)


@dataclass
class Transcript:
    theorem_name: str
    model_name: str
    events: List[ExpansionEvent] = field(default_factory=list)

    def record(self, event: ExpansionEvent) -> None:
        self.events.append(event)

    def summary(self) -> str:
        lines = [f"search transcript: {self.theorem_name} [{self.model_name}]"]
        for i, event in enumerate(self.events):
            lines.append(
                f"  expansion {i}: depth={event.node_depth} "
                f"score={event.node_score:.2f}"
            )
            for cand in event.candidates:
                lines.append(
                    f"    [{cand.verdict:9}] {cand.log_prob:7.2f}  {cand.tactic}"
                )
        return "\n".join(lines)
