"""Search outcomes.

The paper's §4.3 failure taxonomy: a search either *proves* the
theorem, gets *stuck* (no unexpanded goals remain), or *fuels out*
(the model-query limit is reached first).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Status", "SearchStats", "SearchResult"]


class Status(enum.Enum):
    PROVED = "proved"
    STUCK = "stuck"
    FUELOUT = "fuelout"


@dataclass
class SearchStats:
    queries: int = 0
    nodes_created: int = 0
    nodes_expanded: int = 0
    candidates: int = 0
    rejected: int = 0
    duplicates: int = 0
    timeouts: int = 0
    wall_seconds: float = 0.0


@dataclass
class SearchResult:
    status: Status
    theorem_name: str
    tactics: List[str] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def proved(self) -> bool:
        return self.status is Status.PROVED

    def proof_text(self) -> str:
        """The generated proof as a flat script (replayable by Qed)."""
        return " ".join(f"{t}." for t in self.tactics)
