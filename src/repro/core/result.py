"""Search outcomes.

The paper's §4.3 failure taxonomy: a search either *proves* the
theorem, gets *stuck* (no unexpanded goals remain), or *fuels out*
(the model-query limit is reached first).  The fault-tolerance layer
adds two operational outcomes: *timeout* (the per-theorem wall-clock
deadline expired before the search resolved) and *crash* (the task's
worker died or its model failed permanently; the sweep records the
loss and continues instead of aborting).  The repair layer adds
*repaired*: the initial search failed, but a checker-error feedback
round (:mod:`repro.repair`) completed the proof.

A failed search also carries a :class:`FailureContext` — the deepest
failure frontier the search saw, with the checker's own rejection
message.  This is the signal the paper identifies as ground truth for
why an LLM proof is wrong, and it is what the repair engine feeds back
to the model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Status", "SearchStats", "SearchResult", "FailureContext"]


class Status(enum.Enum):
    PROVED = "proved"
    STUCK = "stuck"
    FUELOUT = "fuelout"
    # Operational outcomes (fault-tolerance layer, not the paper's
    # taxonomy): per-theorem deadline expiry and worker/model death.
    TIMEOUT = "timeout"
    CRASH = "crash"
    # Repair-loop outcome: proved by a checker-error feedback round
    # after the initial search failed (repro.repair).
    REPAIRED = "repaired"


@dataclass(frozen=True)
class FailureContext:
    """Where and why a failed search gave up.

    Captured at the *failure frontier*: the deepest node (ties broken
    by cumulative log-probability, then expansion order) whose
    expansion produced at least one checker rejection.  ``prefix``
    is that node's validated tactic path from the root — the surviving
    partial proof a repair round resumes from.
    """

    prefix: Tuple[str, ...]  # validated tactics root -> frontier node
    goal: str  # rendered proof state at the frontier
    depth: int  # frontier node depth (== len(prefix))
    failed_tactic: str  # the top-ranked rejected candidate there
    message: str  # the checker's rejection message
    verdict: str  # 'rejected' | 'timeout' | 'duplicate'

    def to_json(self) -> Dict[str, object]:
        return {
            "prefix": list(self.prefix),
            "goal": self.goal,
            "depth": self.depth,
            "failed_tactic": self.failed_tactic,
            "message": self.message,
            "verdict": self.verdict,
        }

    @classmethod
    def from_json(cls, obj: Dict[str, object]) -> "FailureContext":
        return cls(
            prefix=tuple(obj.get("prefix", ())),  # type: ignore[arg-type]
            goal=str(obj.get("goal", "")),
            depth=int(obj.get("depth", 0)),  # type: ignore[arg-type]
            failed_tactic=str(obj.get("failed_tactic", "")),
            message=str(obj.get("message", "")),
            verdict=str(obj.get("verdict", "rejected")),
        )


@dataclass
class SearchStats:
    queries: int = 0
    nodes_created: int = 0
    nodes_expanded: int = 0
    candidates: int = 0
    rejected: int = 0
    duplicates: int = 0
    timeouts: int = 0
    wall_seconds: float = 0.0


@dataclass
class SearchResult:
    status: Status
    theorem_name: str
    tactics: List[str] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    # The deepest failure frontier of a non-proved search (None when
    # proved, or when nothing was ever rejected, e.g. frontier
    # exhaustion by pure depth/duplicate pruning).
    failure: Optional[FailureContext] = None
    # Search attempts consumed: 1 for a single-shot search; the repair
    # engine bumps it once per feedback round it runs.
    attempts: int = 1

    @property
    def proved(self) -> bool:
        return self.status in (Status.PROVED, Status.REPAIRED)

    def proof_text(self) -> str:
        """The generated proof as a flat script (replayable by Qed)."""
        return " ".join(f"{t}." for t in self.tactics)
