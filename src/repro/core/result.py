"""Search outcomes.

The paper's §4.3 failure taxonomy: a search either *proves* the
theorem, gets *stuck* (no unexpanded goals remain), or *fuels out*
(the model-query limit is reached first).  The fault-tolerance layer
adds two operational outcomes: *timeout* (the per-theorem wall-clock
deadline expired before the search resolved) and *crash* (the task's
worker died or its model failed permanently; the sweep records the
loss and continues instead of aborting).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Status", "SearchStats", "SearchResult"]


class Status(enum.Enum):
    PROVED = "proved"
    STUCK = "stuck"
    FUELOUT = "fuelout"
    # Operational outcomes (fault-tolerance layer, not the paper's
    # taxonomy): per-theorem deadline expiry and worker/model death.
    TIMEOUT = "timeout"
    CRASH = "crash"


@dataclass
class SearchStats:
    queries: int = 0
    nodes_created: int = 0
    nodes_expanded: int = 0
    candidates: int = 0
    rejected: int = 0
    duplicates: int = 0
    timeouts: int = 0
    wall_seconds: float = 0.0


@dataclass
class SearchResult:
    status: Status
    theorem_name: str
    tactics: List[str] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def proved(self) -> bool:
        return self.status is Status.PROVED

    def proof_text(self) -> str:
        """The generated proof as a flat script (replayable by Qed)."""
        return " ".join(f"{t}." for t in self.tactics)
