"""The paper's contribution: LLM-guided best-first proof search."""

from repro.core.frontier import BestFirstFrontier, make_frontier
from repro.core.linear import LinearConfig, LinearSearch
from repro.core.mcts import MCTSConfig, MCTSSearch
from repro.core.node import Node
from repro.core.result import SearchResult, SearchStats, Status
from repro.core.search import BestFirstSearch, SearchConfig
from repro.core.transcript import Transcript

__all__ = [
    "BestFirstFrontier",
    "make_frontier",
    "Node",
    "SearchResult",
    "SearchStats",
    "Status",
    "BestFirstSearch",
    "SearchConfig",
    "LinearConfig",
    "LinearSearch",
    "MCTSConfig",
    "MCTSSearch",
    "Transcript",
]
