"""Rango-style trial-and-error linear search (paper §2, related work).

The paper contrasts its best-first tree search with Rango's
"trial-and-error linear search": keep a single proof-in-progress; at
each step ask the model for candidates, take the best one that
validates, and never revisit earlier states except by bounded
backtracking when every candidate fails.

Implemented here so the ablation bench can compare the disciplines
under identical fuel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.result import SearchResult, SearchStats, Status
from repro.core.search import PromptFn, SearchConfig
from repro.errors import GenerationError
from repro.kernel.goals import ProofState
from repro.kernel.terms import Term
from repro.llm.interface import TacticGenerator
from repro.serapi.checker import ProofChecker, Verdict

__all__ = ["LinearConfig", "LinearSearch"]


@dataclass(frozen=True)
class LinearConfig:
    width: int = 8
    fuel: int = 128
    tactic_timeout: float = 5.0
    max_backtracks: int = 8

    @classmethod
    def from_search_config(cls, config: SearchConfig) -> "LinearConfig":
        return cls(
            width=config.width,
            fuel=config.fuel,
            tactic_timeout=config.tactic_timeout,
        )


class LinearSearch:
    """One proof attempt at a time, greedy with bounded backtracking."""

    def __init__(
        self,
        checker: ProofChecker,
        generator: TacticGenerator,
        config: Optional[LinearConfig] = None,
    ) -> None:
        if not getattr(generator, "provides_log_probs", False):
            raise GenerationError(
                f"model {generator.name} provides no log-probabilities"
            )
        self.checker = checker
        self.generator = generator
        self.config = config or LinearConfig()

    def prove(
        self,
        theorem_name: str,
        statement: Term,
        prompt_fn: PromptFn,
    ) -> SearchResult:
        config = self.config
        stats = SearchStats()
        started = time.monotonic()

        def finish(status: Status, tactics=None) -> SearchResult:
            stats.wall_seconds = time.monotonic() - started
            return SearchResult(
                status=status,
                theorem_name=theorem_name,
                tactics=list(tactics or []),
                stats=stats,
            )

        # The trail holds (state, remaining-candidates) so backtracking
        # can try the next-best candidate at an earlier step.
        root = self.checker.start(statement)
        seen: Set = {self.checker.state_key(root)}
        trail: List[Tuple[ProofState, List[str], List[str]]] = []
        state = root
        steps: List[str] = []
        backtracks = 0

        while stats.queries < config.fuel:
            prompt = prompt_fn(state, steps)
            stats.queries += 1
            candidates = [
                c.tactic for c in self.generator.generate(prompt, config.width)
            ]
            advanced = False
            while candidates:
                tactic = candidates.pop(0)
                stats.candidates += 1
                check = self.checker.check(state, tactic, seen_keys=seen)
                if check.verdict is Verdict.REJECTED:
                    stats.rejected += 1
                    continue
                if check.verdict is Verdict.DUPLICATE:
                    stats.duplicates += 1
                    continue
                if check.verdict is Verdict.TIMEOUT:
                    stats.timeouts += 1
                    continue
                assert check.state is not None
                trail.append((state, list(candidates), list(steps)))
                seen.add(self.checker.state_key(check.state))
                stats.nodes_created += 1
                state = check.state
                steps = steps + [tactic]
                if state.is_complete():
                    return finish(Status.PROVED, steps)
                advanced = True
                break
            if advanced:
                continue
            # Dead end: backtrack to the most recent step with a spare
            # candidate that still validates.
            resumed = False
            while trail and not resumed:
                prev_state, spare, prev_steps = trail.pop()
                for index, tactic in enumerate(spare):
                    stats.candidates += 1
                    check = self.checker.check(
                        prev_state, tactic, seen_keys=seen
                    )
                    if not check.ok:
                        stats.rejected += 1
                        continue
                    assert check.state is not None
                    trail.append(
                        (prev_state, spare[index + 1 :], prev_steps)
                    )
                    seen.add(self.checker.state_key(check.state))
                    stats.nodes_created += 1
                    state = check.state
                    steps = prev_steps + [tactic]
                    resumed = True
                    break
            if not resumed:
                return finish(Status.STUCK)
            if state.is_complete():
                return finish(Status.PROVED, steps)
            backtracks += 1
            if backtracks > config.max_backtracks:
                return finish(Status.STUCK)
        return finish(Status.FUELOUT)
