"""Simulated LLM tactic generators (substitute for GPT-4o/Gemini APIs).

See DESIGN.md §2 for the substitution argument.  Public surface:
:func:`get_model`, :data:`PROFILES`, :class:`Candidate`, and the
o1-style :class:`WholeProofModel`.
"""

from repro.llm.interface import Candidate, TacticGenerator
from repro.llm.models import SimulatedModel, available_models, get_model
from repro.llm.profiles import PROFILES, ModelProfile, WINDOW_SCALE
from repro.llm.resilient import ResilientGenerator, RetryPolicy, stable_jitter
from repro.llm.wholeproof import WholeProofModel

__all__ = [
    "Candidate",
    "TacticGenerator",
    "SimulatedModel",
    "available_models",
    "get_model",
    "PROFILES",
    "ModelProfile",
    "WINDOW_SCALE",
    "ResilientGenerator",
    "RetryPolicy",
    "stable_jitter",
    "WholeProofModel",
]
