"""Parsing a prompt back into a structured view.

A (simulated) model "reads" its prompt; this module is that reading.
Everything here works on the prompt *text only* — regular expressions
over the Coq-style source plus the raw term parser on the goal display
— so a model's knowledge is exactly bounded by its (possibly
truncated) context window.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ParseError
from repro.kernel.parser import parse_term
from repro.kernel.terms import Term
from repro.prompting.prompt import GOAL_HEADER, THEOREM_HEADER

__all__ = ["LemmaView", "HypView", "PromptView", "parse_prompt"]

_LEMMA_RE = re.compile(
    r"^(?:Lemma|Theorem|Axiom)\s+(\w+)\s*:\s*(.*?)\.\s*$",
    re.MULTILINE | re.DOTALL,
)
_PROOF_RE = re.compile(
    r"Lemma\s+(\w+)\s*:.*?\.\nProof\.\n(.*?)\nQed\.",
    re.DOTALL,
)
_DEFINITION_RE = re.compile(r"^Definition\s+(\w+)", re.MULTILINE)
_FIXPOINT_RE = re.compile(r"^Fixpoint\s+(\w+)", re.MULTILINE)
_INDUCTIVE_RE = re.compile(
    r"^Inductive\s+(\w+)[^\n]*:\s*([^\n]*?):=", re.MULTILINE
)
_RULE_RE = re.compile(r"^\s*\|\s*(\w+)\s*:\s*(.+?)$", re.MULTILINE)
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_']*")
# Repair-round feedback lines (repro.repair.prompts): the tactics a
# previous attempt tried at this frontier and the checker refused.
_FAILED_TACTIC_RE = re.compile(
    r"^\(\* The checker rejected: (.*?) \*\)$", re.MULTILINE
)

# Tokens that mark a context line as a variable declaration rather
# than a hypothesis (a model would judge this visually the same way).
_TYPEISH = {
    "nat",
    "bool",
    "list",
    "option",
    "prod",
    "valu",
    "pred",
    "string",
    "dirtree",
    "prog",
}


@dataclass
class LemmaView:
    """A lemma/axiom statement as seen in the prompt."""

    name: str
    statement: str
    conclusion: str  # textual final conclusion
    head: str  # head symbol of the conclusion ('=', '=p=>', or ident)
    is_equation: bool
    proof: Optional[str] = None  # hint setting only
    binders: frozenset = frozenset()  # universally bound names


_BINDER_PREFIX_RE = re.compile(r"^forall\s+(.*?),", re.DOTALL)


def _binder_names(statement: str) -> frozenset:
    """Names bound by the statement's leading ``forall`` prefix."""
    match = _BINDER_PREFIX_RE.match(statement.strip())
    if not match:
        return frozenset()
    prefix = match.group(1)
    # Drop the type annotations inside each (x y : T) group.
    names = set()
    for group in re.findall(r"\(([^:()]*):[^()]*\)", prefix):
        names.update(_IDENT_RE.findall(group))
    if "(" not in prefix:
        names.update(_IDENT_RE.findall(prefix.split(":")[0]))
    return frozenset(names)


@dataclass
class HypView:
    name: str
    text: str
    is_var: bool
    term: Optional[Term] = None  # raw-parsed, hypotheses only


@dataclass
class PromptView:
    lemmas: Dict[str, LemmaView] = field(default_factory=dict)
    definitions: List[str] = field(default_factory=list)
    fixpoints: List[str] = field(default_factory=list)
    inductive_preds: Set[str] = field(default_factory=set)
    theorem_name: str = ""
    theorem_statement: str = ""
    steps: List[str] = field(default_factory=list)
    hyps: List[HypView] = field(default_factory=list)
    goal_text: str = ""
    goal_term: Optional[Term] = None
    num_goals: int = 1
    # Tactics a repair-feedback block reports as already refused by the
    # checker at this frontier (an attentive model won't retry them).
    failed_tactics: List[str] = field(default_factory=list)

    def hinted_lemmas(self) -> List[LemmaView]:
        return [l for l in self.lemmas.values() if l.proof]


def _conclusion_of(statement: str) -> str:
    """The textual conclusion of a statement (after binders/premises)."""
    text = statement.strip()
    # Drop a leading "forall ... ," prefix (up to the matching comma).
    if text.startswith("forall"):
        depth = 0
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 0:
                text = text[i + 1 :].strip()
                break
    # Take the final arrow component at paren depth 0.
    depth = 0
    last = 0
    i = 0
    while i < len(text) - 1:
        ch = text[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and text[i : i + 2] == "->" and text[i : i + 4] != "->>":
            # Skip '=p=>' (its '=>' is not an implication arrow).
            if i > 0 and text[i - 1] == "=":
                i += 2
                continue
            last = i + 2
        i += 1
    return text[last:].strip()


def _head_of(conclusion: str) -> Tuple[str, bool]:
    if " =p=> " in conclusion:
        return "=p=>", False
    stripped = re.sub(r"\([^()]*\)", " ", conclusion)
    if re.search(r"(?<![<>=:~])=(?![>=])", stripped):
        return "=", True
    match = _IDENT_RE.search(conclusion)
    return (match.group(0) if match else "?", False)


def idents(text: str) -> Set[str]:
    return set(_IDENT_RE.findall(text))


_CONTEXT_CACHE: Dict[int, tuple] = {}


def _parse_context(context: str) -> tuple:
    """Parse the (per-theorem constant) context block, memoized.

    The search queries the model up to 128 times per theorem with the
    same context prefix; caching its parse keeps query latency low
    without changing what the model can see.
    """
    key = hash(context)
    cached = _CONTEXT_CACHE.get(key)
    if cached is not None:
        return cached
    lemmas: Dict[str, LemmaView] = {}
    for match in _LEMMA_RE.finditer(context):
        name, statement = match.group(1), " ".join(match.group(2).split())
        if statement.endswith("Proof. (* ... *) Qed") or "Proof" in statement:
            statement = statement.split(".")[0]
        conclusion = _conclusion_of(statement)
        head, is_eq = _head_of(conclusion)
        lemmas[name] = LemmaView(
            name, statement, conclusion, head, is_eq,
            binders=_binder_names(statement),
        )
    for match in _PROOF_RE.finditer(context):
        name, body = match.group(1), match.group(2).strip()
        if name in lemmas and "(* ... *)" not in body:
            lemmas[name].proof = body
    for match in _RULE_RE.finditer(context):
        name, statement = match.group(1), " ".join(match.group(2).split())
        if name not in lemmas:
            conclusion = _conclusion_of(statement)
            head, is_eq = _head_of(conclusion)
            lemmas[name] = LemmaView(
                name, statement, conclusion, head, is_eq,
                binders=_binder_names(statement),
            )
    definitions = _DEFINITION_RE.findall(context)
    fixpoints = _FIXPOINT_RE.findall(context)
    inductive_preds = set()
    for match in _INDUCTIVE_RE.finditer(context):
        if "Prop" in match.group(2):
            inductive_preds.add(match.group(1))
    result = (lemmas, definitions, fixpoints, inductive_preds)
    if len(_CONTEXT_CACHE) > 64:
        _CONTEXT_CACHE.clear()
    _CONTEXT_CACHE[key] = result
    return result


def parse_prompt(prompt: str) -> PromptView:
    """Structure the prompt the way an attentive model would."""
    view = PromptView()

    theorem_pos = prompt.rfind(THEOREM_HEADER)
    goal_pos = prompt.rfind(GOAL_HEADER)
    context = prompt[: theorem_pos if theorem_pos >= 0 else len(prompt)]

    lemmas, definitions, fixpoints, inductive_preds = _parse_context(context)
    # Shared, read-only after caching.
    view.lemmas = lemmas
    view.definitions = definitions
    view.fixpoints = fixpoints
    view.inductive_preds = inductive_preds

    # Current theorem + steps so far.
    if theorem_pos >= 0:
        tail = prompt[theorem_pos:goal_pos if goal_pos >= 0 else len(prompt)]
        view.failed_tactics = _FAILED_TACTIC_RE.findall(tail)
        m = re.search(r"Lemma\s+(\w+)\s*:\s*(.*?)\.\nProof\.", tail, re.DOTALL)
        if m:
            view.theorem_name = m.group(1)
            view.theorem_statement = " ".join(m.group(2).split())
        for line in tail.splitlines():
            line = line.strip()
            if line.endswith(".") and not line.startswith(
                ("Lemma", "Proof", "(*")
            ):
                view.steps.append(line[:-1])

    # Goal display.
    if goal_pos >= 0:
        goal_block = prompt[goal_pos + len(GOAL_HEADER) :]
        m = re.search(r"goal 1 of (\d+):", goal_block)
        if m:
            view.num_goals = int(m.group(1))
        lines = goal_block.splitlines()
        concl_lines: List[str] = []
        seen_bar = False
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("==="):
                seen_bar = True
                continue
            if stripped.startswith("goal "):
                if seen_bar:
                    break  # next goal's display: stop
                continue
            if stripped.startswith("(*"):
                if seen_bar:
                    break
                continue
            if not seen_bar:
                if " : " in stripped:
                    name, _, text = stripped.partition(" : ")
                    tokens = idents(text)
                    is_var = bool(tokens) and tokens <= _TYPEISH
                    term = None
                    if not is_var:
                        try:
                            term = parse_term(text)
                        except ParseError:
                            term = None
                    view.hyps.append(HypView(name.strip(), text, is_var, term))
            else:
                concl_lines.append(stripped)
        view.goal_text = " ".join(concl_lines).strip()
        if view.goal_text == "No more goals.":
            view.goal_text = ""
        if view.goal_text:
            try:
                view.goal_term = parse_term(view.goal_text)
            except ParseError:
                view.goal_term = None
    return view
