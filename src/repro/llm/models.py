"""The simulated off-the-shelf models.

:class:`SimulatedModel` composes the prompt reader, the structural
proposer, the retrieval/hint proposers, and the profile-driven
sampler into one :class:`~repro.llm.interface.TacticGenerator`.

No network, no weights: this is the reproduction's substitute for the
GPT-4o / Gemini APIs (DESIGN.md §2).  The substitution preserves the
causal structure the paper studies — candidates depend only on the
(truncated) prompt text, degrade with weaker profiles, and improve
when hint proofs appear in context.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.errors import GenerationError
from repro.llm.heuristics import Proposal, propose
from repro.llm.interface import Candidate, GenerationRequest, TacticGenerator
from repro.llm.profiles import PROFILES, ModelProfile
from repro.llm.promptview import parse_prompt
from repro.llm.retrieval import hint_head_priors, hint_proposals, retrieve
from repro.llm.sampling import rank_and_sample, stable_seed
from repro.llm.cost import UsageMeter

__all__ = ["SimulatedModel", "get_model", "available_models"]


class SimulatedModel:
    """A deterministic, prompt-driven tactic predictor."""

    provides_log_probs = True

    def __init__(self, profile: ModelProfile) -> None:
        self.profile = profile
        self.name = profile.name
        self.context_window = profile.context_window
        self.usage = UsageMeter()

    def generate(self, prompt: str, k: int) -> List[Candidate]:
        if k <= 0:
            raise GenerationError("k must be positive")
        self.usage.record_query(prompt, k)
        view = parse_prompt(prompt)
        if not view.goal_text:
            # Proof display says no goals; a model would emit Qed-ish noise.
            return [Candidate("auto", -1.0)]
        rng = random.Random(stable_seed(self.name, prompt))

        # Goal understanding is probabilistic: a non-lucid step produces
        # generic babble, most of which the checker rejects.  Hints in
        # context anchor the model and raise effective lucidity — the
        # mechanism behind the paper's hint-setting gains.
        lucidity = self.profile.lucidity
        if view.hinted_lemmas():
            lucidity = min(1.0, lucidity * self.profile.hint_lucidity_boost)
        if rng.random() >= lucidity:
            candidates = self._babble(view, rng, k)
        else:
            proposals: List[Proposal] = []
            proposals.extend(propose(view))
            proposals.extend(retrieve(view, self.profile.retrieval_strength))
            proposals.extend(
                hint_proposals(view, self.profile.retrieval_strength)
            )
            priors = hint_head_priors(view)
            candidates = rank_and_sample(
                proposals, priors, self.profile, k, rng
            )
        if view.failed_tactics:
            # Repair feedback: an attentive model does not re-propose a
            # tactic the prompt says the checker already refused here.
            refused = set(view.failed_tactics)
            candidates = [c for c in candidates if c.tactic not in refused]
        for candidate in candidates:
            self.usage.record_output(candidate.tactic)
        return candidates

    def generate_batch(
        self, requests: Sequence[GenerationRequest]
    ) -> List[List[Candidate]]:
        """Batched generation (the service layer's micro-batch target).

        Each element is produced by the *same* pure function of
        (model name, prompt, k) as a solo :meth:`generate` call — the
        RNG reseeds from ``stable_seed(self.name, prompt)`` per
        element, so batch composition and ordering cannot leak between
        elements.  ``tests/llm/test_batch_generate.py`` pins batched ==
        solo element-wise for every profile.

        A real API-backed model would send one HTTP request here and
        amortize the round-trip; the simulated model has no wire cost,
        so the amortization is modelled by
        :class:`repro.testing.latency.LatencyGenerator` in benchmarks.
        """
        return [self.generate(prompt, k) for prompt, k in requests]

    def _babble(self, view, rng: random.Random, k: int) -> List[Candidate]:
        """Generic guesses from a model that misread the goal.

        With hint proofs visible, a weak model parrots their steps —
        syntactically valid tactics even when misapplied, which is the
        cheap mechanism by which hints still help weak models (paper
        Table 2: every model gains from hints)."""
        from repro.llm.retrieval import _proof_steps
        from repro.llm.sampling import corrupt

        hint_steps: List[str] = []
        for lemma in view.hinted_lemmas()[:12]:
            hint_steps.extend(_proof_steps(lemma.proof or ""))

        lemma_names = list(view.lemmas) or ["lemma"]
        hyp_names = [h.name for h in view.hyps if not h.is_var] or ["H"]
        var_names = [h.name for h in view.hyps if h.is_var] or ["n"]
        pool = [
            f"apply {rng.choice(lemma_names)}",
            f"rewrite {rng.choice(lemma_names)}",
            f"eapply {rng.choice(lemma_names)}",
            f"apply {rng.choice(lemma_names)} in {rng.choice(hyp_names)}",
            f"destruct {rng.choice(hyp_names)}",
            f"induction {rng.choice(var_names)}",
            f"rewrite {rng.choice(hyp_names)}",
            f"unfold {rng.choice(lemma_names)}",
            "intros",
            "simpl",
        ]
        rng.shuffle(pool)
        out: List[Candidate] = []
        total = min(k, len(pool))
        for i in range(total):
            if hint_steps and rng.random() < 0.5:
                # Parrot a visible hint-proof step verbatim.
                out.append(
                    Candidate(rng.choice(hint_steps), -1.5 - 0.5 * i)
                )
                continue
            tactic = pool[i]
            # Babble is noisy even about names it did retrieve.
            if rng.random() < 0.8:
                tactic = corrupt(tactic, rng)
            out.append(Candidate(tactic, -1.5 - 0.5 * i))
        return out


_CACHE: Dict[str, SimulatedModel] = {}


def get_model(name: str) -> SimulatedModel:
    profile = PROFILES.get(name)
    if profile is None:
        raise GenerationError(
            f"unknown model {name!r}; available: {sorted(PROFILES)}"
        )
    if name not in _CACHE:
        _CACHE[name] = SimulatedModel(profile)
    return _CACHE[name]


def available_models() -> List[str]:
    return sorted(PROFILES)
