"""The tactic-generator interface.

A generator is anything that maps a *prompt string* to ``k`` candidate
next tactics with log-probabilities — the exact contract the paper's
best-first search has with GPT-4o/Gemini.  Simulated models live in
:mod:`repro.llm.models`; the search engine depends only on this
protocol, so a real API-backed model could be dropped in unchanged.

The prompt string is the **only** channel: simulated models never see
kernel objects, the environment, or the corpus — anything they know,
they parsed out of the prompt text, which is what makes the hint and
context-window experiments meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

__all__ = ["Candidate", "TacticGenerator"]


@dataclass(frozen=True)
class Candidate:
    """One predicted next tactic."""

    tactic: str
    log_prob: float


class TacticGenerator(Protocol):
    """Protocol for next-tactic prediction models."""

    name: str
    context_window: int  # in (simulated) tokens
    provides_log_probs: bool

    def generate(self, prompt: str, k: int) -> List[Candidate]:
        """Up to ``k`` candidates, best first, with log-probabilities."""
        ...
