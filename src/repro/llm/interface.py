"""The tactic-generator interface.

A generator is anything that maps a *prompt string* to ``k`` candidate
next tactics with log-probabilities — the exact contract the paper's
best-first search has with GPT-4o/Gemini.  Simulated models live in
:mod:`repro.llm.models`; the search engine depends only on this
protocol, so a real API-backed model could be dropped in unchanged.

The prompt string is the **only** channel: simulated models never see
kernel objects, the environment, or the corpus — anything they know,
they parsed out of the prompt text, which is what makes the hint and
context-window experiments meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple

__all__ = [
    "Candidate",
    "TacticGenerator",
    "GenerationRequest",
    "generate_batch",
    "supports_batch",
]


@dataclass(frozen=True)
class Candidate:
    """One predicted next tactic."""

    tactic: str
    log_prob: float


#: One element of a batched generation call: ``(prompt, k)``.
GenerationRequest = Tuple[str, int]


class TacticGenerator(Protocol):
    """Protocol for next-tactic prediction models.

    ``generate_batch`` is *optional* (real endpoints expose batch
    completion APIs; simple generators need not).  Callers should go
    through the module-level :func:`generate_batch`, which falls back
    to element-wise ``generate`` when the method is absent.

    Determinism contract: when a generator does implement
    ``generate_batch``, element ``i`` of the result MUST be
    byte-identical to a solo ``generate(prompt_i, k_i)`` call — batching
    is an amortization of per-query overhead, never a semantic change.
    The service layer's micro-batcher and the differential tests rely
    on this.
    """

    name: str
    context_window: int  # in (simulated) tokens
    provides_log_probs: bool

    def generate(self, prompt: str, k: int) -> List[Candidate]:
        """Up to ``k`` candidates, best first, with log-probabilities."""
        ...


def supports_batch(generator: "TacticGenerator") -> bool:
    """True when ``generator`` implements a native ``generate_batch``."""
    return callable(getattr(generator, "generate_batch", None))


def generate_batch(
    generator: "TacticGenerator", requests: Sequence[GenerationRequest]
) -> List[List[Candidate]]:
    """Batched generation with element-wise fallback.

    Dispatches one native ``generate_batch`` call when the generator
    has one, otherwise loops solo ``generate`` calls — either way the
    results are, by contract, identical element-wise.
    """
    native = getattr(generator, "generate_batch", None)
    if callable(native):
        return native(requests)
    return [generator.generate(prompt, k) for prompt, k in requests]
