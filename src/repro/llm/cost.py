"""Token-usage accounting for simulated models.

The paper sampled only 10 % of theorems for the large models "due to
budget constraints"; the usage meter makes the simulated costs visible
so the evaluation can report the same kind of accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.tokenizer import count_tokens

__all__ = ["UsageMeter"]


@dataclass
class UsageMeter:
    queries: int = 0
    prompt_tokens: int = 0
    output_tokens: int = 0

    def record_query(self, prompt: str, k: int) -> None:
        self.queries += 1
        self.prompt_tokens += count_tokens(prompt)

    def record_output(self, text: str) -> None:
        self.output_tokens += count_tokens(text)

    def reset(self) -> None:
        self.queries = 0
        self.prompt_tokens = 0
        self.output_tokens = 0

    def snapshot(self) -> dict:
        return {
            "queries": self.queries,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
        }
