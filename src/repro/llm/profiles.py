"""Capability profiles for the simulated models.

Each profile calibrates one of the paper's five model configurations.
The knobs:

* ``skill`` — fidelity of the ranking: low skill adds more noise to
  proposal weights, burying good tactics below junk.
* ``retrieval_strength`` — how well the model exploits statements and
  hint proofs present in its context (hints help ∝ this).
* ``hallucination_rate`` — probability that a candidate slot is a
  corrupted variant (misspelled lemma, wrong hypothesis name...),
  which the checker then rejects.
* ``temperature`` — sampling spread over the proposal distribution.
* ``context_window`` — in simulated tokens.  Real windows are scaled
  by 1/16 (paper's FSCQ context overflows 128k; our scaled corpus
  overflows the scaled window the same way): 128k → 8k, 1M → 64k.

Numbers are calibrated against the paper's Tables 1-2 and Figure 1;
EXPERIMENTS.md records the resulting paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelProfile", "PROFILES", "WINDOW_SCALE"]

WINDOW_SCALE = 16  # real tokens per simulated token

_128K = 128_000 // WINDOW_SCALE
_1M = 1_000_000 // WINDOW_SCALE


@dataclass(frozen=True)
class ModelProfile:
    name: str
    context_window: int
    skill: float
    retrieval_strength: float
    hallucination_rate: float
    temperature: float
    # Probability that the model reads the goal correctly at a given
    # step.  A non-lucid step emits generic babble, most of which the
    # checker rejects — this is what makes weak models' searches die
    # "stuck" quickly (paper Table 2: stuck >> fuelout, mini ~90%).
    lucidity: float = 1.0
    # Hints anchor the model: visible proofs of similar theorems raise
    # effective lucidity by this factor (capped at 1.0).
    hint_lucidity_boost: float = 1.5

    def describe(self) -> str:
        return (
            f"{self.name}: window={self.context_window} sim-tokens, "
            f"skill={self.skill}, retrieval={self.retrieval_strength}, "
            f"hallucination={self.hallucination_rate}"
        )


PROFILES = {
    "gpt-4o-mini": ModelProfile(
        name="gpt-4o-mini",
        context_window=_128K,
        skill=0.30,
        retrieval_strength=0.45,
        hallucination_rate=0.45,
        temperature=1.6,
        lucidity=0.015,
        hint_lucidity_boost=2.8,
    ),
    "gpt-4o": ModelProfile(
        name="gpt-4o",
        context_window=_128K,
        skill=0.95,
        retrieval_strength=1.0,
        hallucination_rate=0.10,
        temperature=0.7,
        lucidity=0.30,
        hint_lucidity_boost=2.2,
    ),
    "gemini-1.5-flash": ModelProfile(
        name="gemini-1.5-flash",
        context_window=_1M,
        skill=0.42,
        retrieval_strength=0.60,
        hallucination_rate=0.35,
        temperature=1.3,
        lucidity=0.03,
        hint_lucidity_boost=3.0,
    ),
    "gemini-1.5-pro": ModelProfile(
        name="gemini-1.5-pro",
        context_window=_1M,
        skill=0.62,
        retrieval_strength=0.85,
        hallucination_rate=0.22,
        temperature=1.0,
        lucidity=0.10,
        hint_lucidity_boost=2.6,
    ),
    # The paper's Figure 1b probe: same model, truncated window.
    "gemini-1.5-pro-128k": ModelProfile(
        name="gemini-1.5-pro-128k",
        context_window=_128K,
        skill=0.62,
        retrieval_strength=0.85,
        hallucination_rate=0.22,
        temperature=1.0,
        lucidity=0.10,
        hint_lucidity_boost=2.6,
    ),
}
