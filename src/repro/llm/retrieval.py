"""Retrieval-based proposals (the model's "memory of the context").

Two mechanisms, both operating purely on the prompt text:

* **lemma retrieval** — statements visible in the context whose
  conclusions resemble the current goal become ``apply``/``rewrite``
  candidates.  This is how context selection affects coverage: a
  truncated window that dropped the relevant lemma cannot propose it.

* **hint mimicry** — in the hint setting, human proofs of similar
  theorems are visible.  The model replays their opening tactics and
  the step aligned with the current proof depth, and absorbs their
  tactic-head statistics as priors.  This is the mechanism behind the
  paper's finding that hints substantially improve coverage.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List, Optional, Set

from repro.llm.heuristics import Proposal, _add
from repro.llm.promptview import LemmaView, PromptView, idents

__all__ = ["retrieve", "hint_proposals", "hint_head_priors"]

_STOP = {
    "forall",
    "exists",
    "fun",
    "Type",
    "Prop",
    "nat",
    "list",
    "bool",
    "prod",
    "option",
    "True",
    "False",
}


def _signature_tokens(text: str) -> Set[str]:
    return {t for t in idents(text) if t not in _STOP and len(t) > 1}


def _similarity(a: Set[str], b: Set[str]) -> float:
    if not a or not b:
        return 0.0
    inter = len(a & b)
    union = len(a | b)
    return inter / union


def retrieve(view: PromptView, strength: float) -> List[Proposal]:
    """Lemma-application proposals from context statements."""
    out: List[Proposal] = []
    goal_tokens = _signature_tokens(view.goal_text)
    if not goal_tokens:
        return out
    scored = []
    for lemma in view.lemmas.values():
        concl_tokens = _signature_tokens(lemma.conclusion) - lemma.binders
        sim = _similarity(goal_tokens, concl_tokens)
        # Equations whose left-hand constants all occur in the goal are
        # prime rewrite candidates even when overall overlap is small
        # (e.g. ``map_app`` against a goal full of ``map`` chains).
        if lemma.is_equation:
            first = lemma.conclusion.split("=")[0]
            lhs_tokens = _signature_tokens(first) - lemma.binders
            if lhs_tokens and lhs_tokens <= goal_tokens:
                sim += 0.35
            elif lhs_tokens & goal_tokens:
                sim += 0.10
        if sim > 0.0:
            scored.append((sim, lemma))
    scored.sort(key=lambda pair: (-pair[0], pair[1].name))
    for sim, lemma in scored[:20]:
        base = strength * (0.8 + 2.4 * sim)
        _add(out, f"apply {lemma.name}", base, "retrieval")
        if "->" in lemma.statement:
            _add(out, f"eapply {lemma.name}", 0.6 * base, "retrieval")
        if lemma.is_equation:
            _add(out, f"rewrite {lemma.name}", 1.1 * base, "retrieval")
            _add(out, f"rewrite <- {lemma.name}", 0.4 * base, "retrieval")
        # Forward use against a matching hypothesis.
        for hyp in view.hyps:
            if hyp.is_var:
                continue
            if _similarity(_signature_tokens(hyp.text), concl_tokens) > 0.4:
                _add(
                    out,
                    f"apply {lemma.name} in {hyp.name}",
                    0.4 * base,
                    "retrieval",
                )
                break
    return out


_SENTENCE_RE = re.compile(r"[^.;]+[.]")


def _proof_steps(proof: str) -> List[str]:
    """Split a hint proof into tactic sentences (bullets dropped)."""
    steps: List[str] = []
    for raw in _SENTENCE_RE.findall(proof):
        text = raw.strip().lstrip("-+*{} \t\n")
        if text.endswith("."):
            text = text[:-1]
        text = text.strip()
        if text:
            steps.append(text)
    return steps


def hint_proposals(view: PromptView, strength: float) -> List[Proposal]:
    """Mimic the proofs of similar hinted theorems."""
    out: List[Proposal] = []
    hinted = view.hinted_lemmas()
    if not hinted:
        return out
    goal_tokens = _signature_tokens(view.theorem_statement or view.goal_text)
    now_tokens = _signature_tokens(view.goal_text)
    scored = []
    for lemma in hinted:
        sim = max(
            _similarity(
                goal_tokens, _signature_tokens(lemma.statement) - lemma.binders
            ),
            _similarity(
                now_tokens, _signature_tokens(lemma.conclusion) - lemma.binders
            ),
        )
        if sim > 0.05:
            scored.append((sim, lemma))
    scored.sort(key=lambda pair: (-pair[0], pair[1].name))
    depth = len(view.steps)
    for sim, lemma in scored[:4]:
        assert lemma.proof is not None
        steps = _proof_steps(lemma.proof)
        if not steps:
            continue
        base = strength * (0.8 + 3.0 * sim)
        # Replay the whole proof, weighting steps near the current
        # depth highest (a model reading a similar proof tracks where
        # it is in it, imperfectly).
        for k, step in enumerate(steps):
            decay = 1.0 / (1.0 + abs(k - depth))
            _add(out, step, base * max(decay, 0.25), "hint")
    return out


def hint_head_priors(view: PromptView) -> Dict[str, float]:
    """Tactic-head frequencies across all visible hint proofs.

    Used as a mild prior: models pick up the house style (FSCQ proofs
    lean on ``eauto``/``omega``-like closers) from the provided
    context, which is why hints help even on dissimilar theorems.
    """
    counts: Counter = Counter()
    total = 0
    for lemma in view.hinted_lemmas():
        assert lemma.proof is not None
        for step in _proof_steps(lemma.proof):
            head = step.split()[0] if step.split() else ""
            if head:
                counts[head] += 1
                total += 1
    if not total:
        return {}
    return {head: count / total for head, count in counts.items()}
