"""Fault-tolerant wrapper around any :class:`TacticGenerator`.

`llm/interface.py` is the drop-in point for a real GPT-4o/Gemini API,
and real model endpoints fail: transient 5xx errors, 429 rate limits,
stalled connections, truncated payloads.  :class:`ResilientGenerator`
gives the search engine the retry/timeout discipline such an endpoint
needs, without the engine knowing anything changed:

* **per-query timeouts** — post-hoc via an injectable monotonic clock
  (and optionally *hard*, via a watchdog thread, for calls that can
  genuinely hang);
* **bounded retries** with exponential backoff and *deterministic*
  jitter (a hash of the prompt and attempt number, not an RNG — two
  identical runs sleep identically);
* a **circuit breaker** — after ``breaker_threshold`` consecutive
  primary failures the primary is skipped entirely for
  ``breaker_cooldown`` seconds, then probed half-open;
* **graceful degradation** — while the breaker is open (or when
  retries are exhausted) queries are served by a configurable fallback
  generator instead of failing the whole search.

The clock and sleep functions are injectable, so every timing path is
unit-testable with a fake clock and **no real sleeps**.  All activity
is surfaced as metrics counters (``llm.retries``,
``llm.breaker_opens``, ``llm.fallback_queries``, …) through the
duck-typed sink used by the rest of the pipeline
(:class:`repro.eval.instrumentation.Metrics`).

Determinism note: the wrapper never alters a successful response, so
a run whose faults are all transient produces bit-identical candidates
— and therefore bit-identical outcome records — to a fault-free run.
The eval runner builds one wrapper per task, so breaker state can
never leak between tasks (records stay order-independent).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import (
    GenerationTimeout,
    ModelExhaustedError,
    RateLimitError,
    TransientModelError,
)
from repro.llm.interface import (
    Candidate,
    GenerationRequest,
    TacticGenerator,
)

__all__ = ["RetryPolicy", "ResilientGenerator", "stable_jitter"]


def stable_jitter(*parts: object) -> float:
    """A deterministic stand-in for ``random.random()`` in [0, 1).

    Hashing the identifying parts (model, prompt, attempt) gives every
    retry a different but perfectly reproducible jitter — chaos runs
    stay bit-replayable, and herd-avoidance still works because
    different prompts hash apart.
    """
    digest = hashlib.sha256(
        "\x1f".join(str(p) for p in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Retry, timeout, and circuit-breaker knobs."""

    max_attempts: int = 4  # total tries per query against the primary
    base_delay: float = 0.05  # seconds before the first retry
    backoff_factor: float = 2.0
    max_delay: float = 2.0  # cap on any single backoff sleep
    jitter: float = 0.25  # max extra delay, as a fraction of the delay
    rate_limit_delay: float = 0.5  # backoff floor after a 429
    query_timeout: Optional[float] = 30.0  # per-query budget (seconds)
    hard_timeout: bool = False  # enforce query_timeout with a watchdog
    breaker_threshold: int = 5  # consecutive failures that open it
    breaker_cooldown: float = 30.0  # seconds open before half-open

    def delay_for(self, retry: int, error: Exception, jitter_key: str) -> float:
        """Backoff before retry number ``retry`` (0-based) of a query."""
        delay = min(
            self.max_delay, self.base_delay * self.backoff_factor**retry
        )
        if isinstance(error, RateLimitError):
            delay = max(delay, self.rate_limit_delay)
        return delay * (1.0 + self.jitter * stable_jitter(jitter_key, retry))


def _call_with_hard_timeout(fn, args, timeout: float):
    """Run ``fn(*args)`` on a watchdog thread; abandon it on timeout.

    This is the only defence against a primary call that never returns
    (the post-hoc clock check cannot fire if the call doesn't come
    back).  The abandoned daemon thread's eventual result is discarded.
    """
    box: List[object] = []

    def work() -> None:
        try:
            box.append(("ok", fn(*args)))
        except BaseException as exc:  # ship the failure to the caller
            box.append(("err", exc))

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    thread.join(timeout)
    if not box:
        raise GenerationTimeout(
            f"model query exceeded its {timeout:g}s budget (stalled call)"
        )
    tag, value = box[0]
    if tag == "err":
        raise value  # type: ignore[misc]
    return value


class ResilientGenerator:
    """Retry/timeout/breaker/fallback discipline for a generator.

    Satisfies :class:`~repro.llm.interface.TacticGenerator` itself, so
    it drops into :class:`~repro.core.search.BestFirstSearch` in place
    of the raw model.
    """

    def __init__(
        self,
        primary: TacticGenerator,
        fallback: Optional[TacticGenerator] = None,
        policy: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        metrics=None,
    ) -> None:
        self.primary = primary
        self.fallback = fallback
        self.policy = policy or RetryPolicy()
        self.clock = clock
        self.sleep = sleep
        self.metrics = metrics
        # TacticGenerator surface, delegated from the primary.
        self.name = primary.name
        self.context_window = primary.context_window
        self.provides_log_probs = getattr(
            primary, "provides_log_probs", False
        )
        # Circuit breaker: closed -> (threshold failures) -> open for
        # cooldown -> half-open (one trial) -> closed or open again.
        # The lock keeps the counters coherent when the pipelined
        # search drives one wrapper from several generation threads;
        # the single-threaded paths pay one uncontended acquire.
        self._breaker_lock = threading.Lock()
        self._consecutive_failures = 0
        self._open_until: Optional[float] = None
        self._half_open = False

    # ------------------------------------------------------------------
    # Breaker bookkeeping
    # ------------------------------------------------------------------

    def breaker_open(self) -> bool:
        """True while the primary is being skipped entirely."""
        with self._breaker_lock:
            if self._open_until is None:
                return False
            if self.clock() >= self._open_until:
                # Cooldown over: half-open, the next query probes the
                # primary once (a single failure reopens immediately).
                self._open_until = None
                self._half_open = True
                return False
            return True

    def _trip_locked(self) -> None:
        self._open_until = self.clock() + self.policy.breaker_cooldown
        self._half_open = False
        self._incr("llm.breaker_opens")

    def _note_failure(self) -> None:
        with self._breaker_lock:
            self._consecutive_failures += 1
            self._incr("llm.primary_failures")
            if (
                self._half_open
                or self._consecutive_failures
                >= self.policy.breaker_threshold
            ):
                self._trip_locked()

    def _note_success(self) -> None:
        with self._breaker_lock:
            self._consecutive_failures = 0
            self._half_open = False

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate(self, prompt: str, k: int) -> List[Candidate]:
        if self.breaker_open():
            return self._degrade(prompt, k, None)
        last_error: Optional[TransientModelError] = None
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self._incr("llm.retries")
                assert last_error is not None
                self.sleep(
                    self.policy.delay_for(
                        attempt - 1,
                        last_error,
                        f"{self.name}\x1f{prompt}",
                    )
                )
            try:
                result = self._call_primary(prompt, k)
            except TransientModelError as exc:
                last_error = exc
                self._note_failure()
                if self.breaker_open():
                    break  # tripped mid-query: stop hammering
                continue
            self._note_success()
            return result
        return self._degrade(prompt, k, last_error)

    def generate_batch(
        self, requests: "List[GenerationRequest]"
    ) -> List[List[Candidate]]:
        """Element-wise batched generation under the retry discipline.

        Each element goes through the full :meth:`generate` path —
        per-query timeout, retries, breaker, fallback — so one failing
        element degrades alone instead of poisoning the batch.  This
        trades away cross-element amortization, which is why the
        service stacks the micro-batcher *below* this wrapper (one
        resilient wrapper per job, one shared batcher per model).
        """
        return [self.generate(prompt, k) for prompt, k in requests]

    def _call_primary(self, prompt: str, k: int) -> List[Candidate]:
        timeout = self.policy.query_timeout
        started = self.clock()
        if timeout is not None and self.policy.hard_timeout:
            result = _call_with_hard_timeout(
                self.primary.generate, (prompt, k), timeout
            )
        else:
            result = self.primary.generate(prompt, k)
        if timeout is not None and self.clock() - started > timeout:
            # The call returned, but only after blowing its budget — a
            # real client would have abandoned it (stalled connection).
            raise GenerationTimeout(
                f"model query exceeded its {timeout:g}s budget"
            )
        return result

    def _degrade(
        self,
        prompt: str,
        k: int,
        last_error: Optional[Exception],
    ) -> List[Candidate]:
        if self.fallback is not None:
            self._incr("llm.fallback_queries")
            return self.fallback.generate(prompt, k)
        if last_error is not None:
            raise ModelExhaustedError(
                f"primary model {self.name} failed after "
                f"{self.policy.max_attempts} attempts and no fallback is "
                f"configured: {last_error}"
            ) from last_error
        raise ModelExhaustedError(
            f"circuit breaker open for {self.name} and no fallback is "
            "configured"
        )
