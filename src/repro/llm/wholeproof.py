"""Whole-proof generation without log-probabilities (§4.3's probe).

The paper tried o1-class reasoning models, which expose no
log-probabilities and therefore cannot drive best-first search; they
generate *entire proofs* in one shot and, lacking interaction with the
proof assistant, routinely misjudge intermediate progress (e.g.
assuming ``auto`` closes a subgoal it does not).

The simulated counterpart composes a plausible whole script from the
goal shape — the same proposals a tactic model would emit, strung
together blindly — and exposes ``provides_log_probs = False`` so the
search engine refuses it, as the paper's system had to.
"""

from __future__ import annotations

import random
from typing import List

from repro.llm.heuristics import propose
from repro.llm.promptview import parse_prompt
from repro.llm.retrieval import hint_proposals
from repro.llm.sampling import stable_seed

__all__ = ["WholeProofModel"]


class WholeProofModel:
    """An o1-style model: one whole proof per query, no log-probs."""

    provides_log_probs = False
    context_window = 1_000_000

    def __init__(self, name: str = "reasoning-model") -> None:
        self.name = name

    def generate(self, prompt: str, k: int) -> List[str]:
        """``k`` complete proof-script attempts."""
        view = parse_prompt(prompt)
        rng = random.Random(stable_seed(self.name, prompt))
        proposals = propose(view) + hint_proposals(view, 1.0)
        proposals.sort(key=lambda p: -p.weight)
        attempts: List[str] = []
        for attempt in range(k):
            steps: List[str] = []
            opener_pool = [p.tactic for p in proposals[:6]] or ["intros"]
            steps.append(rng.choice(opener_pool))
            # Blind continuation: a reasoning model plans without state
            # feedback, so it guesses the middle-game and then asserts
            # that automation will finish — the §4.3 failure mode.
            middle_pool = [
                "simpl",
                "intros",
                "induction l",
                "induction n",
                "split",
                "rewrite IHl",
                "rewrite IHn",
                "constructor",
                "f_equal",
            ]
            for _ in range(rng.randrange(1, 4)):
                steps.append(rng.choice(middle_pool))
            steps.append(rng.choice(["auto", "eauto", "assumption", "lia"]))
            attempts.append(". ".join(steps) + ".")
        return attempts
