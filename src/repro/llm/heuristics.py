"""Goal-directed tactic proposals (the model's "reasoning").

Given the structured prompt view, propose plausible next tactics with
base weights.  This encodes what a competent Coq user gleans from goal
shape alone: introduce products, split conjunctions, induct on the
right variable, rewrite with equations whose left side occurs, try the
decision procedures on arithmetic goals, and so on.

The proposals are *suggestions*, not proofs — the checker rejects the
bad ones, exactly as in the paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.kernel.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Or,
    Term,
    Var,
    head_const,
    is_neg,
)
from repro.llm.promptview import HypView, PromptView, idents

__all__ = ["Proposal", "propose"]

_ARITH_TOKENS = {"S", "add", "sub", "mult", "le", "lt", "min", "max"}
_ARITH_CHARS = ("+", "-", "<=", "<", " S ")


@dataclass
class Proposal:
    tactic: str
    weight: float
    source: str  # 'structure' | 'retrieval' | 'hint' | 'fallback'


def _head_name(term: Optional[Term]) -> Optional[str]:
    if term is None:
        return None
    if isinstance(term, (Var, Const)):
        return getattr(term, "name", None)
    if isinstance(term, App):
        fn = term.fn
        return getattr(fn, "name", None)
    return None


def _add(out: List[Proposal], tactic: str, weight: float, source: str) -> None:
    for existing in out:
        if existing.tactic == tactic:
            existing.weight = max(existing.weight, weight)
            return
    out.append(Proposal(tactic, weight, source))


def propose(view: PromptView) -> List[Proposal]:
    """Structure-driven proposals for the focused goal."""
    out: List[Proposal] = []
    goal = view.goal_term
    goal_tokens = idents(view.goal_text)

    # ------------------------------------------------------------------
    # Conclusion shape.
    # ------------------------------------------------------------------
    if isinstance(goal, Forall):
        _add(out, "intros", 3.0, "structure")
        # Induction before intros generalizes the IH (the FSCQ style).
        for var, ty in _leading_binders(goal):
            if ty is not None:
                _add(out, f"induction {var}", 1.6, "structure")
                break
    if isinstance(goal, Impl) and not is_neg(goal):
        _add(out, "intros", 3.0, "structure")
    if goal is not None and is_neg(goal):
        _add(out, "intro", 1.6, "structure")
        _add(out, "discriminate", 1.0, "structure")
        _add(out, "congruence", 0.9, "structure")
    if isinstance(goal, And):
        _add(out, "split", 3.0, "structure")
    if isinstance(goal, Or):
        _add(out, "left", 1.2, "structure")
        _add(out, "right", 1.2, "structure")
    if isinstance(goal, Exists):
        _add(out, "eexists", 1.0, "structure")
        for hyp in view.hyps:
            if hyp.is_var:
                _add(out, f"exists {hyp.name}", 0.7, "structure")

    if isinstance(goal, Eq):
        _add(out, "reflexivity", 2.2, "structure")
        _add(out, "simpl", 1.6, "structure")
        lhs_head = _head_name(goal.lhs)
        rhs_head = _head_name(goal.rhs)
        if lhs_head is not None and lhs_head == rhs_head:
            _add(out, "f_equal", 1.4, "structure")
        _add(out, "congruence", 0.7, "structure")

    # Arithmetic goals: the omega/lia reflex.
    if view.goal_text and (
        any(ch in view.goal_text for ch in _ARITH_CHARS)
        or goal_tokens & _ARITH_TOKENS
    ):
        _add(out, "lia", 1.8, "structure")

    # Induction / destruct on context variables that occur in the goal.
    for hyp in view.hyps:
        if hyp.is_var and hyp.name in goal_tokens:
            inductivey = any(
                t in hyp.text for t in ("list", "nat", "dirtree", "prog", "bool")
            )
            if inductivey:
                _add(out, f"induction {hyp.name}", 1.5, "structure")
                _add(out, f"destruct {hyp.name}", 0.9, "structure")

    # ------------------------------------------------------------------
    # Hypothesis-driven moves.
    # ------------------------------------------------------------------
    subst_useful = False
    for hyp in view.hyps:
        if hyp.is_var:
            continue
        term = hyp.term
        if hyp.text == view.goal_text:
            _add(out, "assumption", 3.0, "structure")
        if isinstance(term, Eq):
            _add(out, f"rewrite {hyp.name}", 1.6, "structure")
            _add(out, f"rewrite <- {hyp.name}", 0.8, "structure")
            if isinstance(term.lhs, Var) or isinstance(term.rhs, Var):
                subst_useful = True
            _add(out, f"inversion {hyp.name}", 0.5, "structure")
            _add(out, f"discriminate {hyp.name}", 0.5, "structure")
        if hyp.name.startswith("IH"):
            _add(out, f"rewrite {hyp.name}", 2.2, "structure")
            _add(out, f"apply {hyp.name}", 1.8, "structure")
            _add(out, f"eapply {hyp.name}", 1.0, "structure")
        if isinstance(term, (And, Or, Exists)):
            _add(out, f"destruct {hyp.name}", 2.0, "structure")
        if isinstance(term, FalseP):
            _add(out, "contradiction", 3.0, "structure")
        head = _head_name(term)
        if head is not None and head in view.inductive_preds:
            _add(out, f"inversion {hyp.name}", 1.8, "structure")
            _add(out, f"apply {hyp.name}", 0.8, "structure")
        if head is not None and head in view.fixpoints:
            _add(out, f"simpl in {hyp.name}", 0.9, "structure")
        # Forward chaining: hypothesis conclusion matches the goal head.
        if isinstance(term, (Forall, Impl)) and not is_neg(term):
            _add(out, f"apply {hyp.name}", 1.4, "structure")
            _add(out, f"eapply {hyp.name}", 0.8, "structure")
    if subst_useful:
        _add(out, "subst", 1.4, "structure")

    # Goal headed by an inductive predicate: introduction rules.
    goal_head = _head_name(goal)
    if goal_head is not None and goal_head in view.inductive_preds:
        _add(out, "constructor", 2.0, "structure")
        _add(out, "econstructor", 1.0, "structure")
    if goal is not None and not isinstance(goal, (Forall, Impl)):
        _add(out, "auto", 1.6, "structure")
        _add(out, "eauto", 1.2, "structure")

    # Unfold definitions that appear in the goal.
    unfoldable = [d for d in view.definitions if d in goal_tokens]
    for name in unfoldable[:2]:
        _add(out, f"unfold {name}", 1.5, "structure")
    if unfoldable and view.hyps:
        _add(out, f"unfold {unfoldable[0]} in *", 0.6, "structure")

    # Fallbacks a model reaches for when nothing is obvious.
    _add(out, "simpl", 0.6, "fallback")
    _add(out, "intuition", 0.5, "fallback")
    _add(out, "auto", 0.5, "fallback")
    return out


def _leading_binders(term: Term):
    while isinstance(term, Forall):
        yield term.var, term.ty
        term = term.body
