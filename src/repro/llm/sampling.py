"""Deterministic candidate ranking and noise.

Every generation is a pure function of (model name, prompt, k): the
RNG is seeded from a digest of those, so whole experiments replay
bit-identically — a property the evaluation and the tests rely on.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List

from repro.llm.heuristics import Proposal
from repro.llm.interface import Candidate
from repro.llm.profiles import ModelProfile

__all__ = ["stable_seed", "attempt_seed", "rank_and_sample", "corrupt"]


def stable_seed(*parts: str) -> int:
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def attempt_seed(task_key: str, attempt: int) -> str:
    """The pass@k sampling salt for one attempt of a task.

    A stable hash of (the task's attempt-0 cache key, the attempt
    index), rendered as a short hex token that rides in the prompt
    (see :class:`repro.prompting.PromptBuilder`).  Generation stays a
    pure function of (model, prompt) — the salt simply makes attempt
    i's prompt (and therefore its sample) distinct from attempt j's,
    while remaining bit-reproducible across serial, thread, and
    process backends.
    """
    if attempt < 0:
        raise ValueError("attempt index must be >= 0")
    digest = hashlib.sha256(
        f"{task_key}\x1f{attempt}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


_SUFFIX_SWAPS = [("_l", "_r"), ("_r", "_l"), ("_1", "_2"), ("_2", "_1")]


def corrupt(tactic: str, rng: random.Random) -> str:
    """A plausible-but-wrong variant of a real proposal."""
    words = tactic.split()
    choice = rng.random()
    if len(words) >= 2 and choice < 0.4:
        name = words[1]
        for old, new in _SUFFIX_SWAPS:
            if name.endswith(old):
                words[1] = name[: -len(old)] + new
                return " ".join(words)
        if len(name) > 3:
            words[1] = name[:-1]  # drop a character
            return " ".join(words)
    if len(words) >= 2 and choice < 0.7:
        # Wrong hypothesis/lemma name.
        words[1] = rng.choice(["H", "H0", "H1", "H2", "IHn", "IHl"])
        return " ".join(words)
    head_swap = {"apply": "rewrite", "rewrite": "apply", "intros": "intro"}
    if words and words[0] in head_swap:
        words[0] = head_swap[words[0]]
        return " ".join(words)
    return tactic + "; auto"


def rank_and_sample(
    proposals: List[Proposal],
    head_priors: Dict[str, float],
    profile: ModelProfile,
    k: int,
    rng: random.Random,
) -> List[Candidate]:
    """Noise, corrupt, rank, and emit log-probabilities.

    The score of a proposal is its weight, scaled by skill-dependent
    multiplicative noise, plus a prior bonus when its head matches the
    hint proofs' house style.  Sampling is top-k over the softmax of
    scores at the profile's temperature.
    """
    if not proposals:
        return []
    scored: List[tuple] = []
    for proposal in proposals:
        noise_span = (1.0 - profile.skill) * 1.8
        noise = rng.uniform(-noise_span, noise_span)
        head = proposal.tactic.split()[0] if proposal.tactic.split() else ""
        prior = 1.5 * head_priors.get(head, 0.0)
        score = proposal.weight * (1.0 + noise) + prior
        tactic = proposal.tactic
        if rng.random() < profile.hallucination_rate:
            tactic = corrupt(tactic, rng)
        scored.append((score, tactic))

    # Deduplicate after corruption, keeping the best score per tactic.
    best: Dict[str, float] = {}
    for score, tactic in scored:
        if tactic not in best or score > best[tactic]:
            best[tactic] = score
    ranked = sorted(best.items(), key=lambda item: (-item[1], item[0]))[:k]

    temperature = max(profile.temperature, 1e-3)
    logits = [score / temperature for _, score in ranked]
    peak = max(logits)
    total = sum(math.exp(l - peak) for l in logits)
    log_total = peak + math.log(total)
    return [
        Candidate(tactic=tactic, log_prob=logit - log_total)
        for (tactic, _), logit in zip(ranked, logits)
    ]
