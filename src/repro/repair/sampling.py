"""pass@k sampling: independently-seeded attempts and the unbiased
coverage@k estimator.

One-attempt coverage understates what a model can do: CoqPilot-style
multi-attempt sampling routinely proves theorems a single sample
misses.  This module makes coverage@k a first-class metric:

* :func:`attempt_tasks` expands a base task list into k attempts per
  cell.  Attempt i differs from attempt 0 only by its ``attempt``
  field; the prompt salt derived from it
  (:meth:`repro.eval.tasks.TheoremTask.sample_salt`) makes the samples
  distinct yet bit-reproducible across backends.
* :func:`pass_at_k` is the standard unbiased estimator
  ``1 - C(n-c, k) / C(n, k)`` over n samples with c successes.
* :func:`coverage_at_k` aggregates outcome records into a per-k
  coverage table, grouping attempts by their base cell.
"""

from __future__ import annotations

from dataclasses import replace
from math import comb
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.eval.store import OutcomeRecord
from repro.eval.tasks import TheoremTask

__all__ = [
    "attempt_tasks",
    "pass_at_k",
    "coverage_at_k",
    "record_proved",
]

PROVED_STATUSES = ("proved", "repaired")


def attempt_tasks(
    tasks: Sequence[TheoremTask], k: int
) -> List[TheoremTask]:
    """k independently-seeded attempts per base task.

    Attempt indices are assigned 0..k-1 regardless of the base task's
    own ``attempt`` value, and the expansion is attempt-major per task
    so the store groups a cell's samples together.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    return [
        replace(task, attempt=attempt)
        for task in tasks
        for attempt in range(k)
    ]


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased pass@k over n samples with c successes.

    The Codex-paper estimator: the probability that at least one of k
    samples drawn (without replacement) from the n observed ones
    succeeds.  Exact combinatorics — no floating-point product loop —
    so the report is deterministic to the last digit.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got n={n}")
    if c < 0 or c > n:
        raise ValueError("successes must satisfy 0 <= c <= n")
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def record_proved(record: OutcomeRecord) -> bool:
    """Whether a record counts as a success for coverage purposes.

    ``repaired`` counts exactly like ``proved`` — both are Qed-replay
    revalidated complete proofs; the status only says whether the
    feedback loop was needed.
    """
    return record.status in PROVED_STATUSES and record.revalidated


def coverage_at_k(
    records: Iterable[OutcomeRecord], ks: Sequence[int]
) -> Dict[int, float]:
    """Mean pass@k over the base cells present in ``records``.

    Cells are grouped by (theorem, model, hinted); every record of a
    cell is one sample.  Each requested k must not exceed the smallest
    cell's sample count (the estimator needs n >= k).
    """
    cells: Dict[Tuple[str, str, bool], List[bool]] = {}
    for record in records:
        key = (record.theorem, record.model, record.hinted)
        cells.setdefault(key, []).append(record_proved(record))
    if not cells:
        return {k: 0.0 for k in ks}
    out: Dict[int, float] = {}
    for k in ks:
        values = [
            pass_at_k(len(samples), sum(samples), k)
            for samples in cells.values()
        ]
        out[k] = sum(values) / len(values)
    return out
