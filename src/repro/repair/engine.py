"""The checker-error feedback loop.

Single-shot search throws away the checker's rejection message — the
one signal that says *why* the proof attempt is wrong.  The repair
engine closes the loop: when a search fails, it re-prompts the model
with the failure context (surviving prefix, goal at the frontier, the
refused tactic, the checker's message) and resumes search from the
surviving prefix, iterating until verified or retry-capped.
Execution is the source of truth — a repair round "succeeds" only when
the checker accepts a complete proof, which the runner then Qed-replays
like any other.

Eligibility follows the ROADMAP's workload definition: a STUCK search
(the paper's FAILED) is always worth a repair round — its frontier
died on rejections; FUELOUT/TIMEOUT searches qualify only as
*near-misses* (a partial proof at least ``near_miss_depth`` deep
survived), since a search that ran out of budget with no progress
will not be saved by feedback.

Budget: all rounds share one wall-clock deadline.  When the task sets
``theorem_deadline``, that budget covers the *initial search plus
every repair round*; each round's search receives only the remaining
time, and the loop stops once the budget is spent.  Without a
deadline the retry cap alone bounds the loop (the paper's unbounded
setting).

Observability: each round runs inside a ``repair_round`` span, and
the metrics sink collects ``repair.rounds`` / ``repair.succeeded`` /
``repair.exhausted`` / ``repair.ineligible`` counters, exported by
the service as ``repro_repair_*_total``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from repro.core.result import FailureContext, SearchResult, Status
from repro.core.search import BestFirstSearch
from repro.deadline import Deadline
from repro.kernel.terms import Term
from repro.obs.trace import NULL_TRACER
from repro.repair.prompts import feedback_block

__all__ = ["RepairEngine", "NEAR_MISS_DEPTH", "repairable"]

# Minimum surviving-prefix depth for a FUELOUT/TIMEOUT search to count
# as a near-miss worth repairing.
NEAR_MISS_DEPTH = 1

_RETRYABLE = (Status.STUCK, Status.FUELOUT, Status.TIMEOUT)


def repairable(result: SearchResult) -> bool:
    """Whether a failed search qualifies for a repair round."""
    if result.status not in _RETRYABLE or result.failure is None:
        return False
    if result.status is Status.STUCK:
        return True
    return result.failure.depth >= NEAR_MISS_DEPTH


def _merge_stats(total, extra) -> None:
    total.queries += extra.queries
    total.nodes_created += extra.nodes_created
    total.nodes_expanded += extra.nodes_expanded
    total.candidates += extra.candidates
    total.rejected += extra.rejected
    total.duplicates += extra.duplicates
    total.timeouts += extra.timeouts
    total.wall_seconds += extra.wall_seconds


class RepairEngine:
    """Runs one theorem's search with up to ``rounds`` feedback rounds.

    ``builder`` is the task's :class:`~repro.prompting.PromptBuilder`;
    repair rounds derive theirs from it with ``dataclasses.replace``,
    so hint setting, context reduction, window size, and the pass@k
    attempt salt all carry over unchanged.
    """

    def __init__(
        self,
        search: BestFirstSearch,
        builder,
        rounds: int,
        metrics=None,
        tracer=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rounds < 0:
            raise ValueError("repair rounds must be >= 0")
        self.search = search
        self.builder = builder
        self.rounds = rounds
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clock = clock

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)

    def _round_search(self, remaining: Optional[float]) -> BestFirstSearch:
        """A searcher for one repair round (same stack, fresh budget)."""
        base = self.search
        config = base.config
        if remaining is not None:
            config = replace(config, theorem_deadline=remaining)
        return BestFirstSearch(
            base.checker,
            base.generator,
            config,
            metrics=base.metrics,
            clock=base.clock,
            generate_fn=base.generate,
            tracer=base.tracer,
            submit_fn=base.submit_fn,
        )

    def prove(self, theorem_name: str, statement: Term) -> SearchResult:
        """Initial search plus feedback rounds under the shared budget."""
        budget = self.search.config.theorem_deadline
        deadline = (
            Deadline.after(budget, clock=self.clock)
            if budget is not None
            else None
        )
        result = self.search.prove(
            theorem_name, statement, self.builder.build
        )
        if result.status is Status.PROVED or self.rounds == 0:
            return result

        total_stats = result.stats
        refused: List[str] = []
        failure: Optional[FailureContext] = result.failure
        attempts = 1
        tracer = self.tracer
        for round_index in range(1, self.rounds + 1):
            if not repairable(result):
                if result.status in _RETRYABLE:
                    self._incr("repair.ineligible")
                break
            remaining = deadline.remaining() if deadline is not None else None
            if remaining is not None and remaining <= 0.0:
                break
            failure = result.failure
            assert failure is not None
            block = feedback_block(failure, round_index, refused)
            refused.append(failure.failed_tactic)
            round_builder = replace(self.builder, feedback=block)
            self._incr("repair.rounds")
            attempts += 1
            with tracer.span(
                "repair_round",
                round=round_index,
                depth=failure.depth,
                tactic=failure.failed_tactic,
                verdict=failure.verdict,
            ) as round_span:
                round_result = self._round_search(remaining).prove(
                    theorem_name,
                    statement,
                    round_builder.build,
                    initial_tactics=failure.prefix,
                )
                if tracer.enabled:
                    round_span.set(status=round_result.status.value)
            _merge_stats(total_stats, round_result.stats)
            if round_result.status is Status.PROVED:
                self._incr("repair.succeeded")
                return SearchResult(
                    status=Status.REPAIRED,
                    theorem_name=theorem_name,
                    tactics=round_result.tactics,
                    stats=total_stats,
                    failure=None,
                    attempts=attempts,
                )
            # Prefer the newest failure frontier; a round that saw no
            # rejection at all keeps the previous context for the
            # record.
            result = round_result
            if result.failure is None:
                result.failure = failure
        else:
            self._incr("repair.exhausted")
        return SearchResult(
            status=result.status,
            theorem_name=theorem_name,
            tactics=list(result.tactics),
            stats=total_stats,
            failure=result.failure,
            attempts=attempts,
        )
