"""Failure-feedback prompt blocks for repair rounds.

A repair round re-prompts the model with the evidence the initial
search left behind: the surviving tactic prefix, the goal at the
failure frontier, the top-ranked tactic the checker refused there, and
the checker's own rejection message.  The block is rendered as Coq
comments so it composes with the existing prompt layout
(:mod:`repro.prompting.prompt`) without disturbing any of the prompt
parsers — and so the model can only react to what is *in the text*,
exactly like the rest of the simulated-model design.

``(* The checker rejected: <tactic> *)`` lines are the machine-
readable part: :func:`repro.llm.promptview.parse_prompt` collects them
into ``PromptView.failed_tactics`` and the simulated model suppresses
those exact candidates, which is the minimal honest model of "the
model read the error message".
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.result import FailureContext

__all__ = ["REPAIR_HEADER", "feedback_block"]

REPAIR_HEADER = "(* Previous attempt failed *)"

# The checker message rides in a comment; keep it one line and
# bounded so the block cannot crowd out the goal display.
_MESSAGE_LIMIT = 240


def _comment_safe(text: str) -> str:
    """One whitespace-collapsed line that cannot close the comment."""
    collapsed = " ".join(text.split())
    return collapsed.replace("*)", "* )")[:_MESSAGE_LIMIT]


def feedback_block(
    failure: FailureContext,
    round_index: int,
    refused: Iterable[str] = (),
) -> str:
    """The feedback section for one repair round.

    ``refused`` lists tactics earlier rounds already reported (the
    current failure's tactic is always included), so the model sees
    the full set it should stop retrying.  ``round_index`` is baked
    into the text: the block for round 2 differs from round 1 even on
    an identical failure, so each round draws a fresh sample.
    """
    tried: List[str] = []
    for tactic in list(refused) + [failure.failed_tactic]:
        if tactic and tactic not in tried:
            tried.append(tactic)
    lines = [REPAIR_HEADER]
    if failure.prefix:
        lines.append(
            f"(* Progress survived up to depth {failure.depth}. *)"
        )
    for tactic in tried:
        lines.append(f"(* The checker rejected: {_comment_safe(tactic)} *)")
    lines.append(f"(* Checker error: {_comment_safe(failure.message)} *)")
    lines.append(f"(* repair round {round_index} *)")
    return "\n".join(lines)
