"""Proof repair: checker-error feedback loops and pass@k sampling.

The paper's verdict taxonomy tells *why* a proof attempt failed; this
package closes the loop on that signal.  :class:`RepairEngine` re-runs
a failed search with the failure context fed back through the prompt,
and :mod:`repro.repair.sampling` turns independently-salted attempts
into the standard unbiased coverage@k metric.
"""

from repro.repair.engine import NEAR_MISS_DEPTH, RepairEngine, repairable
from repro.repair.prompts import REPAIR_HEADER, feedback_block
from repro.repair.sampling import (
    attempt_tasks,
    coverage_at_k,
    pass_at_k,
    record_proved,
)

__all__ = [
    "NEAR_MISS_DEPTH",
    "REPAIR_HEADER",
    "RepairEngine",
    "attempt_tasks",
    "coverage_at_k",
    "feedback_block",
    "pass_at_k",
    "record_proved",
    "repairable",
]
