"""Whole proof scripts: sentence splitting, bullets, and Qed checking.

A script is the text between ``Proof.`` and ``Qed.`` (both optional
here).  The runner reproduces Coq's sentence/bullet discipline:

* sentences end at ``.``;
* a bullet (``-``, ``+``, ``*``, ``--``, ...) focuses the first open
  goal; a repeated bullet of the same shape requires the previous
  focused goal to be finished;
* ``Qed`` succeeds only when no goal (focused or deferred) remains and
  all existentials are resolved.

:func:`run_script` is what the corpus loader uses to machine-check
every "human" proof, and what the evaluation uses to validate complete
LLM-generated proofs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ParseError, ReproError, ScriptError, TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, ProofState, initial_state
from repro.kernel.parser import Lexer, Token
from repro.kernel.terms import Term
from repro.kernel.unify import MetaStore
from repro.tactics.base import TacticNode, run_tactic
from repro.tactics.parse import parse_tactic

__all__ = ["Sentence", "split_sentences", "run_script", "script_tactics"]

_BULLET_CHARS = {"-", "+", "*"}


@dataclass(frozen=True)
class Sentence:
    """One script sentence: an optional bullet/brace and/or a tactic.

    ``bullet`` may be a bullet run (``-``, ``+``, ``*``, ``--``...) or a
    focusing brace (``{`` / ``}``), which Coq treats as anonymous
    focus/unfocus markers."""

    bullet: Optional[str]
    tactic_text: Optional[str]


def _strip_wrappers(text: str) -> str:
    text = text.strip()
    if text.startswith("Proof."):
        text = text[len("Proof.") :]
    elif text.startswith("Proof"):
        text = text[len("Proof") :].lstrip(".")
    for ending in ("Qed.", "Qed", "Defined.", "Defined"):
        if text.rstrip().endswith(ending):
            text = text.rstrip()[: -len(ending)]
            break
    return text.strip()


def split_sentences(script: str) -> List[Sentence]:
    """Split a proof script into bullet/tactic sentences."""
    text = _strip_wrappers(script)
    if not text:
        return []
    lexer = Lexer(text)
    tokens = lexer.tokens
    sentences: List[Sentence] = []
    i = 0
    while i < len(tokens) and tokens[i].kind != "eof":
        # Braces are standalone focus markers (no trailing period).
        tok = tokens[i]
        if tok.kind == "sym" and tok.text in ("{", "}"):
            sentences.append(Sentence(tok.text, None))
            i += 1
            continue
        # Bullets: a run of identical adjacent bullet symbols.
        bullet = None
        if tok.kind == "sym" and tok.text in _BULLET_CHARS:
            bullet_char = tok.text
            run = tok.text
            j = i + 1
            pos = tok.pos + 1
            while (
                j < len(tokens)
                and tokens[j].kind == "sym"
                and tokens[j].text == bullet_char
                and tokens[j].pos == pos
            ):
                run += bullet_char
                pos += 1
                j += 1
            bullet = run
            i = j
            nxt = tokens[i] if i < len(tokens) else None
            if (
                nxt is not None
                and nxt.kind == "sym"
                and nxt.text in _BULLET_CHARS
            ):
                # Consecutive bullets ("- - auto."): emit this one as a
                # bullet-only sentence; the next loop handles the rest.
                sentences.append(Sentence(bullet, None))
                continue
        # Tactic text: up to the next '.' at top level.
        start = i
        depth = 0
        while i < len(tokens) and tokens[i].kind != "eof":
            t = tokens[i]
            if t.kind == "sym" and t.text == "(":
                depth += 1
            elif t.kind == "sym" and t.text == ")":
                depth -= 1
            elif t.kind == "sym" and t.text == "." and depth == 0:
                break
            i += 1
        if i >= len(tokens) or tokens[i].kind == "eof":
            if start < i:
                raise ScriptError("script does not end with a period")
            if bullet is not None:
                sentences.append(Sentence(bullet, None))
            break
        if start == i:
            # Bullet immediately followed by a period is malformed.
            if bullet is None:
                raise ScriptError("empty sentence")
            sentences.append(Sentence(bullet, None))
            i += 1
            continue
        chunk = text[tokens[start].pos : tokens[i].pos]
        sentences.append(Sentence(bullet, chunk.strip()))
        i += 1  # skip the period
    return sentences


@dataclass
class _Frame:
    bullet: str
    deferred: Tuple[Goal, ...]


@dataclass
class ScriptResult:
    """Outcome of running a script to completion."""

    state: ProofState
    tactics: List[TacticNode] = field(default_factory=list)


def run_script(
    env: Environment,
    statement: Term,
    script: str,
    timeout: Optional[float] = None,
) -> ScriptResult:
    """Run ``script`` against ``statement``; raise ScriptError unless it
    fully proves the goal."""
    state = initial_state(env, statement)
    visible: Tuple[Goal, ...] = state.goals
    store: MetaStore = state.store
    stack: List[_Frame] = []
    executed: List[TacticNode] = []

    def fail(message: str) -> ScriptError:
        return ScriptError(message)

    for sentence in split_sentences(script):
        if sentence.bullet == "{":
            if not visible:
                raise fail("{: no goals to focus")
            stack.append(_Frame("{", visible[1:]))
            visible = (visible[0],)
        elif sentence.bullet == "}":
            if visible:
                raise fail("}: the focused goal is not finished")
            if not stack or stack[-1].bullet != "{":
                raise fail("}: no matching {")
            visible = stack.pop().deferred
        elif sentence.bullet is not None:
            bullet = sentence.bullet
            if stack and stack[-1].bullet == bullet:
                if visible:
                    raise fail(
                        f"bullet {bullet}: previous goal not finished"
                    )
                deferred = stack[-1].deferred
                if not deferred:
                    raise fail(f"bullet {bullet}: no goals left to focus")
                visible = (deferred[0],)
                stack[-1] = _Frame(bullet, deferred[1:])
            else:
                if not visible:
                    raise fail(f"bullet {bullet}: no goals to focus")
                stack.append(_Frame(bullet, visible[1:]))
                visible = (visible[0],)
        if sentence.tactic_text is None:
            continue
        try:
            node = parse_tactic(sentence.tactic_text)
        except ParseError as exc:
            raise fail(f"parse error in {sentence.tactic_text!r}: {exc}")
        if not visible:
            raise fail(f"no goals for tactic {sentence.tactic_text!r}")
        try:
            result = run_tactic(
                env, ProofState(visible, store), node, timeout=timeout
            )
        except TacticError as exc:
            raise fail(f"tactic {sentence.tactic_text!r} failed: {exc}")
        visible = result.goals
        store = result.store
        executed.append(node)
        # Auto-close finished bullet frames (braces close explicitly).
        while (
            not visible
            and stack
            and stack[-1].bullet != "{"
            and not stack[-1].deferred
        ):
            stack.pop()

    # Unwind: any remaining deferred goals flow back into scope.
    while stack:
        frame = stack.pop()
        if frame.bullet == "{":
            raise fail("unclosed { at end of proof")
        if visible or frame.deferred:
            remaining = len(visible) + len(frame.deferred)
            raise fail(f"proof incomplete: {remaining} goal(s) in bullet scope")
    final = ProofState(visible, store)
    if not final.is_complete():
        raise fail(
            f"proof incomplete: {final.num_goals()} open goal(s)"
            if final.goals
            else "proof incomplete: unresolved existentials"
        )
    return ScriptResult(final, executed)


def script_tactics(script: str) -> List[str]:
    """The tactic sentences of a script, without bullets."""
    return [
        s.tactic_text for s in split_sentences(script) if s.tactic_text
    ]
