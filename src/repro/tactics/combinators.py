"""Ltac-style combinators: ``;``, ``try``, ``repeat``, ``||``."""

from __future__ import annotations

from typing import List

from repro.errors import TacticError, TacticTimeout
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, ProofState
from repro.tactics.ast import Fail, Idtac, OrElse, Repeat, Seq, Try
from repro.tactics.base import TacticNode, check_deadline, dispatch, executor

_MAX_REPEAT = 200


def _apply_to_generated(
    env: Environment,
    before_rest: int,
    state: ProofState,
    tac: TacticNode,
) -> ProofState:
    """Apply ``tac`` once to every goal the previous step generated.

    ``before_rest`` is how many trailing goals predate the previous
    step (they are not touched, matching Coq's ``t1; t2``).
    """
    generated = list(state.goals[: state.num_goals() - before_rest])
    rest = state.goals[state.num_goals() - before_rest :]
    done: List[Goal] = []
    store = state.store
    for goal in generated:
        check_deadline()
        sub = ProofState((goal,), store)
        out = dispatch(env, sub, tac)
        done.extend(out.goals)
        store = out.store
    return ProofState(tuple(done) + rest, store)


@executor(Seq)
def run_seq(env: Environment, state: ProofState, node: Seq) -> ProofState:
    rest = state.num_goals() - 1
    mid = dispatch(env, state, node.first)
    return _apply_to_generated(env, rest, mid, node.second)


@executor(Try)
def run_try(env: Environment, state: ProofState, node: Try) -> ProofState:
    snapshot = state.store.snapshot()
    try:
        return dispatch(env, state, node.body)
    except TacticTimeout:
        raise
    except TacticError:
        state.store.restore(snapshot)
        return state


@executor(OrElse)
def run_orelse(env: Environment, state: ProofState, node: OrElse) -> ProofState:
    snapshot = state.store.snapshot()
    try:
        return dispatch(env, state, node.first)
    except TacticTimeout:
        raise
    except TacticError:
        state.store.restore(snapshot)
        return dispatch(env, state, node.second)


@executor(Repeat)
def run_repeat(env: Environment, state: ProofState, node: Repeat) -> ProofState:
    """``repeat t``: apply until failure or no progress, recursing into
    generated subgoals."""
    rest = state.num_goals() - 1
    current = state
    for _ in range(_MAX_REPEAT):
        check_deadline()
        snapshot = current.store.snapshot()
        before_key = current.fingerprint()
        try:
            nxt = _apply_once_everywhere(env, rest, current, node.body)
        except TacticTimeout:
            raise
        except TacticError:
            current.store.restore(snapshot)
            return current
        if nxt.fingerprint() == before_key:
            return nxt
        current = nxt
    raise TacticError("repeat: iteration limit exceeded")


def _apply_once_everywhere(
    env: Environment, rest: int, state: ProofState, tac: TacticNode
) -> ProofState:
    """One sweep of ``tac`` over all non-rest goals; goals where the
    tactic fails are kept as-is.  Fails only if no goal accepts it."""
    generated = list(state.goals[: state.num_goals() - rest])
    tail = state.goals[state.num_goals() - rest :]
    if not generated:
        raise TacticError("repeat: no goals")
    done: List[Goal] = []
    store = state.store
    any_applied = False
    for goal in generated:
        check_deadline()
        sub = ProofState((goal,), store)
        snapshot = store.snapshot()
        try:
            out = dispatch(env, sub, tac)
            done.extend(out.goals)
            store = out.store
            any_applied = True
        except TacticTimeout:
            raise
        except TacticError:
            store.restore(snapshot)
            done.append(goal)
    if not any_applied:
        raise TacticError("repeat: tactic never applied")
    return ProofState(tuple(done) + tail, store)


@executor(Idtac)
def run_idtac(env: Environment, state: ProofState, node: Idtac) -> ProofState:
    return state


@executor(Fail)
def run_fail(env: Environment, state: ProofState, node: Fail) -> ProofState:
    raise TacticError("fail")
