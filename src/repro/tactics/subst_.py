"""``subst``: eliminate variable-defining equations from the context."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState, VarDecl
from repro.kernel.subst import subst_var
from repro.kernel.terms import Eq, Term, Var, free_vars
from repro.tactics.ast import Subst
from repro.tactics.base import executor
from repro.tactics.induction_ import resolved_goal


def _substitutable(
    goal: Goal, hyp: HypDecl, only: Optional[Tuple[str, ...]]
) -> Optional[Tuple[str, Term]]:
    """If ``hyp`` is ``x = t`` (or ``t = x``) with eliminable ``x``."""
    prop = hyp.prop
    if not isinstance(prop, Eq):
        return None
    for var_side, other in ((prop.lhs, prop.rhs), (prop.rhs, prop.lhs)):
        if not isinstance(var_side, Var):
            continue
        name = var_side.name
        if only is not None and name not in only:
            continue
        decl = goal.lookup(name)
        if not isinstance(decl, VarDecl):
            continue
        if name in free_vars(other):
            continue
        return name, other
    return None


def _eliminate(goal: Goal, hyp_name: str, var: str, value: Term) -> Goal:
    decls = []
    for d in goal.decls:
        if d.name == hyp_name or d.name == var:
            continue
        if isinstance(d, HypDecl):
            decls.append(HypDecl(d.name, subst_var(d.prop, var, value)))
        else:
            decls.append(d)
    return Goal(tuple(decls), subst_var(goal.concl, var, value))


@executor(Subst)
def run_subst(env: Environment, state: ProofState, node: Subst) -> ProofState:
    goal = resolved_goal(state, state.focused())
    only = node.names if node.names else None
    changed = True
    performed = 0
    while changed:
        changed = False
        for decl in goal.decls:
            if not isinstance(decl, HypDecl):
                continue
            found = _substitutable(goal, decl, only)
            if found is None:
                continue
            var, value = found
            goal = _eliminate(goal, decl.name, var, value)
            performed += 1
            changed = True
            break
    if only is not None and performed == 0:
        raise TacticError(f"subst: no equation defines {' '.join(only)}")
    return state.replace_focused([goal])
