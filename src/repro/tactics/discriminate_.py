"""``discriminate`` and ``injection``: constructor disjointness and
injectivity."""

from __future__ import annotations

from typing import Optional

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import HypDecl, ProofState
from repro.kernel.reduction import whnf
from repro.kernel.terms import App, Eq, Term, head_const, is_neg, neg_body
from repro.tactics.ast import Discriminate, Injection, Intro
from repro.tactics.base import dispatch, executor
from repro.tactics.common import fresh_hyp_names
from repro.tactics.induction_ import resolved_goal


def _ctor_heads_clash(env: Environment, eq: Eq) -> bool:
    lhs = head_const(eq.lhs)
    rhs = head_const(eq.rhs)
    return (
        lhs is not None
        and rhs is not None
        and env.is_constructor(lhs)
        and env.is_constructor(rhs)
        and lhs != rhs
    )


def _find_clashing_hyp(env: Environment, state: ProofState) -> Optional[str]:
    goal = resolved_goal(state, state.focused())
    for decl in goal.decls:
        if isinstance(decl, HypDecl):
            prop = decl.prop
            if not isinstance(prop, Eq):
                prop = whnf(env, prop)
            if isinstance(prop, Eq) and _ctor_heads_clash(env, prop):
                return decl.name
    return None


@executor(Discriminate)
def run_discriminate(
    env: Environment, state: ProofState, node: Discriminate
) -> ProofState:
    goal = resolved_goal(state, state.focused())
    # Goal form ``a <> b``: introduce and discriminate the equation.
    if node.hyp is None and is_neg(goal.concl):
        state = dispatch(env, state, Intro())
        return run_discriminate(env, state, Discriminate())
    if node.hyp is not None:
        hyp = goal.hyp(node.hyp)
        prop = hyp.prop
        if not isinstance(prop, Eq):
            prop = whnf(env, prop)
        if isinstance(prop, Eq) and _ctor_heads_clash(env, prop):
            return state.replace_focused([])
        raise TacticError(
            f"discriminate: {node.hyp} is not a clashing constructor equality"
        )
    name = _find_clashing_hyp(env, state)
    if name is None:
        raise TacticError("discriminate: no discriminable hypothesis")
    return state.replace_focused([])


@executor(Injection)
def run_injection(env: Environment, state: ProofState, node: Injection) -> ProofState:
    goal = resolved_goal(state, state.focused())
    hyp = goal.hyp(node.hyp)
    prop = hyp.prop
    if not isinstance(prop, Eq):
        prop = whnf(env, prop)
    if not isinstance(prop, Eq):
        raise TacticError(f"injection: {node.hyp} is not an equality")
    lhs_head = head_const(prop.lhs)
    rhs_head = head_const(prop.rhs)
    if (
        lhs_head is None
        or lhs_head != rhs_head
        or not env.is_constructor(lhs_head)
        or not isinstance(prop.lhs, App)
        or not isinstance(prop.rhs, App)
        or len(prop.lhs.args) != len(prop.rhs.args)
    ):
        raise TacticError(
            f"injection: {node.hyp} is not a same-constructor equality"
        )
    pairs = list(zip(prop.lhs.args, prop.rhs.args))
    if node.as_names and len(node.as_names) != len(pairs):
        raise TacticError(
            f"injection: expected {len(pairs)} names, got {len(node.as_names)}"
        )
    names = list(node.as_names) or fresh_hyp_names(goal, len(pairs))
    new_goal = goal
    for name, (a, b) in zip(names, pairs):
        if new_goal.lookup(name) is not None:
            raise TacticError(f"injection: name already used: {name}")
        new_goal = new_goal.add(HypDecl(name, Eq(None, a, b)))
    return state.replace_focused([new_goal])
