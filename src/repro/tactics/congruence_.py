"""``congruence``: ground equational reasoning with constructor rules.

Congruence closure over the hypotheses' ground equations, extended
with the two constructor facts Coq's ``congruence`` knows:

* disjointness — merging two classes whose representatives are headed
  by *different* constructors is a contradiction;
* injectivity — merging two applications of the *same* constructor
  merges their arguments.

The goal is provable when (a) it is an equality already in the
closure, (b) it is a disequality whose assumption would contradict the
closure, or (c) the hypotheses alone are contradictory (a clash or a
violated disequality).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import HypDecl, ProofState
from repro.kernel.subst import alpha_key
from repro.kernel.terms import (
    App,
    Eq,
    FalseP,
    Term,
    head_const,
    is_neg,
    neg_body,
    subterms,
)
from repro.tactics.ast import Congruence
from repro.tactics.base import check_deadline, executor
from repro.tactics.induction_ import resolved_goal


class _Closure:
    def __init__(self, env: Environment) -> None:
        self.env = env
        self.parent: Dict[str, str] = {}
        self.terms: Dict[str, Term] = {}
        self.contradiction = False

    def _register(self, term: Term) -> str:
        key = alpha_key(term)
        if key not in self.parent:
            self.parent[key] = key
            self.terms[key] = term
            if isinstance(term, App):
                self._register(term.fn)
                for arg in term.args:
                    self._register(arg)
        return key

    def find(self, key: str) -> str:
        while self.parent[key] != key:
            self.parent[key] = self.parent[self.parent[key]]
            key = self.parent[key]
        return key

    def union(self, k1: str, k2: str) -> None:
        r1, r2 = self.find(k1), self.find(k2)
        if r1 != r2:
            self.parent[r1] = r2

    def same(self, t1: Term, t2: Term) -> bool:
        return self.find(self._register(t1)) == self.find(self._register(t2))

    def merge(self, t1: Term, t2: Term) -> None:
        self.union(self._register(t1), self._register(t2))

    def _ctor_of(self, term: Term) -> Optional[str]:
        name = head_const(term)
        if name is not None and self.env.is_constructor(name):
            return name
        return None

    def saturate(self) -> None:
        """Fixpoint of congruence, injectivity, and disjointness."""
        for _ in range(200):
            check_deadline()
            changed = False
            keys = list(self.terms)
            apps = [k for k in keys if isinstance(self.terms[k], App)]
            # Congruence: equal heads and pairwise-equal args => equal.
            for i, ka in enumerate(apps):
                ta = self.terms[ka]
                for kb in apps[i + 1 :]:
                    tb = self.terms[kb]
                    if self.find(ka) == self.find(kb):
                        continue
                    assert isinstance(ta, App) and isinstance(tb, App)
                    if len(ta.args) != len(tb.args):
                        continue
                    if not self.same(ta.fn, tb.fn):
                        continue
                    if all(self.same(a, b) for a, b in zip(ta.args, tb.args)):
                        self.union(ka, kb)
                        changed = True
            # Constructor rules across each equivalence class.
            classes: Dict[str, List[str]] = {}
            for key in keys:
                classes.setdefault(self.find(key), []).append(key)
            for members in classes.values():
                ctor_members = [
                    k for k in members if self._ctor_of(self.terms[k])
                ]
                for i, ka in enumerate(ctor_members):
                    for kb in ctor_members[i + 1 :]:
                        ta, tb = self.terms[ka], self.terms[kb]
                        ca, cb = self._ctor_of(ta), self._ctor_of(tb)
                        if ca != cb:
                            self.contradiction = True
                            return
                        args_a = ta.args if isinstance(ta, App) else ()
                        args_b = tb.args if isinstance(tb, App) else ()
                        if len(args_a) != len(args_b):
                            self.contradiction = True
                            return
                        for a, b in zip(args_a, args_b):
                            if not self.same(a, b):
                                self.merge(a, b)
                                changed = True
            if not changed:
                return
        raise TacticError("congruence: closure did not converge")


@executor(Congruence)
def run_congruence(env: Environment, state: ProofState, node: Congruence) -> ProofState:
    goal = resolved_goal(state, state.focused())
    closure = _Closure(env)
    disequalities: List[Tuple[Term, Term]] = []

    for decl in goal.decls:
        if not isinstance(decl, HypDecl):
            continue
        prop = decl.prop
        if isinstance(prop, FalseP):
            return state.replace_focused([])
        if isinstance(prop, Eq):
            closure.merge(prop.lhs, prop.rhs)
        elif is_neg(prop) and isinstance(neg_body(prop), Eq):
            eq = neg_body(prop)
            assert isinstance(eq, Eq)
            # Register both sides now so saturation covers them.
            closure._register(eq.lhs)
            closure._register(eq.rhs)
            disequalities.append((eq.lhs, eq.rhs))

    concl = goal.concl
    target: Optional[Tuple[Term, Term]] = None
    if isinstance(concl, Eq):
        closure._register(concl.lhs)
        closure._register(concl.rhs)
        target = (concl.lhs, concl.rhs)
    elif is_neg(concl) and isinstance(neg_body(concl), Eq):
        # Prove a <> b by assuming a = b and deriving a contradiction.
        eq = neg_body(concl)
        assert isinstance(eq, Eq)
        closure.merge(eq.lhs, eq.rhs)

    closure.saturate()
    if closure.contradiction:
        return state.replace_focused([])
    for lhs, rhs in disequalities:
        if closure.same(lhs, rhs):
            return state.replace_focused([])
    if target is not None and closure.same(*target):
        return state.replace_focused([])
    raise TacticError("congruence: cannot prove the goal")
