"""``simpl`` / ``unfold`` / ``fold``: reduction tactics."""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState
from repro.kernel.reduction import simpl, unfold
from repro.kernel.terms import Term
from repro.tactics.ast import Fold, Simpl, Unfold
from repro.tactics.base import executor


def _apply_reduction(
    state: ProofState,
    in_hyp: Optional[str],
    reduce: Callable[[Term], Term],
) -> ProofState:
    goal = state.focused()
    if in_hyp is None:
        new_goal = goal.with_concl(reduce(state.resolve(goal.concl)))
        return state.replace_focused([new_goal])
    if in_hyp == "*":
        decls = tuple(
            HypDecl(d.name, reduce(state.resolve(d.prop)))
            if isinstance(d, HypDecl)
            else d
            for d in goal.decls
        )
        new_goal = Goal(decls, reduce(state.resolve(goal.concl)))
        return state.replace_focused([new_goal])
    hyp = goal.hyp(in_hyp)
    new_goal = goal.replace_decl(
        in_hyp, HypDecl(in_hyp, reduce(state.resolve(hyp.prop)))
    )
    return state.replace_focused([new_goal])


@executor(Simpl)
def run_simpl(env: Environment, state: ProofState, node: Simpl) -> ProofState:
    return _apply_reduction(state, node.in_hyp, lambda t: simpl(env, t))


@executor(Unfold)
def run_unfold(env: Environment, state: ProofState, node: Unfold) -> ProofState:
    for name in node.names:
        if (
            name not in env.abbreviations
            and name not in env.fixpoints
        ):
            raise TacticError(f"unfold: {name} is not a defined constant")
    return _apply_reduction(
        state, node.in_hyp, lambda t: unfold(env, t, node.names)
    )


@executor(Fold)
def run_fold(env: Environment, state: ProofState, node: Fold) -> ProofState:
    """``fold f``: replace f's unfolded body by the folded constant.

    Only abbreviations are foldable; the body (with parameters as
    metavariable-free patterns) is matched syntactically.
    """
    from repro.kernel.subst import alpha_eq
    from repro.kernel.terms import App, Const, app
    from repro.kernel.unify import MetaStore, unify
    from repro.errors import UnificationError
    from repro.kernel.subst import subst_vars
    from repro.tactics.rewrite_ import _positions, _replace_all

    goal = state.focused()
    concl = state.resolve(goal.concl)
    for name in node.names:
        abbr = env.abbreviations.get(name)
        if abbr is None:
            raise TacticError(f"fold: {name} is not a definition")
        store = MetaStore()
        metas = {p: store.fresh(p) for p, _ in abbr.params}
        pattern = subst_vars(abbr.body, dict(metas))
        for sub in _positions(concl):
            snap = store.snapshot()
            try:
                unify(pattern, sub, store)
            except UnificationError:
                store.restore(snap)
                continue
            args = [store.resolve(metas[p]) for p, _ in abbr.params]
            folded = app(Const(name), *args)
            concl = _replace_all(concl, store.resolve(pattern), folded)
            break
    return state.replace_focused([goal.with_concl(concl)])
