"""Tactic AST node definitions.

One frozen dataclass per tactic form.  ``render()`` reproduces the
concrete syntax, so search transcripts and generated proofs print
exactly what a Coq user would write.  Executors live in the sibling
modules and are registered per node class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.kernel.terms import Term
from repro.tactics.base import TacticNode

__all__ = [
    "Intro",
    "Intros",
    "Apply",
    "Exact",
    "Assumption",
    "Reflexivity",
    "Symmetry",
    "FEqual",
    "Rewrite",
    "RewriteSource",
    "Simpl",
    "Unfold",
    "Fold",
    "Induction",
    "Destruct",
    "Inversion",
    "Constructor",
    "Split",
    "Left",
    "Right",
    "ExistsTac",
    "EExists",
    "Subst",
    "Exfalso",
    "Contradiction",
    "Discriminate",
    "Injection",
    "Specialize",
    "PoseProof",
    "Assert",
    "Revert",
    "Clear",
    "Auto",
    "Trivial",
    "Intuition",
    "Lia",
    "Congruence",
    "Seq",
    "Try",
    "Repeat",
    "OrElse",
    "Idtac",
    "Fail",
]


def _render_in(hyp: Optional[str]) -> str:
    if hyp is None:
        return ""
    if hyp == "*":
        return " in *"
    return f" in {hyp}"


@dataclass(frozen=True)
class Intro(TacticNode):
    name: Optional[str] = None

    def render(self) -> str:
        return f"intro {self.name}" if self.name else "intro"


@dataclass(frozen=True)
class Intros(TacticNode):
    names: Tuple[str, ...] = ()

    def render(self) -> str:
        if not self.names:
            return "intros"
        return "intros " + " ".join(self.names)


@dataclass(frozen=True)
class Apply(TacticNode):
    name: str
    existential: bool = False  # eapply
    in_hyp: Optional[str] = None

    def render(self) -> str:
        head = "eapply" if self.existential else "apply"
        return f"{head} {self.name}{_render_in(self.in_hyp)}"


@dataclass(frozen=True)
class Exact(TacticNode):
    name: str

    def render(self) -> str:
        return f"exact {self.name}"


@dataclass(frozen=True)
class Assumption(TacticNode):
    def render(self) -> str:
        return "assumption"


@dataclass(frozen=True)
class Reflexivity(TacticNode):
    def render(self) -> str:
        return "reflexivity"


@dataclass(frozen=True)
class Symmetry(TacticNode):
    in_hyp: Optional[str] = None

    def render(self) -> str:
        return f"symmetry{_render_in(self.in_hyp)}"


@dataclass(frozen=True)
class FEqual(TacticNode):
    def render(self) -> str:
        return "f_equal"


@dataclass(frozen=True)
class RewriteSource(TacticNode):
    """One arrow-oriented rewrite source (within a rewrite tactic)."""

    name: str
    backwards: bool = False

    def render(self) -> str:
        return ("<- " if self.backwards else "") + self.name


@dataclass(frozen=True)
class Rewrite(TacticNode):
    sources: Tuple[RewriteSource, ...]
    in_hyp: Optional[str] = None
    by_tac: Optional[TacticNode] = None
    setoid: bool = False

    def render(self) -> str:
        head = "setoid_rewrite" if self.setoid else "rewrite"
        body = ", ".join(s.render() for s in self.sources)
        text = f"{head} {body}{_render_in(self.in_hyp)}"
        if self.by_tac is not None:
            text += f" by {self.by_tac.render()}"
        return text


@dataclass(frozen=True)
class Simpl(TacticNode):
    in_hyp: Optional[str] = None

    def render(self) -> str:
        return f"simpl{_render_in(self.in_hyp)}"


@dataclass(frozen=True)
class Unfold(TacticNode):
    names: Tuple[str, ...]
    in_hyp: Optional[str] = None

    def render(self) -> str:
        return f"unfold {', '.join(self.names)}{_render_in(self.in_hyp)}"


@dataclass(frozen=True)
class Fold(TacticNode):
    names: Tuple[str, ...]

    def render(self) -> str:
        return f"fold {', '.join(self.names)}"


@dataclass(frozen=True)
class Induction(TacticNode):
    var: str

    def render(self) -> str:
        return f"induction {self.var}"


@dataclass(frozen=True)
class Destruct(TacticNode):
    target: str  # variable or hypothesis name
    raw_term: Optional[Term] = None  # for destructing a compound term
    pattern: Optional[str] = None  # raw "as" pattern text
    eqn: Optional[str] = None  # "eqn:E" equation hypothesis name

    def render(self) -> str:
        from repro.kernel.pretty import pp_term

        target = (
            f"({pp_term(self.raw_term)})" if self.raw_term is not None else self.target
        )
        suffix = f" as {self.pattern}" if self.pattern else ""
        if self.eqn:
            suffix += f" eqn:{self.eqn}"
        return f"destruct {target}{suffix}"


@dataclass(frozen=True)
class Inversion(TacticNode):
    hyp: str

    def render(self) -> str:
        return f"inversion {self.hyp}"


@dataclass(frozen=True)
class Constructor(TacticNode):
    existential: bool = False

    def render(self) -> str:
        return "econstructor" if self.existential else "constructor"


@dataclass(frozen=True)
class Split(TacticNode):
    def render(self) -> str:
        return "split"


@dataclass(frozen=True)
class Left(TacticNode):
    def render(self) -> str:
        return "left"


@dataclass(frozen=True)
class Right(TacticNode):
    def render(self) -> str:
        return "right"


@dataclass(frozen=True)
class ExistsTac(TacticNode):
    witness: Term

    def render(self) -> str:
        from repro.kernel.pretty import pp_term

        return f"exists {pp_term(self.witness)}"


@dataclass(frozen=True)
class EExists(TacticNode):
    def render(self) -> str:
        return "eexists"


@dataclass(frozen=True)
class Subst(TacticNode):
    names: Tuple[str, ...] = ()

    def render(self) -> str:
        if not self.names:
            return "subst"
        return "subst " + " ".join(self.names)


@dataclass(frozen=True)
class Exfalso(TacticNode):
    def render(self) -> str:
        return "exfalso"


@dataclass(frozen=True)
class Contradiction(TacticNode):
    def render(self) -> str:
        return "contradiction"


@dataclass(frozen=True)
class Discriminate(TacticNode):
    hyp: Optional[str] = None

    def render(self) -> str:
        return f"discriminate {self.hyp}" if self.hyp else "discriminate"


@dataclass(frozen=True)
class Injection(TacticNode):
    hyp: str
    as_names: Tuple[str, ...] = ()

    def render(self) -> str:
        suffix = f" as {' '.join(self.as_names)}" if self.as_names else ""
        return f"injection {self.hyp}{suffix}"


@dataclass(frozen=True)
class Specialize(TacticNode):
    hyp: str
    args: Tuple[Term, ...]

    def render(self) -> str:
        from repro.kernel.pretty import pp_term

        parts = " ".join(_atom(pp_term(a)) for a in self.args)
        return f"specialize ({self.hyp} {parts})"


def _atom(text: str) -> str:
    return f"({text})" if " " in text else text


@dataclass(frozen=True)
class PoseProof(TacticNode):
    name: str
    args: Tuple[Term, ...] = ()
    as_name: Optional[str] = None

    def render(self) -> str:
        from repro.kernel.pretty import pp_term

        inner = self.name
        if self.args:
            inner += " " + " ".join(_atom(pp_term(a)) for a in self.args)
            inner = f"({inner})"
        suffix = f" as {self.as_name}" if self.as_name else ""
        return f"pose proof {inner}{suffix}"


@dataclass(frozen=True)
class Assert(TacticNode):
    prop: Term
    name: Optional[str] = None

    def render(self) -> str:
        from repro.kernel.pretty import pp_term

        if self.name:
            return f"assert ({self.name} : {pp_term(self.prop)})"
        return f"assert ({pp_term(self.prop)})"


@dataclass(frozen=True)
class Revert(TacticNode):
    names: Tuple[str, ...]

    def render(self) -> str:
        return "revert " + " ".join(self.names)


@dataclass(frozen=True)
class Clear(TacticNode):
    names: Tuple[str, ...]

    def render(self) -> str:
        return "clear " + " ".join(self.names)


@dataclass(frozen=True)
class Auto(TacticNode):
    depth: Optional[int] = None
    existential: bool = False  # eauto
    using: Tuple[str, ...] = ()

    def render(self) -> str:
        head = "eauto" if self.existential else "auto"
        if self.depth is not None:
            head += f" {self.depth}"
        if self.using:
            head += " using " + ", ".join(self.using)
        return head


@dataclass(frozen=True)
class Trivial(TacticNode):
    def render(self) -> str:
        return "trivial"


@dataclass(frozen=True)
class Intuition(TacticNode):
    def render(self) -> str:
        return "intuition"


@dataclass(frozen=True)
class Lia(TacticNode):
    legacy_name: bool = False  # rendered as omega (FSCQ-era Coq)

    def render(self) -> str:
        return "omega" if self.legacy_name else "lia"


@dataclass(frozen=True)
class Congruence(TacticNode):
    def render(self) -> str:
        return "congruence"


@dataclass(frozen=True)
class Seq(TacticNode):
    first: TacticNode
    second: TacticNode

    def render(self) -> str:
        return f"{self.first.render()}; {self.second.render()}"


@dataclass(frozen=True)
class Try(TacticNode):
    body: TacticNode

    def render(self) -> str:
        return f"try {_wrap(self.body)}"


@dataclass(frozen=True)
class Repeat(TacticNode):
    body: TacticNode

    def render(self) -> str:
        return f"repeat {_wrap(self.body)}"


@dataclass(frozen=True)
class OrElse(TacticNode):
    first: TacticNode
    second: TacticNode

    def render(self) -> str:
        return f"{_wrap(self.first)} || {_wrap(self.second)}"


@dataclass(frozen=True)
class Idtac(TacticNode):
    def render(self) -> str:
        return "idtac"


@dataclass(frozen=True)
class Fail(TacticNode):
    def render(self) -> str:
        return "fail"


def _wrap(node: TacticNode) -> str:
    text = node.render()
    if isinstance(node, (Seq, OrElse)):
        return f"({text})"
    return text
