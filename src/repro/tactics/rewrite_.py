"""``rewrite`` (and ``setoid_rewrite``): equational rewriting.

Semantics follow Coq's ``rewrite``:

* the first binder-free subterm matching the equation's left side
  (pre-order, leftmost-outermost) selects the instance;
* *all* occurrences of that instance are replaced;
* rewriting never reaches under binders (Coq needs ``setoid_rewrite``
  with a proper ``Proper`` instance for that; we accept the keyword as
  an alias but keep plain-rewrite semantics);
* conditional equations (``P -> lhs = rhs``) emit side goals, solved
  eagerly by the ``by`` tactic when present.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import TacticError, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState
from repro.kernel.reduction import make_whnf
from repro.kernel.subst import alpha_eq
from repro.kernel.terms import (
    App,
    And,
    Eq,
    Exists,
    Forall,
    Impl,
    Lam,
    Or,
    Term,
    app,
    metas_of,
)
from repro.kernel.unify import unify
from repro.tactics.ast import Rewrite, RewriteSource
from repro.tactics.base import dispatch, executor
from repro.tactics.common import instantiate_statement, statement_of_name


def _positions(term: Term):
    """Yield binder-free subterms, pre-order (outermost first).

    Connective nodes themselves are not rewriteable instances (an
    equation's sides are object-level terms, not propositions), but we
    descend through them.
    """
    if not isinstance(term, (Impl, And, Or, Eq)):
        yield term
    if isinstance(term, App):
        yield from _positions(term.fn)
        for arg in term.args:
            yield from _positions(arg)
    elif isinstance(term, (Impl, And, Or)):
        yield from _positions(term.lhs)
        yield from _positions(term.rhs)
    elif isinstance(term, Eq):
        yield from _positions(term.lhs)
        yield from _positions(term.rhs)
    # Forall/Exists/Lam bodies are not rewriteable positions.


def _replace_all(term: Term, instance: Term, replacement: Term) -> Term:
    if alpha_eq(term, instance):
        return replacement
    if isinstance(term, App):
        fn = _replace_all(term.fn, instance, replacement)
        args = tuple(_replace_all(a, instance, replacement) for a in term.args)
        return app(fn, *args)
    if isinstance(term, (Impl, And, Or)):
        return type(term)(
            _replace_all(term.lhs, instance, replacement),
            _replace_all(term.rhs, instance, replacement),
        )
    if isinstance(term, Eq):
        return Eq(
            term.ty,
            _replace_all(term.lhs, instance, replacement),
            _replace_all(term.rhs, instance, replacement),
        )
    return term


def rewrite_once(
    env: Environment,
    state: ProofState,
    source: RewriteSource,
    in_hyp: Optional[str],
    label: str,
) -> Tuple[ProofState, int]:
    """Apply one rewrite source; returns (state, number of side goals)."""
    goal = state.focused()
    _, statement = statement_of_name(env, goal, source.name)
    store = state.store
    _, premises, core = instantiate_statement(statement, store)
    core = store.resolve(core)
    if not isinstance(core, Eq):
        raise TacticError(f"{label}: {source.name} is not an equation")
    pattern, replacement = (
        (core.rhs, core.lhs) if source.backwards else (core.lhs, core.rhs)
    )
    if in_hyp is None:
        target = state.resolve(goal.concl)
    else:
        target = state.resolve(goal.hyp(in_hyp).prop)

    whnf = make_whnf(env)
    matched = False
    for sub in _positions(target):
        snap = store.snapshot()
        try:
            unify(store.resolve(pattern), sub, store, whnf)
            matched = True
            break
        except UnificationError:
            store.restore(snap)
    if not matched:
        raise TacticError(f"{label}: found no subterm matching {source.name}")

    instance = store.resolve(pattern)
    new_subterm = store.resolve(replacement)
    if metas_of(instance) or metas_of(new_subterm):
        raise TacticError(f"{label}: unable to infer a complete instance")
    side_props: List[Term] = []
    for premise in premises:
        resolved = store.resolve(premise)
        if metas_of(resolved):
            raise TacticError(f"{label}: side condition has unresolved variables")
        side_props.append(resolved)

    new_target = _replace_all(target, instance, new_subterm)
    if in_hyp is None:
        new_goal = goal.with_concl(new_target)
    else:
        new_goal = goal.replace_decl(in_hyp, HypDecl(in_hyp, new_target))
    side_goals = [new_goal.with_concl(p) if in_hyp else goal.with_concl(p) for p in side_props]
    return state.replace_focused([new_goal] + side_goals), len(side_goals)


@executor(Rewrite)
def run_rewrite(env: Environment, state: ProofState, node: Rewrite) -> ProofState:
    total_sides = 0
    for source in node.sources:
        state, sides = rewrite_once(env, state, source, node.in_hyp, node.render())
        total_sides += sides
    if total_sides == 0:
        return state
    if node.by_tac is None:
        return state
    # Solve side goals with the ``by`` tactic; each must close fully.
    main = state.goals[0]
    sides = list(state.goals[1 : 1 + total_sides])
    rest = state.goals[1 + total_sides :]
    for side in sides:
        sub_state = ProofState((side,), state.store)
        solved = dispatch(env, sub_state, node.by_tac)
        if solved.goals:
            raise TacticError(
                f"{node.render()}: 'by' tactic left side condition open"
            )
        state = ProofState(state.goals, solved.store)
    return ProofState((main,) + rest, state.store)
