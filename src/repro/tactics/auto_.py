"""``auto`` / ``eauto`` / ``trivial`` / ``intuition``.

``auto`` is depth-limited backward chaining in the Coq style: it
introduces products, closes goals by assumption/reflexivity, and
applies local hypotheses plus the environment's hint database
(``Hint Resolve`` lemmas and ``Hint Constructors`` intro rules).
``auto`` never fails — if it cannot close the focused goal it leaves
the state untouched (in the proof search this shows up as a duplicate
state, i.e. an invalid tactic, exactly as a useless ``auto`` behaves
in the paper's system).

``eauto`` additionally allows candidate applications to defer
instantiation through metavariables, solved across sibling premises
Prolog-style with backtracking.

``intuition`` decomposes propositional structure (conjunction,
disjunction, ``False``/``True``, implications by modus ponens) and
runs ``auto`` at the leaves, leaving residual subgoals like Coq's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import TacticError, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState, VarDecl
from repro.kernel.reduction import make_whnf, whnf
from repro.kernel.subst import alpha_eq, fresh_name, subst_var
from repro.kernel.terms import (
    And,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Or,
    Term,
    TrueP,
    Var,
    free_vars,
    is_neg,
    metas_of,
    neg_body,
)
from repro.kernel.unify import MetaStore, unify
from repro.tactics.ast import Auto, Intuition, Trivial
from repro.tactics.base import check_deadline, executor
from repro.tactics.common import instantiate_statement

_DEFAULT_DEPTH = 5


class _Prover:
    def __init__(
        self,
        env: Environment,
        store: MetaStore,
        allow_metas: bool,
        extra_hints: Sequence[Tuple[str, Term]] = (),
    ) -> None:
        self.env = env
        self.store = store
        self.allow_metas = allow_metas
        self.whnf = make_whnf(env)
        self.hints = list(extra_hints) + env.auto_hints()

    # ------------------------------------------------------------------

    def solve(self, goal: Goal, depth: int) -> bool:
        check_deadline()
        concl = self.store.resolve(goal.concl)
        if isinstance(concl, TrueP):
            return True
        if isinstance(concl, (Forall, Impl)):
            return self.solve(self._intro(goal, concl), depth)
        if self._by_assumption(goal, concl):
            return True
        if self._by_reflexivity(concl):
            return True
        if self._by_contradiction(goal):
            return True
        if depth <= 0:
            return False
        candidates: List[Term] = [
            d.prop for d in goal.decls if isinstance(d, HypDecl)
        ]
        candidates.extend(stmt for _, stmt in self.hints)
        for statement in candidates:
            snapshot = self.store.snapshot()
            if self._try_apply(goal, statement, concl, depth):
                return True
            self.store.restore(snapshot)
        return False

    # ------------------------------------------------------------------

    def _intro(self, goal: Goal, concl: Term) -> Goal:
        taken = set(goal.names())
        if isinstance(concl, Forall):
            name = fresh_name(concl.var, taken)
            body = subst_var(concl.body, concl.var, Var(name))
            assert concl.ty is not None
            return Goal(goal.decls + (VarDecl(name, concl.ty),), body)
        assert isinstance(concl, Impl)
        name = fresh_name("H", taken)
        return Goal(goal.decls + (HypDecl(name, concl.lhs),), concl.rhs)

    def _by_assumption(self, goal: Goal, concl: Term) -> bool:
        for decl in goal.decls:
            if not isinstance(decl, HypDecl):
                continue
            prop = self.store.resolve(decl.prop)
            if alpha_eq(prop, concl):
                return True
            snapshot = self.store.snapshot()
            try:
                unify(prop, concl, self.store, self.whnf)
                return True
            except UnificationError:
                self.store.restore(snapshot)
        return False

    def _by_reflexivity(self, concl: Term) -> bool:
        if not isinstance(concl, Eq):
            return False
        snapshot = self.store.snapshot()
        try:
            unify(concl.lhs, concl.rhs, self.store, self.whnf)
            return True
        except UnificationError:
            self.store.restore(snapshot)
            return False

    def _by_contradiction(self, goal: Goal) -> bool:
        hyps = [d for d in goal.decls if isinstance(d, HypDecl)]
        for hyp in hyps:
            prop = self.store.resolve(hyp.prop)
            if isinstance(prop, FalseP):
                return True
            if is_neg(prop):
                body = neg_body(prop)
                for other in hyps:
                    if alpha_eq(self.store.resolve(other.prop), body):
                        return True
        return False

    def _try_apply(
        self, goal: Goal, statement: Term, concl: Term, depth: int
    ) -> bool:
        metas, premises, conclusion = instantiate_statement(
            self.store.resolve(statement), self.store
        )
        try:
            unify(conclusion, concl, self.store, self.whnf)
        except UnificationError:
            return False
        if not self.allow_metas:
            for premise in premises:
                if metas_of(self.store.resolve(premise)):
                    return False
        for premise in premises:
            sub = goal.with_concl(self.store.resolve(premise))
            if not self.solve(sub, depth - 1):
                return False
        if not self.allow_metas:
            for meta in metas:
                if not self.store.is_solved(meta.uid):
                    return False
        return True


def _run_auto(
    env: Environment, state: ProofState, node: Auto
) -> ProofState:
    goal = state.focused()
    extra: List[Tuple[str, Term]] = []
    for name in node.using:
        statement = env.statement_of(name)
        if statement is None:
            raise TacticError(f"auto: unknown lemma {name}")
        extra.append((name, statement))
    prover = _Prover(env, state.store, node.existential, extra)
    depth = node.depth if node.depth is not None else _DEFAULT_DEPTH
    snapshot = state.store.snapshot()
    if prover.solve(goal, depth):
        return state.replace_focused([])
    state.store.restore(snapshot)
    return state  # auto never fails


@executor(Auto)
def run_auto(env: Environment, state: ProofState, node: Auto) -> ProofState:
    return _run_auto(env, state, node)


@executor(Trivial)
def run_trivial(env: Environment, state: ProofState, node: Trivial) -> ProofState:
    return _run_auto(env, state, Auto(depth=1))


# ----------------------------------------------------------------------
# intuition
# ----------------------------------------------------------------------

_INTUITION_STEPS = 200


def _decompose(goal: Goal, steps: List[int]) -> List[Goal]:
    """One propositional decomposition pass; returns replacement goals."""
    steps[0] += 1
    if steps[0] > _INTUITION_STEPS:
        return [goal]
    check_deadline()
    concl = goal.concl
    # Goal-side rules.
    if isinstance(concl, (Forall, Impl)):
        taken = set(goal.names())
        if isinstance(concl, Forall):
            if concl.ty is None:
                return [goal]
            name = fresh_name(concl.var, taken)
            body = subst_var(concl.body, concl.var, Var(name))
            return _decompose(
                Goal(goal.decls + (VarDecl(name, concl.ty),), body), steps
            )
        name = fresh_name("H", taken)
        return _decompose(
            Goal(goal.decls + (HypDecl(name, concl.lhs),), concl.rhs), steps
        )
    if isinstance(concl, And):
        return _decompose(goal.with_concl(concl.lhs), steps) + _decompose(
            goal.with_concl(concl.rhs), steps
        )
    # Hypothesis-side rules.
    for decl in goal.decls:
        if not isinstance(decl, HypDecl):
            continue
        prop = decl.prop
        if isinstance(prop, FalseP):
            return []
        if isinstance(prop, TrueP):
            return _decompose(goal.remove_decl(decl.name), steps)
        if isinstance(prop, And):
            base = goal.remove_decl(decl.name)
            taken = set(base.names())
            n1 = fresh_name(decl.name, taken)
            taken.add(n1)
            n2 = fresh_name("H", taken)
            return _decompose(
                base.add(HypDecl(n1, prop.lhs)).add(HypDecl(n2, prop.rhs)),
                steps,
            )
        if isinstance(prop, Or):
            base = goal.remove_decl(decl.name)
            left = base.add(HypDecl(decl.name, prop.lhs))
            right = base.add(HypDecl(decl.name, prop.rhs))
            return _decompose(left, steps) + _decompose(right, steps)
        if isinstance(prop, Exists) and prop.ty is not None:
            base = goal.remove_decl(decl.name)
            taken = set(base.names())
            var_name = fresh_name(prop.var, taken)
            body = subst_var(prop.body, prop.var, Var(var_name))
            return _decompose(
                base.add(VarDecl(var_name, prop.ty)).add(
                    HypDecl(decl.name, body)
                ),
                steps,
            )
    # Modus ponens on implication hypotheses with available premises.
    for decl in goal.decls:
        if not isinstance(decl, HypDecl) or not isinstance(decl.prop, Impl):
            continue
        if is_neg(decl.prop):
            continue
        lhs, rhs = decl.prop.lhs, decl.prop.rhs
        for other in goal.decls:
            if (
                isinstance(other, HypDecl)
                and other.name != decl.name
                and alpha_eq(other.prop, lhs)
            ):
                base = goal.replace_decl(decl.name, HypDecl(decl.name, rhs))
                return _decompose(base, steps)
    return [goal]


@executor(Intuition)
def run_intuition(env: Environment, state: ProofState, node: Intuition) -> ProofState:
    goal = state.focused()
    steps = [0]
    residual = _decompose(goal, steps)
    survivors: List[Goal] = []
    for sub in residual:
        prover = _Prover(env, state.store, allow_metas=False)
        snapshot = state.store.snapshot()
        if not prover.solve(sub, _DEFAULT_DEPTH):
            state.store.restore(snapshot)
            survivors.append(sub)
    return state.replace_focused(survivors)
