"""``inversion``: case analysis on a derivation, with equation solving.

For a hypothesis ``H : P t1 .. tn`` where ``P`` is an inductive
predicate, each constructor whose conclusion could have produced ``H``
yields a subgoal containing the constructor's premises plus the
equations relating constructor arguments to ``t1..tn``.  Equations are
simplified in the Coq style:

* constructor clash (``S x = 0``) — the case is impossible and is
  dropped (this is how ``inversion`` closes goals outright);
* injectivity (``S x = S y``) — split into argument equations;
* solved variables (``x = t``, ``x`` not in ``t``) — substituted
  throughout the goal;
* anything else stays as an equation hypothesis.

``inversion`` also handles the primitive connectives (``/\\``,
``\\/``, ``exists``, ``False``, ``=``) so proofs may invert any
hypothesis, as in Coq.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState, VarDecl
from repro.kernel.subst import fresh_name, subst_var
from repro.kernel.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Or,
    Term,
    TrueP,
    Var,
    free_vars,
    head_const,
    strip_foralls,
    strip_impls,
)
from repro.kernel.types import Type
from repro.tactics.ast import Inversion
from repro.tactics.base import executor
from repro.tactics.induction_ import resolved_goal

__all__ = ["run_inversion"]


def _ctor_head(env: Environment, term: Term) -> Optional[str]:
    name = head_const(term)
    if name is not None and env.is_constructor(name):
        return name
    return None


class _Case:
    """A candidate inversion case being simplified."""

    def __init__(
        self,
        goal: Goal,
        new_vars: List[VarDecl],
        premises: List[Term],
        equations: List[Tuple[Term, Term]],
    ) -> None:
        self.decls: List = list(goal.decls) + list(new_vars)
        self.premises = list(premises)
        self.equations = list(equations)
        self.leftover: List[Tuple[Term, Term]] = []
        self.concl = goal.concl

    def substitute(self, name: str, value: Term) -> None:
        self.decls = [
            HypDecl(d.name, subst_var(d.prop, name, value))
            if isinstance(d, HypDecl)
            else d
            for d in self.decls
            if d.name != name
        ]
        self.premises = [subst_var(p, name, value) for p in self.premises]
        self.equations = [
            (subst_var(a, name, value), subst_var(b, name, value))
            for a, b in self.equations
        ]
        self.leftover = [
            (subst_var(a, name, value), subst_var(b, name, value))
            for a, b in self.leftover
        ]
        self.concl = subst_var(self.concl, name, value)

    def is_var_decl(self, name: str) -> bool:
        return any(isinstance(d, VarDecl) and d.name == name for d in self.decls)


def _simplify(env: Environment, case: _Case) -> bool:
    """Solve the case's equations; False when the case is impossible."""
    steps = 0
    while case.equations:
        steps += 1
        if steps > 500:
            raise TacticError("inversion: equation solving diverged")
        lhs, rhs = case.equations.pop(0)
        if lhs == rhs:
            continue
        lhs_ctor = _ctor_head(env, lhs)
        rhs_ctor = _ctor_head(env, rhs)
        if lhs_ctor and rhs_ctor:
            if lhs_ctor != rhs_ctor:
                return False  # constructor clash: impossible case
            lhs_args = lhs.args if isinstance(lhs, App) else ()
            rhs_args = rhs.args if isinstance(rhs, App) else ()
            if len(lhs_args) != len(rhs_args):
                return False
            case.equations.extend(zip(lhs_args, rhs_args))
            continue
        solved = False
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(a, Var) and case.is_var_decl(a.name):
                if a.name not in free_vars(b):
                    case.substitute(a.name, b)
                    solved = True
                    break
                if _ctor_head(env, b) is not None:
                    return False  # x = C(.. x ..): cyclic, impossible
        if not solved:
            case.leftover.append((lhs, rhs))
    return True


def _finish_case(case: _Case, eq_ty: Optional[Type] = None) -> Goal:
    decls = list(case.decls)
    taken = {d.name for d in decls}

    def fresh(base: str) -> str:
        name = fresh_name(base if base not in taken else "H", taken)
        if name in taken:  # pragma: no cover - fresh_name guarantees
            raise AssertionError
        taken.add(name)
        return name

    for premise in case.premises:
        decls.append(HypDecl(fresh("H"), premise))
    for lhs, rhs in case.leftover:
        decls.append(HypDecl(fresh("H"), Eq(eq_ty, lhs, rhs)))
    return Goal(tuple(decls), case.concl)


def _invert_pred(
    env: Environment, state: ProofState, goal: Goal, prop: Term
) -> ProofState:
    pred_name = head_const(prop)
    pred = env.preds.get(pred_name) if pred_name else None
    if pred is None:
        raise TacticError("inversion: not an inductive hypothesis")
    hyp_args = prop.args if isinstance(prop, App) else ()

    subgoals: List[Goal] = []
    for ctor in pred.constructors:
        binders, rest = strip_foralls(ctor.statement)
        premises, conclusion = strip_impls(rest)
        if head_const(conclusion) != pred_name:
            raise TacticError(
                f"inversion: malformed constructor {ctor.name}"
            )
        ctor_args = conclusion.args if isinstance(conclusion, App) else ()
        if len(ctor_args) != len(hyp_args):
            continue
        # Freshen the constructor's universally bound variables as new
        # context variables.
        taken = set(goal.names())
        renaming: Dict[str, Term] = {}
        new_vars: List[VarDecl] = []
        for name, ty in binders:
            fresh = fresh_name(name, taken)
            taken.add(fresh)
            renaming[name] = Var(fresh)
            if ty is None:
                raise TacticError(
                    f"inversion: untyped binder in {ctor.name}"
                )
            new_vars.append(VarDecl(fresh, ty))
        from repro.kernel.subst import subst_vars

        premises = [subst_vars(p, renaming) for p in premises]
        ctor_args = tuple(subst_vars(a, renaming) for a in ctor_args)
        equations = list(zip(ctor_args, hyp_args))
        case = _Case(goal, new_vars, premises, equations)
        if _simplify(env, case):
            subgoals.append(_finish_case(case))
    return state.replace_focused(subgoals)


@executor(Inversion)
def run_inversion(env: Environment, state: ProofState, node: Inversion) -> ProofState:
    goal = resolved_goal(state, state.focused())
    hyp = goal.hyp(node.hyp)
    prop = hyp.prop

    if isinstance(prop, FalseP):
        return state.replace_focused([])
    if isinstance(prop, TrueP):
        return state.replace_focused([goal])
    if isinstance(prop, And):
        taken = set(goal.names())
        n1 = fresh_name("H", taken)
        taken.add(n1)
        n2 = fresh_name("H", taken)
        new_goal = goal.add(HypDecl(n1, prop.lhs)).add(HypDecl(n2, prop.rhs))
        return state.replace_focused([new_goal])
    if isinstance(prop, Or):
        taken = set(goal.names())
        n1 = fresh_name("H", taken)
        left = goal.add(HypDecl(n1, prop.lhs))
        right = goal.add(HypDecl(n1, prop.rhs))
        return state.replace_focused([left, right])
    if isinstance(prop, Exists):
        taken = set(goal.names())
        var_name = fresh_name(prop.var, taken)
        taken.add(var_name)
        hyp_name = fresh_name("H", taken)
        if prop.ty is None:
            raise TacticError("inversion: existential binder type unknown")
        body = subst_var(prop.body, prop.var, Var(var_name))
        new_goal = goal.add(VarDecl(var_name, prop.ty)).add(
            HypDecl(hyp_name, body)
        )
        return state.replace_focused([new_goal])
    if isinstance(prop, Eq):
        case = _Case(goal, [], [], [(prop.lhs, prop.rhs)])
        if not _simplify(env, case):
            return state.replace_focused([])
        return state.replace_focused([_finish_case(case, prop.ty)])
    return _invert_pred(env, state, goal, prop)
