"""Context-management tactics: assert, revert, clear, pose proof,
specialize."""

from __future__ import annotations

from typing import List

from repro.errors import TacticError, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import HypDecl, ProofState, VarDecl
from repro.kernel.reduction import make_whnf
from repro.kernel.subst import subst_var
from repro.kernel.terms import Forall as ForallTerm
from repro.kernel.terms import Impl, Meta, Term, Var, free_vars, metas_of
from repro.kernel.typecheck import elaborate_term
from repro.kernel.types import PROP
from repro.kernel.unify import unify
from repro.tactics.ast import Assert, Clear, PoseProof, Revert, Specialize
from repro.tactics.base import executor
from repro.tactics.common import (
    elaborate_in_goal,
    fresh_hyp_names,
    statement_of_name,
)


@executor(Assert)
def run_assert(env: Environment, state: ProofState, node: Assert) -> ProofState:
    goal = state.focused()
    prop = elaborate_in_goal(env, goal, node.prop, expected=PROP)
    name = node.name or fresh_hyp_names(goal, 1)[0]
    if goal.lookup(name) is not None:
        raise TacticError(f"assert: name already used: {name}")
    prove_it = goal.with_concl(prop)
    use_it = goal.add(HypDecl(name, prop))
    return state.replace_focused([prove_it, use_it])


@executor(Revert)
def run_revert(env: Environment, state: ProofState, node: Revert) -> ProofState:
    goal = state.focused()
    concl = state.resolve(goal.concl)
    # Process right-to-left so earlier names end up outermost.
    for name in reversed(node.names):
        decl = goal.lookup(name)
        if decl is None:
            raise TacticError(f"revert: no declaration named {name}")
        for other in goal.decls:
            if other.name == name or not isinstance(other, HypDecl):
                continue
            if name in free_vars(other.prop):
                raise TacticError(
                    f"revert: {name} is used by hypothesis {other.name}"
                )
        if isinstance(decl, HypDecl):
            concl = Impl(state.resolve(decl.prop), concl)
        else:
            concl = ForallTerm(decl.name, decl.ty, concl)
        goal = goal.remove_decl(name)
    return state.replace_focused([goal.with_concl(concl)])


@executor(Clear)
def run_clear(env: Environment, state: ProofState, node: Clear) -> ProofState:
    goal = state.focused()
    for name in node.names:
        decl = goal.lookup(name)
        if decl is None:
            raise TacticError(f"clear: no declaration named {name}")
        if name in free_vars(goal.concl):
            raise TacticError(f"clear: {name} is used in the conclusion")
        for other in goal.decls:
            if other.name == name:
                continue
            if isinstance(other, HypDecl) and name in free_vars(other.prop):
                raise TacticError(f"clear: {name} is used by {other.name}")
        goal = goal.remove_decl(name)
    return state.replace_focused([goal])


def _specialize_statement(
    env: Environment,
    state: ProofState,
    statement: Term,
    args,
    label: str,
) -> Term:
    """Instantiate a universal statement with explicit arguments."""
    goal = state.focused()
    current = state.resolve(statement)
    whnf = make_whnf(env)
    for raw in args:
        current = state.resolve(current)
        if not isinstance(current, (ForallTerm, Impl)):
            # Unfold transparent heads (e.g. ``incl``) like Coq does.
            current = whnf(current)
        if isinstance(current, ForallTerm):
            value = elaborate_in_goal(env, goal, raw, expected=current.ty)
            current = subst_var(current.body, current.var, value)
            continue
        if isinstance(current, Impl):
            # The argument must name a proof of the premise.
            if not isinstance(raw, Var):
                raise TacticError(
                    f"{label}: expected a hypothesis name for premise"
                )
            _, arg_stmt = statement_of_name(env, goal, raw.name)
            arg_stmt = state.resolve(arg_stmt)
            try:
                unify(current.lhs, arg_stmt, state.store, whnf)
            except UnificationError as exc:
                raise TacticError(f"{label}: {exc}") from exc
            current = current.rhs
            continue
        raise TacticError(f"{label}: too many arguments")
    resolved = state.resolve(current)
    if metas_of(resolved):
        raise TacticError(f"{label}: cannot infer instantiation")
    return resolved


@executor(Specialize)
def run_specialize(
    env: Environment, state: ProofState, node: Specialize
) -> ProofState:
    goal = state.focused()
    decl = goal.lookup(node.hyp)
    if not isinstance(decl, HypDecl):
        raise TacticError(f"specialize: no hypothesis named {node.hyp}")
    new_prop = _specialize_statement(
        env, state, decl.prop, node.args, node.render()
    )
    new_goal = goal.replace_decl(node.hyp, HypDecl(node.hyp, new_prop))
    return state.replace_focused([new_goal])


@executor(PoseProof)
def run_pose_proof(
    env: Environment, state: ProofState, node: PoseProof
) -> ProofState:
    goal = state.focused()
    _, statement = statement_of_name(env, goal, node.name)
    prop = _specialize_statement(env, state, statement, node.args, node.render())
    name = node.as_name or fresh_hyp_names(goal, 1)[0]
    if goal.lookup(name) is not None:
        raise TacticError(f"pose proof: name already used: {name}")
    return state.replace_focused([goal.add(HypDecl(name, prop))])
