"""``intro`` / ``intros``: move products into the context."""

from __future__ import annotations

from typing import Optional

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import HypDecl, ProofState, VarDecl
from repro.kernel.reduction import whnf
from repro.kernel.subst import subst_var
from repro.kernel.terms import Forall, Impl, Term, Var
from repro.tactics.ast import Intro, Intros
from repro.tactics.base import executor


def intro_one(
    env: Environment,
    state: ProofState,
    name: Optional[str],
    allow_whnf: bool = True,
) -> ProofState:
    """Introduce exactly one product; raises when there is none."""
    goal = state.focused()
    concl = state.resolve(goal.concl)
    if not isinstance(concl, (Forall, Impl)) and allow_whnf:
        concl = whnf(env, concl)
    if isinstance(concl, Forall):
        if concl.ty is None:
            raise TacticError("cannot introduce: binder type unknown")
        if name is not None and goal.lookup(name) is not None:
            raise TacticError(f"name already used: {name}")
        fresh = name or goal.fresh(concl.var)
        body = subst_var(concl.body, concl.var, Var(fresh))
        new_goal = goal.add(VarDecl(fresh, concl.ty)).with_concl(body)
        return state.replace_focused([new_goal])
    if isinstance(concl, Impl):
        if name is not None and goal.lookup(name) is not None:
            raise TacticError(f"name already used: {name}")
        fresh = name or goal.fresh("H")
        new_goal = goal.add(HypDecl(fresh, concl.lhs)).with_concl(concl.rhs)
        return state.replace_focused([new_goal])
    raise TacticError("nothing to introduce")


@executor(Intro)
def run_intro(env: Environment, state: ProofState, node: Intro) -> ProofState:
    return intro_one(env, state, node.name)


@executor(Intros)
def run_intros(env: Environment, state: ProofState, node: Intros) -> ProofState:
    if node.names:
        for name in node.names:
            state = intro_one(env, state, name)
        return state
    # Bare ``intros``: as many as possible, never failing (Coq no-op OK).
    # Stops at a negation: ``~ P`` is ``not P`` in Coq — a constant, not
    # a product — even though the kernel encodes it as ``P -> False``.
    from repro.kernel.terms import is_neg

    while True:
        goal = state.focused()
        concl = state.resolve(goal.concl)
        if not isinstance(concl, (Forall, Impl)) or is_neg(concl):
            return state
        state = intro_one(env, state, None, allow_whnf=False)
