"""Shared helpers for tactic executors."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TacticError, TypeError_, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState, VarDecl
from repro.kernel.reduction import make_whnf, simpl
from repro.kernel.subst import alpha_eq, subst_var, subst_vars
from repro.kernel.terms import (
    Forall,
    Impl,
    Meta,
    Term,
    Var,
    free_vars,
    metas_of,
)
from repro.kernel.typecheck import elaborate_term, infer_type
from repro.kernel.types import Type
from repro.kernel.unify import MetaStore, unify

__all__ = [
    "statement_of_name",
    "instantiate_statement",
    "elaborate_in_goal",
    "infer_in_goal",
    "unsolved_metas",
    "apply_statement",
    "hyps_of",
    "fresh_hyp_names",
]


def statement_of_name(
    env: Environment, goal: Goal, name: str
) -> Tuple[str, Term]:
    """Resolve ``name`` to a hypothesis or global lemma statement.

    Returns ``('hyp', prop)`` or ``('lemma', statement)``.  Hypotheses
    shadow lemmas, as in Coq.
    """
    decl = goal.lookup(name)
    if isinstance(decl, HypDecl):
        return "hyp", decl.prop
    if isinstance(decl, VarDecl):
        raise TacticError(f"{name} is a variable, not a proof")
    statement = env.statement_of(name)
    if statement is None:
        raise TacticError(f"unknown lemma or hypothesis: {name}")
    return "lemma", statement


def instantiate_statement(
    statement: Term, store: MetaStore
) -> Tuple[List[Meta], Tuple[Term, ...], Term]:
    """Strip leading quantifiers/premises off a statement.

    Universal binders become fresh metavariables; implication premises
    are collected.  Quantifiers *behind* premises are also stripped
    (``forall x, P x -> forall y, Q``), matching how ``apply`` digs for
    the final conclusion.

    Returns ``(metas, premises, conclusion)``.
    """
    metas: List[Meta] = []
    premises: List[Term] = []
    current = statement
    while True:
        if isinstance(current, Forall):
            meta = store.fresh(current.var)
            metas.append(meta)
            current = subst_var(current.body, current.var, meta)
        elif isinstance(current, Impl):
            premises.append(current.lhs)
            current = current.rhs
        else:
            break
    return metas, tuple(premises), current


def elaborate_in_goal(
    env: Environment, goal: Goal, raw: Term, expected: Optional[Type] = None
) -> Term:
    """Elaborate a parsed tactic argument in the goal's context."""
    try:
        return elaborate_term(env, raw, goal.var_types(), expected)
    except TypeError_ as exc:
        raise TacticError(str(exc)) from exc


def infer_in_goal(env: Environment, goal: Goal, raw: Term) -> Tuple[Term, Type]:
    try:
        return infer_type(env, raw, goal.var_types())
    except TypeError_ as exc:
        raise TacticError(str(exc)) from exc


def unsolved_metas(store: MetaStore, *terms: Term) -> List[int]:
    """Uids of metas in ``terms`` still unsolved in ``store``."""
    out: List[int] = []
    for term in terms:
        for uid in sorted(metas_of(store.resolve(term))):
            if uid not in out:
                out.append(uid)
    return out


def apply_statement(
    env: Environment,
    state: ProofState,
    statement: Term,
    allow_metas: bool,
    label: str,
) -> ProofState:
    """Core of ``apply``/``eapply``: unify conclusion, emit premises.

    Products are stripped on demand: first the statement's syntactic
    ``forall``/``->`` prefix; if the remaining conclusion does not
    unify with the goal, it is weak-head normalized (e.g. unfolding
    ``incl``) to expose further products, and the attempt repeats —
    mirroring how Coq's ``apply`` digs through definitions.

    With ``allow_metas=False`` any unsolved metavariable is rejected
    (Coq: "cannot infer the instantiation").
    """
    goal = state.focused()
    store = state.store
    whnf = make_whnf(env)
    goal_concl = state.resolve(goal.concl)

    # Minimal-strip-first: try to unify the statement as-is, and only
    # peel one product (or unfold one definition layer) per failure.
    # This keeps e.g. ``apply in_nil`` working on a ``~ ...`` goal (the
    # negation's premise is part of the conclusion, not an argument).
    metas: List[Meta] = []
    premises: List[Term] = []
    conclusion = statement
    last_error: Exception = TacticError(f"{label}: does not apply")
    for _ in range(64):
        snap = store.snapshot()
        try:
            unify(store.resolve(conclusion), goal_concl, store, whnf)
            break
        except UnificationError as exc:
            store.restore(snap)
            last_error = exc
        current = store.resolve(conclusion)
        if isinstance(current, Forall):
            meta = store.fresh(current.var)
            metas.append(meta)
            conclusion = subst_var(current.body, current.var, meta)
        elif isinstance(current, Impl):
            premises.append(current.lhs)
            conclusion = current.rhs
        else:
            reduced = whnf(current)
            if reduced == current:
                raise TacticError(f"{label}: {last_error}")
            conclusion = reduced
    else:
        raise TacticError(f"{label}: {last_error}")

    new_goals = []
    for premise in premises:
        resolved = store.resolve(premise)
        if not allow_metas and metas_of(resolved):
            raise TacticError(
                f"{label}: cannot infer instantiation (use eapply)"
            )
        new_goals.append(goal.with_concl(resolved))
    if not allow_metas:
        for meta in metas:
            if not store.is_solved(meta.uid) and not any(
                meta.uid in metas_of(store.resolve(p)) for p in premises
            ):
                raise TacticError(
                    f"{label}: cannot infer instantiation (use eapply)"
                )
    return state.replace_focused(new_goals)


def hyps_of(goal: Goal) -> List[HypDecl]:
    return [d for d in goal.decls if isinstance(d, HypDecl)]


def fresh_hyp_names(goal: Goal, count: int, base: str = "H") -> List[str]:
    """``count`` fresh hypothesis names for ``goal``."""
    taken = set(goal.names())
    out: List[str] = []
    for _ in range(count):
        name = base
        if name in taken:
            index = 0
            while f"{base}{index}" in taken:
                index += 1
            name = f"{base}{index}"
        taken.add(name)
        out.append(name)
    return out
