"""Parser from tactic text (one sentence, no trailing period) to AST.

This is the front door for LLM-generated tactics: the search engine
feeds each candidate string through :func:`parse_tactic`; a
:class:`~repro.errors.ParseError` counts as "rejected by Coq".

Combinator precedence matches Ltac: ``;`` binds loosest (left
associative), then ``||``, then the prefix combinators ``try`` /
``repeat``, then atomic tactics and parentheses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.kernel.parser import Lexer, TermParser
from repro.kernel.terms import Term
from repro.tactics import ast
from repro.tactics.base import TacticNode

__all__ = ["parse_tactic"]

_NO_ARG = {
    "assumption": ast.Assumption,
    "reflexivity": ast.Reflexivity,
    "f_equal": ast.FEqual,
    "split": ast.Split,
    "left": ast.Left,
    "right": ast.Right,
    "eexists": ast.EExists,
    "exfalso": ast.Exfalso,
    "contradiction": ast.Contradiction,
    "trivial": ast.Trivial,
    "intuition": ast.Intuition,
    "congruence": ast.Congruence,
    "idtac": ast.Idtac,
    "fail": ast.Fail,
}

_STOPPERS = {";", "||", ")", ".", "|", "]"}


class _TacticParser:
    def __init__(self, lexer: Lexer) -> None:
        self.lx = lexer

    # -- combinators ------------------------------------------------------

    def tactic(self) -> TacticNode:
        node = self.alt()
        while self.lx.accept("sym", ";"):
            node = ast.Seq(node, self.alt())
        return node

    def alt(self) -> TacticNode:
        node = self.prefixed()
        while self.lx.accept("sym", "||"):
            node = ast.OrElse(node, self.prefixed())
        return node

    def prefixed(self) -> TacticNode:
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text == "try":
            self.lx.next()
            return ast.Try(self.prefixed())
        if tok.kind == "ident" and tok.text == "repeat":
            self.lx.next()
            return ast.Repeat(self.prefixed())
        if tok.kind == "sym" and tok.text == "(":
            self.lx.next()
            inner = self.tactic()
            self.lx.expect("sym", ")")
            return inner
        return self.atomic()

    # -- atomic tactics --------------------------------------------------

    def atomic(self) -> TacticNode:
        tok = self.lx.expect("ident")
        head = tok.text
        builder = getattr(self, f"_t_{head}", None)
        if builder is not None:
            return builder()
        cls = _NO_ARG.get(head)
        if cls is not None:
            return cls()
        raise ParseError(f"unknown tactic: {head}", tok.pos)

    # Helpers ------------------------------------------------------------

    def _at_stop(self) -> bool:
        tok = self.lx.peek()
        if tok.kind == "eof":
            return True
        if tok.kind == "sym" and tok.text in _STOPPERS:
            return True
        return False

    def _name_list(self) -> Tuple[str, ...]:
        names: List[str] = []
        while self.lx.peek().kind == "ident" and self.lx.peek().text not in (
            "in",
            "by",
            "as",
            "using",
        ):
            names.append(self.lx.next().text)
        return tuple(names)

    def _comma_names(self) -> Tuple[str, ...]:
        names = [self.lx.expect("ident").text]
        while self.lx.accept("sym", ","):
            names.append(self.lx.expect("ident").text)
        return tuple(names)

    def _in_clause(self) -> Optional[str]:
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text == "in":
            self.lx.next()
            if self.lx.accept("sym", "*"):
                return "*"
            return self.lx.expect("ident").text
        return None

    def _term(self) -> Term:
        return TermParser(self.lx, set()).term()

    def _term_atom(self) -> Term:
        parser = TermParser(self.lx, set())
        return parser._atom()  # shares our lexer position

    # Individual tactics ---------------------------------------------------

    def _t_intro(self) -> TacticNode:
        if self._at_stop():
            return ast.Intro()
        return ast.Intro(self.lx.expect("ident").text)

    def _t_intros(self) -> TacticNode:
        return ast.Intros(self._name_list())

    def _t_apply(self, existential: bool = False) -> TacticNode:
        name = self.lx.expect("ident").text
        in_hyp = self._in_clause()
        return ast.Apply(name, existential=existential, in_hyp=in_hyp)

    def _t_eapply(self) -> TacticNode:
        return self._t_apply(existential=True)

    def _t_exact(self) -> TacticNode:
        return ast.Exact(self.lx.expect("ident").text)

    def _t_symmetry(self) -> TacticNode:
        return ast.Symmetry(self._in_clause())

    def _t_rewrite(self, setoid: bool = False) -> TacticNode:
        sources = [self._rewrite_source()]
        while self.lx.accept("sym", ","):
            sources.append(self._rewrite_source())
        in_hyp = self._in_clause()
        by_tac: Optional[TacticNode] = None
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text == "by":
            self.lx.next()
            by_tac = self.prefixed()
        return ast.Rewrite(tuple(sources), in_hyp=in_hyp, by_tac=by_tac, setoid=setoid)

    def _t_setoid_rewrite(self) -> TacticNode:
        return self._t_rewrite(setoid=True)

    def _rewrite_source(self) -> ast.RewriteSource:
        backwards = False
        if self.lx.accept("sym", "<"):
            self.lx.expect("sym", "-")
            backwards = True
        elif self.lx.peek().kind == "sym" and self.lx.peek().text == "<-":
            # '<-' never survives the lexer (no such symbol); kept for safety.
            self.lx.next()
            backwards = True
        name = self.lx.expect("ident").text
        return ast.RewriteSource(name, backwards)

    def _t_simpl(self) -> TacticNode:
        return ast.Simpl(self._in_clause())

    def _t_unfold(self) -> TacticNode:
        names = self._comma_names()
        return ast.Unfold(names, self._in_clause())

    def _t_fold(self) -> TacticNode:
        return ast.Fold(self._comma_names())

    def _t_induction(self) -> TacticNode:
        return ast.Induction(self.lx.expect("ident").text)

    def _t_destruct(self) -> TacticNode:
        tok = self.lx.peek()
        raw_term: Optional[Term] = None
        if tok.kind == "sym" and tok.text == "(":
            self.lx.next()
            raw_term = self._term()
            self.lx.expect("sym", ")")
            target = ""
        else:
            target = self.lx.expect("ident").text
        pattern = None
        nxt = self.lx.peek()
        if nxt.kind == "ident" and nxt.text == "as":
            self.lx.next()
            pattern = self._intro_pattern()
        eqn = None
        nxt = self.lx.peek()
        if nxt.kind == "ident" and nxt.text == "eqn":
            self.lx.next()
            self.lx.expect("sym", ":")
            eqn = self.lx.expect("ident").text
        return ast.Destruct(target, raw_term=raw_term, pattern=pattern, eqn=eqn)

    def _intro_pattern(self) -> str:
        """Capture a bracketed intro pattern as raw text."""
        tok = self.lx.expect("sym", "[")
        depth = 1
        parts = ["["]
        while depth:
            tok = self.lx.next()
            if tok.kind == "eof":
                raise ParseError("unterminated intro pattern", tok.pos)
            if tok.kind == "sym" and tok.text == "[":
                depth += 1
            elif tok.kind == "sym" and tok.text == "]":
                depth -= 1
            parts.append(tok.text)
        return " ".join(parts).replace("[ ", "[").replace(" ]", "]")

    def _t_inversion(self) -> TacticNode:
        return ast.Inversion(self.lx.expect("ident").text)

    def _t_inversion_clear(self) -> TacticNode:
        return ast.Inversion(self.lx.expect("ident").text)

    def _t_constructor(self) -> TacticNode:
        return ast.Constructor()

    def _t_econstructor(self) -> TacticNode:
        return ast.Constructor(existential=True)

    def _t_exists(self) -> TacticNode:
        return ast.ExistsTac(self._term())

    def _t_subst(self) -> TacticNode:
        return ast.Subst(self._name_list())

    def _t_discriminate(self) -> TacticNode:
        if self._at_stop():
            return ast.Discriminate()
        return ast.Discriminate(self.lx.expect("ident").text)

    def _t_injection(self) -> TacticNode:
        hyp = self.lx.expect("ident").text
        as_names: Tuple[str, ...] = ()
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text == "as":
            self.lx.next()
            as_names = self._name_list()
        return ast.Injection(hyp, as_names)

    def _t_specialize(self) -> TacticNode:
        self.lx.expect("sym", "(")
        hyp = self.lx.expect("ident").text
        args: List[Term] = []
        while not (self.lx.peek().kind == "sym" and self.lx.peek().text == ")"):
            args.append(self._term_atom())
        self.lx.expect("sym", ")")
        if not args:
            raise ParseError("specialize needs at least one argument", 0)
        return ast.Specialize(hyp, tuple(args))

    def _t_pose(self) -> TacticNode:
        tok = self.lx.expect("ident")
        if tok.text != "proof":
            raise ParseError("expected 'pose proof'", tok.pos)
        args: Tuple[Term, ...] = ()
        if self.lx.accept("sym", "("):
            name = self.lx.expect("ident").text
            arg_list: List[Term] = []
            while not (self.lx.peek().kind == "sym" and self.lx.peek().text == ")"):
                arg_list.append(self._term_atom())
            self.lx.expect("sym", ")")
            args = tuple(arg_list)
        else:
            name = self.lx.expect("ident").text
        as_name = None
        nxt = self.lx.peek()
        if nxt.kind == "ident" and nxt.text == "as":
            self.lx.next()
            as_name = self.lx.expect("ident").text
        return ast.PoseProof(name, args, as_name)

    def _t_assert(self) -> TacticNode:
        self.lx.expect("sym", "(")
        name: Optional[str] = None
        tok = self.lx.peek()
        nxt = self.lx.peek(1)
        if tok.kind == "ident" and nxt.kind == "sym" and nxt.text == ":":
            name = self.lx.next().text
            self.lx.next()  # ':'
        prop = self._term()
        self.lx.expect("sym", ")")
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text == "as":
            self.lx.next()
            name = self.lx.expect("ident").text
        return ast.Assert(prop, name)

    def _t_revert(self) -> TacticNode:
        names = self._name_list()
        if not names:
            raise ParseError("revert needs names", 0)
        return ast.Revert(names)

    def _t_clear(self) -> TacticNode:
        names = self._name_list()
        if not names:
            raise ParseError("clear needs names", 0)
        return ast.Clear(names)

    def _t_auto(self, existential: bool = False) -> TacticNode:
        depth: Optional[int] = None
        tok = self.lx.peek()
        if tok.kind == "num":
            depth = int(self.lx.next().text)
        using: Tuple[str, ...] = ()
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text == "using":
            self.lx.next()
            using = self._comma_names()
        return ast.Auto(depth=depth, existential=existential, using=using)

    def _t_eauto(self) -> TacticNode:
        return self._t_auto(existential=True)

    def _t_lia(self) -> TacticNode:
        return ast.Lia()

    def _t_omega(self) -> TacticNode:
        return ast.Lia(legacy_name=True)


def parse_tactic(text: str) -> TacticNode:
    """Parse one tactic sentence (without its trailing period)."""
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    lexer = Lexer(text)
    parser = _TacticParser(lexer)
    node = parser.tactic()
    if not lexer.at_eof():
        tok = lexer.peek()
        raise ParseError(f"trailing input in tactic: {tok.text!r}", tok.pos)
    return node
