"""``lia`` / ``omega``: linear arithmetic over ``nat``.

A self-contained decision procedure in the spirit of Coq's ``lia``:

1. Hypotheses and the (negated) goal are translated to integer linear
   constraints ``sum(c_i * x_i) + k <= 0``.  Every ``nat`` atom also
   contributes ``x >= 0``.
2. Truncated subtraction and disequalities are handled by *case
   splitting* into a small DNF (``a - b`` splits on ``a >= b``;
   ``a <> b`` splits into ``a < b`` or ``a > b``).
3. Each conjunctive branch is refuted by Fourier–Motzkin elimination
   with gcd tightening (integer rounding of single-variable bounds).

Rational-infeasibility refutation is sound for the integers (ℤ ⊆ ℚ);
the gcd tightening recovers many integer-only refutations.  The
procedure is therefore sound and only *incomplete* the way a budgeted
``lia`` is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState
from repro.kernel.reduction import simpl
from repro.kernel.subst import alpha_key
from repro.kernel.terms import (
    App,
    Const,
    Eq,
    FalseP,
    Term,
    Var,
    as_nat_lit,
    head_const,
    is_neg,
    neg_body,
)
from repro.kernel.types import NAT, TCon
from repro.tactics.ast import Lia
from repro.tactics.base import check_deadline, executor
from repro.tactics.induction_ import resolved_goal

_MAX_BRANCHES = 64

# A linear expression: mapping atom-key -> coefficient, plus constant.
Linear = Tuple[Dict[str, int], int]
# A constraint is linear <= 0 over integers.
Constraint = Dict[str, int]  # includes special key "" for the constant


def _lin(const: int = 0, **_: int) -> Linear:
    return {}, const


def _add(a: Linear, b: Linear, scale: int = 1) -> Linear:
    coeffs = dict(a[0])
    for key, val in b[0].items():
        coeffs[key] = coeffs.get(key, 0) + scale * val
        if coeffs[key] == 0:
            del coeffs[key]
    return coeffs, a[1] + scale * b[1]


def _scale(a: Linear, k: int) -> Linear:
    return {key: k * val for key, val in a[0].items() if k * val != 0}, k * a[1]


class _Translator:
    """Translates nat terms/props into branched linear constraints."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.atoms: Dict[str, Term] = {}
        # Each branch is a list of constraints (linear <= 0).
        self.branches: List[List[Linear]] = [[]]

    # -- branching ---------------------------------------------------------

    def _branch(self, alternatives: List[List[Linear]]) -> None:
        """Cross-product the current DNF with the given alternatives."""
        new_branches = []
        for branch in self.branches:
            for alt in alternatives:
                new_branches.append(branch + alt)
        if len(new_branches) > _MAX_BRANCHES:
            raise TacticError("lia: case split too large")
        self.branches = new_branches

    def add_constraint(self, linear: Linear) -> None:
        for branch in self.branches:
            branch.append(linear)

    # -- atoms ---------------------------------------------------------------

    def atom(self, term: Term) -> Linear:
        key = alpha_key(term)
        if key not in self.atoms:
            self.atoms[key] = term
            # nat atoms are non-negative: -x <= 0.
            self.add_constraint(({key: -1}, 0))
        return {key: 1}, 0

    # -- terms ----------------------------------------------------------------

    def term(self, term: Term) -> Linear:
        lit = as_nat_lit(term)
        if lit is not None:
            return _lin(lit)
        head = head_const(term)
        args = term.args if isinstance(term, App) else ()
        if head == "S" and len(args) == 1:
            return _add(self.term(args[0]), _lin(1))
        if head == "add" and len(args) == 2:
            return _add(self.term(args[0]), self.term(args[1]))
        if head == "mult" and len(args) == 2:
            left = self.term(args[0])
            right = self.term(args[1])
            if not left[0]:
                return _scale(right, left[1])
            if not right[0]:
                return _scale(left, right[1])
            return self.atom(term)
        if head == "sub" and len(args) == 2:
            return self._truncated_sub(term, args[0], args[1])
        return self.atom(term)

    def _truncated_sub(self, term: Term, a: Term, b: Term) -> Linear:
        """``a - b`` on nat: split on ``a >= b``."""
        result = self.atom(term)  # fresh variable d = a - b
        la = self.term(a)
        lb = self.term(b)
        d_minus = _add(result, la, -1)  # d - a
        # Branch 1: a >= b  =>  b - a <= 0, d = a - b
        #   (d - a + b <= 0 and a - b - d <= 0)
        ge_branch = [
            _add(lb, la, -1),
            _add(d_minus, lb),
            _add(_scale(_add(d_minus, lb), -1), _lin(0)),
        ]
        # Branch 2: a < b  =>  a - b + 1 <= 0, d = 0
        lt_branch = [
            _add(_add(la, lb, -1), _lin(1)),
            result,  # d <= 0 (with d >= 0 it pins d = 0)
        ]
        self._branch([ge_branch, lt_branch])
        return result

    # -- propositions -----------------------------------------------------------

    def prop(self, prop: Term, positive: bool) -> bool:
        """Add ``prop`` (or its negation) as constraints.

        Returns False when the proposition is not arithmetic.
        """
        if is_neg(prop):
            return self.prop(neg_body(prop), not positive)
        head = head_const(prop)
        args = prop.args if isinstance(prop, App) else ()
        if head in ("le", "lt") and len(args) == 2:
            la = self.term(args[0])
            lb = self.term(args[1])
            offset = 1 if head == "lt" else 0
            if positive:
                # a (+1) - b <= 0
                self.add_constraint(_add(_add(la, lb, -1), _lin(offset)))
            else:
                # ¬(a (+offset) <= b)  =>  b + 1 - a - offset <= 0
                self.add_constraint(
                    _add(_add(lb, la, -1), _lin(1 - offset))
                )
            return True
        if isinstance(prop, Eq):
            if not self._is_nat_eq(prop):
                return False
            la = self.term(prop.lhs)
            lb = self.term(prop.rhs)
            diff = _add(la, lb, -1)
            if positive:
                self.add_constraint(diff)
                self.add_constraint(_scale(diff, -1))
            else:
                # a <> b: a < b or b < a.
                self._branch(
                    [
                        [_add(diff, _lin(1))],
                        [_add(_scale(diff, -1), _lin(1))],
                    ]
                )
            return True
        return False

    def _is_nat_eq(self, eq: Eq) -> bool:
        if eq.ty == NAT:
            return True
        if isinstance(eq.ty, TCon) and eq.ty != NAT:
            return False
        # Untyped or type-variable-typed equality: inspect the sides.
        # Untyped equality: accept when either side looks arithmetic.
        for side in (eq.lhs, eq.rhs):
            if as_nat_lit(side) is not None:
                return True
            if head_const(side) in ("S", "add", "sub", "mult"):
                return True
        return False


def _normalize(linear: Linear) -> Optional[Linear]:
    """gcd-tighten ``linear <= 0``; None when trivially satisfiable."""
    coeffs, const = linear
    coeffs = {k: v for k, v in coeffs.items() if v != 0}
    if not coeffs:
        return ({}, const) if const > 0 else None
    g = 0
    for v in coeffs.values():
        g = math.gcd(g, abs(v))
    if g > 1:
        coeffs = {k: v // g for k, v in coeffs.items()}
        const = -((-const) // g)  # exact integer ceil(const / g)
    return coeffs, const


def _infeasible(constraints: List[Linear]) -> bool:
    """Fourier–Motzkin refutation of a conjunction of ``linear <= 0``."""
    work: List[Linear] = []
    for c in constraints:
        n = _normalize(c)
        if n is None:
            continue
        if not n[0]:
            return True  # 0 <= -const with const > 0: contradiction
        work.append(n)

    variables = sorted({v for coeffs, _ in work for v in coeffs})
    for var in variables:
        check_deadline()
        uppers = [c for c in work if c[0].get(var, 0) > 0]
        lowers = [c for c in work if c[0].get(var, 0) < 0]
        others = [c for c in work if c[0].get(var, 0) == 0]
        new: List[Linear] = others
        for up in uppers:
            for lo in lowers:
                a = up[0][var]
                b = -lo[0][var]
                combined = _add(_scale(up, b), _scale(lo, a))
                combined[0].pop(var, None)
                n = _normalize(combined)
                if n is None:
                    continue
                if not n[0]:
                    return True
                new.append(n)
        if len(new) > 2000:
            return False  # give up rather than blow up
        work = new
    return False


@executor(Lia)
def run_lia(env: Environment, state: ProofState, node: Lia) -> ProofState:
    goal = resolved_goal(state, state.focused())
    translator = _Translator(env)

    used_any = False
    for decl in goal.decls:
        if isinstance(decl, HypDecl):
            prop = simpl(env, decl.prop)
            if isinstance(prop, FalseP):
                return state.replace_focused([])
            if translator.prop(prop, positive=True):
                used_any = True

    concl = simpl(env, goal.concl)
    if isinstance(concl, FalseP):
        if not used_any:
            raise TacticError("lia: no arithmetic hypotheses")
    else:
        if not translator.prop(concl, positive=False):
            raise TacticError("lia: goal is not linear arithmetic")

    for branch in translator.branches:
        check_deadline()
        if not _infeasible(branch):
            raise TacticError("lia: cannot prove the goal")
    return state.replace_focused([])
