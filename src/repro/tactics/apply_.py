"""``apply`` / ``eapply`` / ``exact`` / ``assumption``."""

from __future__ import annotations

from repro.errors import TacticError, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import HypDecl, ProofState
from repro.kernel.reduction import make_whnf
from repro.kernel.subst import alpha_eq
from repro.kernel.terms import metas_of
from repro.kernel.unify import unify
from repro.tactics.ast import Apply, Assumption, Exact
from repro.tactics.base import executor
from repro.tactics.common import (
    apply_statement,
    instantiate_statement,
    statement_of_name,
)


@executor(Apply)
def run_apply(env: Environment, state: ProofState, node: Apply) -> ProofState:
    goal = state.focused()
    _, statement = statement_of_name(env, goal, node.name)
    if node.in_hyp is not None:
        return _apply_in(env, state, statement, node)
    return apply_statement(
        env, state, statement, allow_metas=node.existential, label=node.render()
    )


def _apply_in(
    env: Environment, state: ProofState, statement, node: Apply
) -> ProofState:
    """Forward reasoning: ``apply L in H``.

    As in Coq, the *first* premise of ``L`` (after its leading
    universals) is unified with ``H``; ``H`` then becomes the rest of
    the chain with the inferred instantiation.
    """
    from repro.kernel.terms import Forall, Impl
    from repro.kernel.subst import subst_var

    goal = state.focused()
    hyp = goal.hyp(node.in_hyp)
    store = state.store

    current = statement
    while isinstance(current, Forall):
        meta = store.fresh(current.var)
        current = subst_var(current.body, current.var, meta)
    if not isinstance(current, Impl):
        raise TacticError(f"{node.render()}: lemma has no premise to match")
    whnf = make_whnf(env)
    target = state.resolve(hyp.prop)
    try:
        unify(store.resolve(current.lhs), target, store, whnf)
    except UnificationError as exc:
        raise TacticError(
            f"{node.render()}: {node.in_hyp} does not match the premise"
        ) from exc
    new_prop = store.resolve(current.rhs)
    if not node.existential and metas_of(new_prop):
        raise TacticError(f"{node.render()}: cannot infer instantiation")
    new_goal = goal.replace_decl(node.in_hyp, HypDecl(node.in_hyp, new_prop))
    return state.replace_focused([new_goal])


@executor(Exact)
def run_exact(env: Environment, state: ProofState, node: Exact) -> ProofState:
    goal = state.focused()
    _, statement = statement_of_name(env, goal, node.name)
    new_state = apply_statement(
        env, state, statement, allow_metas=False, label=node.render()
    )
    if new_state.num_goals() >= state.num_goals():
        raise TacticError(f"{node.render()}: does not close the goal")
    return new_state


@executor(Assumption)
def run_assumption(
    env: Environment, state: ProofState, node: Assumption
) -> ProofState:
    goal = state.focused()
    concl = state.resolve(goal.concl)
    whnf = make_whnf(env)
    for decl in goal.decls:
        if not isinstance(decl, HypDecl):
            continue
        prop = state.resolve(decl.prop)
        if alpha_eq(prop, concl):
            return state.replace_focused([])
        # Fall back to unification (solves goal metas, handles
        # conversion), mirroring Coq's assumption-up-to-conversion.
        snap = state.store.snapshot()
        try:
            unify(prop, concl, state.store, whnf)
            return state.replace_focused([])
        except UnificationError:
            state.store.restore(snap)
    raise TacticError("assumption: no matching hypothesis")
