"""``induction``: structural induction on a context variable.

Mirrors Coq's behaviour:

* if the variable is still universally quantified in the conclusion,
  leading binders are introduced up to (and including) it first;
* hypotheses depending on the variable are automatically generalized
  (reverted into the conclusion), so the induction hypothesis
  quantifies over them;
* one subgoal per constructor, with constructor arguments added to the
  context and an induction hypothesis for each *directly* recursive
  argument (nested recursion — e.g. through ``list`` — gets none,
  matching Coq's default scheme).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TacticError, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState, VarDecl
from repro.kernel.inductives import DataConstructor, Inductive
from repro.kernel.subst import fresh_name, subst_var
from repro.kernel.terms import Const, Impl, Term, Var, app, free_vars
from repro.kernel.types import TCon, Type, apply_tsubst, unify_types
from repro.tactics.ast import Induction
from repro.tactics.base import executor
from repro.tactics.intro import intro_one

_TYPE_NAME_HINTS = {
    "nat": "n",
    "bool": "b",
    "list": "l",
    "option": "o",
    "prod": "p",
    "string": "s",
    "dirtree": "t",
}


def arg_name_hint(ty: Type, fallback: str = "x") -> str:
    if isinstance(ty, TCon):
        return _TYPE_NAME_HINTS.get(ty.name, fallback)
    return fallback


def instantiated_constructors(
    env: Environment, ind: Inductive, actual: Type
) -> List[Tuple[DataConstructor, Tuple[Type, ...]]]:
    """Constructor list with argument types instantiated at ``actual``."""
    try:
        tsubst = unify_types(ind.applied(), actual)
    except UnificationError as exc:
        raise TacticError(f"cannot instantiate {ind.name} at {actual}") from exc
    out = []
    for ctor in ind.constructors:
        arg_types = tuple(apply_tsubst(tsubst, t) for t in ctor.arg_types)
        out.append((ctor, arg_types))
    return out


def split_variable(
    env: Environment,
    goal: Goal,
    var: str,
    with_ih: bool,
    ih_base: Optional[str] = None,
) -> List[Goal]:
    """Case-split (and optionally induct on) context variable ``var``."""
    decl = goal.lookup(var)
    if decl is None:
        raise TacticError(f"no variable named {var}")
    if not isinstance(decl, VarDecl):
        raise TacticError(f"{var} is a hypothesis, not a variable")
    ind = env.inductive_for_type(decl.ty)
    if ind is None:
        raise TacticError(f"{var} : {decl.ty} is not an inductive datatype")

    # For induction, hypotheses that mention the variable are
    # generalized into the motive (Coq does this automatically so the
    # IH quantifies over them).  For destruct there is no IH: the
    # variable is simply replaced by each constructor form everywhere,
    # so dependent hypotheses stay in place (substituted per case).
    reverted: List[HypDecl] = []
    kept: List = []
    for d in goal.decls:
        if d.name == var:
            continue
        if with_ih and isinstance(d, HypDecl) and var in free_vars(d.prop):
            reverted.append(d)
        else:
            kept.append(d)
    motive = goal.concl
    for hyp in reversed(reverted):
        motive = Impl(hyp.prop, motive)

    cases: List[Goal] = []
    for ctor, arg_types in instantiated_constructors(env, ind, decl.ty):
        taken = {d.name for d in kept}
        arg_decls: List[VarDecl] = []
        ih_decls: List[HypDecl] = []
        arg_vars: List[Term] = []
        for i, arg_ty in enumerate(arg_types):
            hint = (
                ctor.arg_hints[i]
                if i < len(ctor.arg_hints)
                else arg_name_hint(arg_ty)
            )
            name = fresh_name(hint, taken)
            taken.add(name)
            arg_decls.append(VarDecl(name, arg_ty))
            arg_vars.append(Var(name))
            if with_ih and ind.is_recursive_arg(arg_ty):
                ih_name = fresh_name(f"IH{ih_base or var}", taken)
                taken.add(ih_name)
                ih_decls.append(
                    HypDecl(ih_name, subst_var(motive, var, Var(name)))
                )
        instance = app(Const(ctor.name), *arg_vars)
        concl = subst_var(motive, var, instance)
        case_decls = tuple(
            HypDecl(d.name, subst_var(d.prop, var, instance))
            if isinstance(d, HypDecl)
            else d
            for d in kept
        )
        cases.append(Goal(case_decls + tuple(arg_decls) + tuple(ih_decls), concl))
    return cases


def intro_up_to(env: Environment, state: ProofState, var: str) -> ProofState:
    """Introduce leading binders until ``var`` enters the context."""
    from repro.kernel.terms import Forall

    for _ in range(64):
        goal = state.focused()
        if goal.lookup(var) is not None:
            return state
        concl = state.resolve(goal.concl)
        if not isinstance(concl, Forall):
            raise TacticError(f"no quantified variable named {var}")
        state = intro_one(env, state, None, allow_whnf=False)
    raise TacticError(f"no quantified variable named {var}")


def resolved_goal(state: ProofState, goal: Goal) -> Goal:
    """The goal with all metavariable solutions substituted in."""
    decls = tuple(
        HypDecl(d.name, state.resolve(d.prop)) if isinstance(d, HypDecl) else d
        for d in goal.decls
    )
    return Goal(decls, state.resolve(goal.concl))


@executor(Induction)
def run_induction(env: Environment, state: ProofState, node: Induction) -> ProofState:
    state = intro_up_to(env, state, node.var)
    goal = resolved_goal(state, state.focused())
    cases = split_variable(env, goal, node.var, with_ih=True, ih_base=node.var)
    return state.replace_focused(cases)
