"""Logical-connective tactics: split, left/right, exists, exfalso..."""

from __future__ import annotations

from repro.errors import TacticError, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import HypDecl, ProofState
from repro.kernel.reduction import make_whnf, whnf
from repro.kernel.subst import alpha_eq, subst_var
from repro.kernel.terms import (
    And,
    Exists,
    FalseP,
    Or,
    Term,
    TrueP,
    head_const,
    is_neg,
    neg_body,
)
from repro.kernel.unify import unify
from repro.tactics.ast import (
    Constructor,
    EExists,
    Exfalso,
    Contradiction,
    ExistsTac,
    Left,
    Right,
    Split,
)
from repro.tactics.base import executor
from repro.tactics.common import apply_statement, elaborate_in_goal


def _conn_concl(env: Environment, state: ProofState) -> Term:
    """The focused conclusion, weak-head normalized to expose connectives."""
    concl = state.resolve(state.focused().concl)
    if not isinstance(concl, (And, Or, Exists, TrueP, FalseP)):
        concl = whnf(env, concl)
    return concl


@executor(Split)
def run_split(env: Environment, state: ProofState, node: Split) -> ProofState:
    goal = state.focused()
    concl = _conn_concl(env, state)
    if not isinstance(concl, And):
        raise TacticError("split: goal is not a conjunction")
    return state.replace_focused(
        [goal.with_concl(concl.lhs), goal.with_concl(concl.rhs)]
    )


@executor(Left)
def run_left(env: Environment, state: ProofState, node: Left) -> ProofState:
    goal = state.focused()
    concl = _conn_concl(env, state)
    if not isinstance(concl, Or):
        raise TacticError("left: goal is not a disjunction")
    return state.replace_focused([goal.with_concl(concl.lhs)])


@executor(Right)
def run_right(env: Environment, state: ProofState, node: Right) -> ProofState:
    goal = state.focused()
    concl = _conn_concl(env, state)
    if not isinstance(concl, Or):
        raise TacticError("right: goal is not a disjunction")
    return state.replace_focused([goal.with_concl(concl.rhs)])


@executor(ExistsTac)
def run_exists(env: Environment, state: ProofState, node: ExistsTac) -> ProofState:
    goal = state.focused()
    concl = _conn_concl(env, state)
    if not isinstance(concl, Exists):
        raise TacticError("exists: goal is not an existential")
    witness = elaborate_in_goal(env, goal, node.witness, expected=concl.ty)
    body = subst_var(concl.body, concl.var, witness)
    return state.replace_focused([goal.with_concl(body)])


@executor(EExists)
def run_eexists(env: Environment, state: ProofState, node: EExists) -> ProofState:
    goal = state.focused()
    concl = _conn_concl(env, state)
    if not isinstance(concl, Exists):
        raise TacticError("eexists: goal is not an existential")
    meta = state.store.fresh(concl.var)
    body = subst_var(concl.body, concl.var, meta)
    return state.replace_focused([goal.with_concl(body)])


@executor(Exfalso)
def run_exfalso(env: Environment, state: ProofState, node: Exfalso) -> ProofState:
    goal = state.focused()
    return state.replace_focused([goal.with_concl(FalseP())])


@executor(Contradiction)
def run_contradiction(
    env: Environment, state: ProofState, node: Contradiction
) -> ProofState:
    goal = state.focused()
    hyps = [d for d in goal.decls if isinstance(d, HypDecl)]
    for hyp in hyps:
        prop = state.resolve(hyp.prop)
        if not isinstance(prop, FalseP):
            # Up to conversion: e.g. ``In x nil`` reduces to False.
            prop = whnf(env, prop)
        if isinstance(prop, FalseP):
            return state.replace_focused([])
    for hyp in hyps:
        prop = state.resolve(hyp.prop)
        if is_neg(prop):
            body = neg_body(prop)
            for other in hyps:
                other_prop = state.resolve(other.prop)
                if alpha_eq(other_prop, body):
                    return state.replace_focused([])
    raise TacticError("contradiction: no contradictory hypotheses")


@executor(Constructor)
def run_constructor(
    env: Environment, state: ProofState, node: Constructor
) -> ProofState:
    goal = state.focused()
    concl = _conn_concl(env, state)
    if isinstance(concl, TrueP):
        return state.replace_focused([])
    if isinstance(concl, And):
        return run_split(env, state, Split())
    if isinstance(concl, Or):
        # Coq tries constructors in order: left first, then right.
        try:
            return run_left(env, state, Left())
        except TacticError:
            return run_right(env, state, Right())
    pred_name = head_const(concl)
    pred = env.preds.get(pred_name) if pred_name else None
    if pred is None:
        raise TacticError("constructor: goal is not an inductive proposition")
    last_error = None
    for ctor in pred.constructors:
        try:
            return apply_statement(
                env,
                state.clone_store(),
                ctor.statement,
                allow_metas=node.existential,
                label=node.render(),
            )
        except TacticError as exc:
            last_error = exc
    raise TacticError(f"constructor: no constructor applies ({last_error})")
