"""``reflexivity`` / ``symmetry`` / ``f_equal``."""

from __future__ import annotations

from repro.errors import TacticError, UnificationError
from repro.kernel.env import Environment
from repro.kernel.goals import HypDecl, ProofState
from repro.kernel.reduction import make_whnf, simpl
from repro.kernel.subst import alpha_eq
from repro.kernel.terms import App, Const, Eq, Term
from repro.kernel.unify import unify
from repro.tactics.ast import FEqual, Reflexivity, Symmetry
from repro.tactics.base import executor


def _as_eq(env: Environment, state: ProofState, term: Term):
    """View ``term`` as an equality-like relation (Eq or pimpl)."""
    term = state.resolve(term)
    if isinstance(term, Eq):
        return "eq", term.lhs, term.rhs, term.ty
    if (
        isinstance(term, App)
        and isinstance(term.fn, Const)
        and term.fn.name == "pimpl"
        and len(term.args) == 2
        and env.statement_of("pimpl_refl") is not None
    ):
        return "pimpl", term.args[0], term.args[1], None
    return None


@executor(Reflexivity)
def run_reflexivity(
    env: Environment, state: ProofState, node: Reflexivity
) -> ProofState:
    goal = state.focused()
    view = _as_eq(env, state, goal.concl)
    if view is None:
        raise TacticError("reflexivity: goal is not an equality")
    _, lhs, rhs, _ = view
    if alpha_eq(lhs, rhs):
        return state.replace_focused([])
    # Up-to-conversion: compare normal forms, then try unification with
    # weak-head reduction (also solves metas introduced by eapply).
    if alpha_eq(simpl(env, lhs), simpl(env, rhs)):
        return state.replace_focused([])
    snap = state.store.snapshot()
    try:
        unify(lhs, rhs, state.store, make_whnf(env))
        return state.replace_focused([])
    except UnificationError:
        state.store.restore(snap)
    raise TacticError("reflexivity: sides are not convertible")


@executor(Symmetry)
def run_symmetry(env: Environment, state: ProofState, node: Symmetry) -> ProofState:
    goal = state.focused()
    if node.in_hyp is None:
        view = _as_eq(env, state, goal.concl)
        if view is None or view[0] != "eq":
            raise TacticError("symmetry: goal is not an equality")
        _, lhs, rhs, ty = view
        return state.replace_focused([goal.with_concl(Eq(ty, rhs, lhs))])
    hyp = goal.hyp(node.in_hyp)
    view = _as_eq(env, state, hyp.prop)
    if view is None or view[0] != "eq":
        raise TacticError(f"symmetry: {node.in_hyp} is not an equality")
    _, lhs, rhs, ty = view
    new_goal = goal.replace_decl(
        node.in_hyp, HypDecl(node.in_hyp, Eq(ty, rhs, lhs))
    )
    return state.replace_focused([new_goal])


@executor(FEqual)
def run_f_equal(env: Environment, state: ProofState, node: FEqual) -> ProofState:
    goal = state.focused()
    concl = state.resolve(goal.concl)
    if not isinstance(concl, Eq):
        raise TacticError("f_equal: goal is not an equality")
    lhs, rhs = concl.lhs, concl.rhs
    if (
        not isinstance(lhs, App)
        or not isinstance(rhs, App)
        or not alpha_eq(lhs.fn, rhs.fn)
        or len(lhs.args) != len(rhs.args)
    ):
        raise TacticError("f_equal: heads do not match")
    new_goals = []
    for a, b in zip(lhs.args, rhs.args):
        if alpha_eq(a, b):
            continue  # Coq discharges syntactically equal arguments.
        new_goals.append(goal.with_concl(Eq(None, a, b)))
    return state.replace_focused(new_goals)
