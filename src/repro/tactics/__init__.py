"""The tactic interpreter.

Importing this package registers every executor.  Public surface:

* :func:`repro.tactics.parse.parse_tactic` — text to AST.
* :func:`repro.tactics.base.run_tactic` — run one tactic on a state.
* :func:`repro.tactics.script.run_script` — check a whole proof.
"""

from repro.tactics import (  # noqa: F401  (imported for executor registration)
    apply_,
    auto_,
    combinators,
    congruence_,
    destruct_,
    discriminate_,
    induction_,
    intro,
    inversion_,
    lia,
    logic_,
    reflexivity_,
    rewrite_,
    simpl_,
    structural,
    subst_,
)
from repro.tactics.base import TacticNode, run_tactic
from repro.tactics.parse import parse_tactic
from repro.tactics.script import run_script, script_tactics, split_sentences

__all__ = [
    "TacticNode",
    "run_tactic",
    "parse_tactic",
    "run_script",
    "script_tactics",
    "split_sentences",
]
