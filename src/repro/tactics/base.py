"""Tactic framework: AST base class, registry, and the runner.

Every tactic is a frozen dataclass (its AST node) plus an *executor*
function registered against that class.  The runner:

* clones the proof state's metavariable store first, so failed or
  alternative tactic applications never corrupt sibling states in the
  search tree;
* converts any kernel-level failure (:class:`KernelError`,
  :class:`UnificationError`, ...) into :class:`TacticError` — the
  "rejected by Coq" outcome of the paper's validity check;
* enforces a wall-clock deadline when the caller provides one (the
  paper invalidates tactics that run for more than 5 seconds).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type as PyType

from repro.deadline import (
    Deadline,
    check_deadline,
    pop_deadline,
    push_deadline,
)
from repro.errors import KernelError, ReproError, TacticError, TacticTimeout
from repro.kernel.env import Environment
from repro.kernel.goals import ProofState

__all__ = ["TacticNode", "executor", "run_tactic", "Deadline", "check_deadline"]


class TacticNode:
    """Base class of all tactic AST nodes."""

    __slots__ = ()

    def render(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()


Executor = Callable[[Environment, ProofState, "TacticNode"], ProofState]

_REGISTRY: Dict[PyType, Executor] = {}


def executor(node_cls: PyType):
    """Class decorator registering ``fn`` as the executor for ``node_cls``."""

    def wrap(fn: Executor) -> Executor:
        if node_cls in _REGISTRY:
            raise ValueError(f"duplicate executor for {node_cls.__name__}")
        _REGISTRY[node_cls] = fn
        return fn

    return wrap


def run_tactic(
    env: Environment,
    state: ProofState,
    node: TacticNode,
    timeout: Optional[float] = None,
    deadline: Optional[Deadline] = None,
) -> ProofState:
    """Execute one tactic, returning the new proof state.

    Raises :class:`TacticError` when the tactic is rejected and
    :class:`TacticTimeout` when it exceeds its time budget.  The budget
    may be given as ``timeout`` seconds (a fresh :class:`Deadline` is
    started here) or as an existing ``deadline`` — the checker passes
    its own so the in-flight interrupt and its post-hoc verdict agree
    on one clock.  While the tactic runs, the deadline is the active
    one for this thread: combinator loops, ``auto``/``lia``/
    ``congruence``, and the kernel reduction budget all poll it.
    """
    if not state.goals:
        raise TacticError("no goals remain")
    fn = _REGISTRY.get(type(node))
    if fn is None:
        raise TacticError(f"unknown tactic: {node.render()}")
    working = state.clone_store()
    if deadline is None and timeout is not None:
        deadline = Deadline.after(timeout)
    if deadline is not None:
        push_deadline(deadline)
    try:
        return fn(env, working, node)
    except TacticError:
        raise
    except ReproError as exc:
        raise TacticError(f"{node.render()}: {exc}") from exc
    finally:
        if deadline is not None:
            pop_deadline()


def dispatch(env: Environment, state: ProofState, node: TacticNode) -> ProofState:
    """Run a sub-tactic *without* recloning (for combinators/auto)."""
    fn = _REGISTRY.get(type(node))
    if fn is None:
        raise TacticError(f"unknown tactic: {node.render()}")
    check_deadline()
    return fn(env, state, node)
